"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires ``bdist_wheel`` on this toolchain; the
classic ``python setup.py develop`` path (or ``pip install -e .
--no-build-isolation`` on newer toolchains) works with this shim.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
