"""Isomorphism of port-labelled graphs and labelled configurations.

Port-labelled graphs are *rigid* in a useful sense: once the image of
one node is fixed, a port-preserving isomorphism is forced everywhere
(walking a port from a node determines the image of the neighbour).
Deciding isomorphism therefore costs only ``O(n * m)`` per candidate
root image.

This is used by the configuration enumeration of
``GatherUnknownUpperBound`` to locate the index of the *real* initial
configuration inside Ω (needed by tests and by the experiment
harness to predict which hypothesis succeeds).
"""

from __future__ import annotations

from .port_graph import PortGraph


def _extend_mapping(
    g1: PortGraph, g2: PortGraph, root1: int, root2: int
) -> dict[int, int] | None:
    """Try to extend ``root1 -> root2`` to a full port-preserving iso."""
    if g1.degree(root1) != g2.degree(root2):
        return None
    mapping = {root1: root2}
    stack = [root1]
    while stack:
        u1 = stack.pop()
        u2 = mapping[u1]
        if g1.degree(u1) != g2.degree(u2):
            return None
        for port in range(g1.degree(u1)):
            v1, back1 = g1.neighbor(u1, port)
            v2, back2 = g2.neighbor(u2, port)
            if back1 != back2:
                return None
            if v1 in mapping:
                if mapping[v1] != v2:
                    return None
            else:
                mapping[v1] = v2
                stack.append(v1)
    if len(mapping) != g1.n:
        return None
    return mapping


def find_isomorphism(g1: PortGraph, g2: PortGraph) -> dict[int, int] | None:
    """Return a port-preserving node bijection g1 -> g2, or ``None``."""
    if g1.n != g2.n or g1.num_edges() != g2.num_edges():
        return None
    for root2 in g2.nodes():
        mapping = _extend_mapping(g1, g2, 0, root2)
        if mapping is not None:
            return mapping
    return None


def are_isomorphic(g1: PortGraph, g2: PortGraph) -> bool:
    """Port-preserving isomorphism test."""
    return find_isomorphism(g1, g2) is not None


def configurations_match(
    g1: PortGraph,
    labels1: dict[int, int],
    g2: PortGraph,
    labels2: dict[int, int],
) -> bool:
    """Do two labelled configurations describe the same initial state?

    A configuration is a port-labelled graph plus an injective partial
    map ``node -> agent label`` (Section 4.2).  Two configurations
    match when some port-preserving isomorphism carries the label map
    of one exactly onto the other.
    """
    if g1.n != g2.n or sorted(labels1.values()) != sorted(labels2.values()):
        return False
    for root2 in g2.nodes():
        mapping = _extend_mapping(g1, g2, 0, root2)
        if mapping is None:
            continue
        if all(
            labels1.get(v, None) == labels2.get(mapping[v], None)
            for v in g1.nodes()
        ):
            return True
    return False
