"""Generators for the graph families used in tests and benchmarks.

All generators return :class:`~repro.graphs.port_graph.PortGraph`
instances.  Port numbers can be assigned canonically (deterministic,
convenient for reasoning in tests) or shuffled with a seeded RNG to
model the adversarial local port numbering of the paper.
"""

from __future__ import annotations

import random
from typing import Iterable

from .port_graph import GraphError, PortGraph


def _build_from_pairs(
    n: int,
    pairs: Iterable[tuple[int, int]],
    rng: random.Random | None = None,
) -> PortGraph:
    """Assign ports to an undirected edge list and build the graph.

    Ports at each node are handed out in the order edges appear; if
    ``rng`` is given the per-node port orderings are permuted, which
    yields an arbitrary (adversarial) local numbering.
    """
    incident: list[list[int]] = [[] for _ in range(n)]
    pair_list = list(pairs)
    for idx, (u, v) in enumerate(pair_list):
        incident[u].append(idx)
        incident[v].append(idx)
    port_of: list[dict[int, int]] = [{} for _ in range(n)]
    for node in range(n):
        order = list(incident[node])
        if rng is not None:
            rng.shuffle(order)
        for port, edge_idx in enumerate(order):
            port_of[node][edge_idx] = port
    edges = []
    for idx, (u, v) in enumerate(pair_list):
        edges.append((u, port_of[u][idx], v, port_of[v][idx]))
    return PortGraph(n, edges)


def single_edge() -> PortGraph:
    """The unique 2-node graph: one edge with port 0 at each end."""
    return PortGraph(2, [(0, 0, 1, 0)])


def ring(n: int, seed: int | None = None) -> PortGraph:
    """Cycle on ``n`` nodes (n >= 3)."""
    if n < 3:
        raise GraphError("a ring needs at least 3 nodes")
    pairs = [(i, (i + 1) % n) for i in range(n)]
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def oriented_ring(n: int) -> PortGraph:
    """Ring where port 0 is always clockwise and port 1 anticlockwise.

    This is the canonical symmetric ring from the paper's introduction
    (the configuration in which two identical simultaneous agents can
    never gather deterministically).
    """
    if n < 3:
        raise GraphError("a ring needs at least 3 nodes")
    edges = [(i, 0, (i + 1) % n, 1) for i in range(n)]
    return PortGraph(n, edges)


def path_graph(n: int, seed: int | None = None) -> PortGraph:
    """Simple path on ``n`` nodes."""
    if n < 2:
        raise GraphError("a path needs at least 2 nodes")
    pairs = [(i, i + 1) for i in range(n - 1)]
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def star_graph(n: int, seed: int | None = None) -> PortGraph:
    """Star with centre node 0 and ``n - 1`` leaves."""
    if n < 2:
        raise GraphError("a star needs at least 2 nodes")
    pairs = [(0, i) for i in range(1, n)]
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def complete_graph(n: int, seed: int | None = None) -> PortGraph:
    """Clique on ``n`` nodes."""
    if n < 2:
        raise GraphError("a clique needs at least 2 nodes")
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def grid_graph(rows: int, cols: int, seed: int | None = None) -> PortGraph:
    """rows x cols grid."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GraphError("grid needs at least 2 nodes")
    n = rows * cols
    pairs = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                pairs.append((v, v + 1))
            if r + 1 < rows:
                pairs.append((v, v + cols))
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def hypercube(dim: int) -> PortGraph:
    """dim-dimensional hypercube; port i flips bit i."""
    if dim < 1:
        raise GraphError("hypercube dimension must be >= 1")
    n = 1 << dim
    edges = []
    for v in range(n):
        for bit in range(dim):
            u = v ^ (1 << bit)
            if v < u:
                edges.append((v, bit, u, bit))
    return PortGraph(n, edges)


def torus(rows: int, cols: int, seed: int | None = None) -> PortGraph:
    """rows x cols torus (grid with wrap-around edges).

    Both dimensions must be at least 3 so the wrap edges do not
    collapse into parallel edges; every node has degree 4.
    """
    if rows < 3 or cols < 3:
        raise GraphError("a torus needs rows >= 3 and cols >= 3")
    n = rows * cols
    pairs = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            pairs.append((v, r * cols + (c + 1) % cols))
            pairs.append((v, ((r + 1) % rows) * cols + c))
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def torus_for_size(n: int, seed: int | None = None) -> PortGraph:
    """The most square torus with exactly ``n`` nodes.

    Picks the divisor pair ``rows x cols = n`` with ``rows`` closest to
    ``sqrt(n)``; raises unless some factorization with both sides >= 3
    exists (n = 9, 12, 15, 16, ...).
    """
    best = None
    r = 3
    while r * r <= n:
        if n % r == 0 and n // r >= 3:
            best = r
        r += 1
    if best is None:
        raise GraphError(
            f"no torus of size {n}: need rows x cols = n with both >= 3"
        )
    return torus(best, n // best, seed=seed)


def random_regular(n: int, degree: int = 3, seed: int = 0) -> PortGraph:
    """Random connected ``degree``-regular simple graph (pairing model).

    Deterministic given ``(n, degree, seed)``: stubs are paired with a
    seeded RNG and rejected until the result is simple and connected.
    Requires ``n * degree`` even and ``degree < n``.
    """
    if degree < 2:
        raise GraphError("degree must be >= 2")
    if degree >= n:
        raise GraphError("degree must be < n")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even")
    rng = random.Random(seed)
    for _ in range(2000):
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        pairs: set[tuple[int, int]] = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in pairs:
                ok = False
                break
            pairs.add((min(u, v), max(u, v)))
        if not ok or not _pairs_connected(n, pairs):
            continue
        return _build_from_pairs(n, sorted(pairs), rng)
    raise GraphError(
        f"no simple connected {degree}-regular graph found for n={n} "
        f"(seed {seed})"
    )


def _pairs_connected(n: int, pairs: Iterable[tuple[int, int]]) -> bool:
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in pairs:
        adj[u].append(v)
        adj[v].append(u)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for nb in adj[node]:
            if nb not in seen:
                seen.add(nb)
                frontier.append(nb)
    return len(seen) == n


def random_tree(n: int, seed: int = 0) -> PortGraph:
    """Uniform-ish random tree via random attachment."""
    if n < 2:
        raise GraphError("a tree needs at least 2 nodes")
    rng = random.Random(seed)
    pairs = [(rng.randrange(i), i) for i in range(1, n)]
    return _build_from_pairs(n, pairs, rng)


def random_connected_graph(
    n: int, extra_edge_prob: float = 0.3, seed: int = 0
) -> PortGraph:
    """Random connected graph: a random tree plus extra random edges."""
    if n < 2:
        raise GraphError("need at least 2 nodes")
    rng = random.Random(seed)
    pairs: set[tuple[int, int]] = set()
    for i in range(1, n):
        j = rng.randrange(i)
        pairs.add((j, i))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in pairs and rng.random() < extra_edge_prob:
                pairs.add((i, j))
    return _build_from_pairs(n, sorted(pairs), rng)


def lollipop(clique_size: int, tail_length: int, seed: int | None = None
             ) -> PortGraph:
    """Clique with a path attached: a classical hard case for cover time."""
    if clique_size < 3 or tail_length < 1:
        raise GraphError("lollipop needs clique >= 3 and tail >= 1")
    n = clique_size + tail_length
    pairs = [
        (i, j)
        for i in range(clique_size)
        for j in range(i + 1, clique_size)
    ]
    pairs.append((0, clique_size))
    for i in range(clique_size, n - 1):
        pairs.append((i, i + 1))
    rng = random.Random(seed) if seed is not None else None
    return _build_from_pairs(n, pairs, rng)


def family_for_size(n: int, seed: int = 0) -> list[tuple[str, PortGraph]]:
    """A representative family of graphs of size exactly ``n``.

    Used by benchmark sweeps so that every size is exercised on several
    topologies.
    """
    family: list[tuple[str, PortGraph]] = []
    if n == 2:
        return [("edge", single_edge())]
    family.append(("ring", ring(n, seed=seed)))
    family.append(("path", path_graph(n, seed=seed)))
    family.append(("star", star_graph(n, seed=seed)))
    family.append(("clique", complete_graph(n, seed=seed)))
    family.append(("tree", random_tree(n, seed=seed)))
    family.append(("random", random_connected_graph(n, seed=seed)))
    return family
