"""Anonymous port-labelled graph substrate."""

from .port_graph import GraphError, PortGraph, iter_all_walks
from .generators import (
    complete_graph,
    family_for_size,
    grid_graph,
    hypercube,
    lollipop,
    oriented_ring,
    path_graph,
    random_connected_graph,
    random_regular,
    random_tree,
    ring,
    single_edge,
    star_graph,
    torus,
    torus_for_size,
)
from .enumerate_graphs import (
    count_port_graphs,
    iter_all_port_graphs,
    iter_connected_edge_sets,
    iter_port_labelings,
)
from .isomorphism import are_isomorphic, configurations_match, find_isomorphism

__all__ = [
    "GraphError",
    "PortGraph",
    "iter_all_walks",
    "single_edge",
    "ring",
    "oriented_ring",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "hypercube",
    "random_tree",
    "random_connected_graph",
    "random_regular",
    "torus",
    "torus_for_size",
    "lollipop",
    "family_for_size",
    "iter_all_port_graphs",
    "iter_connected_edge_sets",
    "iter_port_labelings",
    "count_port_graphs",
    "are_isomorphic",
    "find_isomorphism",
    "configurations_match",
]
