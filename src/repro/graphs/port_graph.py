"""Anonymous port-labelled graphs: the network substrate of the paper.

The paper models the network as an undirected connected graph whose
nodes are anonymous but whose edges carry *port numbers*: the edges
incident to a node ``v`` of degree ``d`` are locally numbered
``0 .. d-1``, independently at each endpoint (Section 1.2 of the
paper).  An agent at a node sees only the node's degree and, after a
move, the port through which it entered.

:class:`PortGraph` stores this structure.  Node identifiers
(``0 .. n-1``) exist only for the simulator's bookkeeping; the agent
algorithms never observe them.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence


class GraphError(ValueError):
    """Raised when a port-labelled graph is malformed."""


class PortGraph:
    """An undirected connected graph with local port numbers.

    The adjacency structure maps ``(node, port) -> (neighbour,
    entry_port)`` where ``entry_port`` is the port number of the same
    edge at the neighbour's side.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are ``0 .. n-1``.
    edges:
        Iterable of ``(u, pu, v, pv)`` tuples: an undirected edge
        between ``u`` and ``v``, numbered ``pu`` at ``u`` and ``pv``
        at ``v``.
    allow_multi:
        Permit parallel edges and self-loops (used by some quotient
        constructions in tests).  The paper's configurations are
        simple graphs, which is the default.
    """

    __slots__ = ("n", "_adj", "_edges", "allow_multi")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int, int, int]],
        allow_multi: bool = False,
    ) -> None:
        if n < 1:
            raise GraphError("a graph needs at least one node")
        self.n = n
        self.allow_multi = allow_multi
        self._edges: list[tuple[int, int, int, int]] = []
        port_maps: list[dict[int, tuple[int, int]]] = [{} for _ in range(n)]
        seen_pairs: set[tuple[int, int]] = set()
        for u, pu, v, pv in edges:
            self._check_endpoint(u, pu)
            self._check_endpoint(v, pv)
            if u == v and not allow_multi:
                raise GraphError(f"self-loop at node {u}")
            if not allow_multi:
                pair = (min(u, v), max(u, v))
                if pair in seen_pairs:
                    raise GraphError(f"parallel edge between {u} and {v}")
                seen_pairs.add(pair)
            if pu in port_maps[u]:
                raise GraphError(f"port {pu} reused at node {u}")
            if u == v and pu == pv:
                raise GraphError(f"self-loop at {u} must use two ports")
            port_maps[u][pu] = (v, pv)
            if v != u or pv != pu:
                if pv in port_maps[v]:
                    raise GraphError(f"port {pv} reused at node {v}")
                port_maps[v][pv] = (u, pu)
            self._edges.append((u, pu, v, pv))
        self._adj: list[list[tuple[int, int]]] = []
        for node, ports in enumerate(port_maps):
            degree = len(ports)
            if degree == 0 and n > 1:
                raise GraphError(f"node {node} is isolated")
            if set(ports) != set(range(degree)):
                raise GraphError(
                    f"ports at node {node} are {sorted(ports)}; expected "
                    f"0..{degree - 1}"
                )
            self._adj.append([ports[p] for p in range(degree)])
        if not self._is_connected():
            raise GraphError("graph is not connected")

    @staticmethod
    def _check_endpoint(u: int, pu: int) -> None:
        if pu < 0:
            raise GraphError(f"negative port {pu} at node {u}")

    def _is_connected(self) -> bool:
        if self.n == 1:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v, _ in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == self.n

    # ------------------------------------------------------------------
    # Read-only structure accessors.
    # ------------------------------------------------------------------

    def degree(self, node: int) -> int:
        """Number of ports (incident edges) at ``node``."""
        return len(self._adj[node])

    def neighbor(self, node: int, port: int) -> tuple[int, int]:
        """Return ``(neighbour, entry_port)`` across ``port`` of ``node``."""
        return self._adj[node][port]

    def step(self, node: int, port: int) -> int:
        """Return only the neighbour across ``port`` of ``node``."""
        return self._adj[node][port][0]

    def nodes(self) -> range:
        """Iterate node identifiers."""
        return range(self.n)

    def edges(self) -> list[tuple[int, int, int, int]]:
        """Return the edge list as given at construction (copy)."""
        return list(self._edges)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def max_degree(self) -> int:
        """Largest degree in the graph."""
        return max(self.degree(v) for v in self.nodes())

    # ------------------------------------------------------------------
    # Walks and paths.
    # ------------------------------------------------------------------

    def follow(self, start: int, ports: Sequence[int]) -> int | None:
        """Follow the port sequence ``ports`` from ``start``.

        Returns the terminal node, or ``None`` if some port does not
        exist at the current node (the sequence is not a path from
        ``start`` in the sense of Section 2 of the paper).
        """
        node = start
        for port in ports:
            if port >= len(self._adj[node]):
                return None
            node = self._adj[node][port][0]
        return node

    def walk_with_entries(
        self, start: int, ports: Sequence[int]
    ) -> tuple[int, list[int]]:
        """Follow ``ports`` from ``start`` recording entry ports.

        Returns ``(terminal_node, entry_ports)``.  Raises
        :class:`GraphError` if a port is missing; callers that need the
        tolerant behaviour use :meth:`follow` first.
        """
        node = start
        entries: list[int] = []
        for port in ports:
            if port >= len(self._adj[node]):
                raise GraphError(f"no port {port} at node {node}")
            node, entry = self._adj[node][port]
            entries.append(entry)
        return node, entries

    def bfs_distances(self, start: int) -> list[int]:
        """Hop distance from ``start`` to every node."""
        dist = [-1] * self.n
        dist[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v, _ in self._adj[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def diameter(self) -> int:
        """Graph diameter in hops."""
        return max(max(self.bfs_distances(v)) for v in self.nodes())

    def shortest_path_ports(self, start: int, goal: int) -> list[int]:
        """Lexicographically-smallest shortest port path start -> goal.

        This is the ``path_h(L)`` primitive of Algorithm 8: among all
        shortest paths it returns the one whose port sequence is
        lexicographically smallest.  BFS that scans ports in increasing
        order yields exactly that path.
        """
        if start == goal:
            return []
        parent: dict[int, tuple[int, int]] = {}
        dist = [-1] * self.n
        dist[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for port in range(len(self._adj[u])):
                v = self._adj[u][port][0]
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    parent[v] = (u, port)
                    queue.append(v)
        if dist[goal] < 0:
            raise GraphError("goal unreachable")
        ports_rev: list[int] = []
        node = goal
        while node != start:
            prev, port = parent[node]
            ports_rev.append(port)
            node = prev
        ports_rev.reverse()
        return ports_rev

    # ------------------------------------------------------------------
    # Equality / representation helpers.
    # ------------------------------------------------------------------

    def canonical_edges(self) -> frozenset[tuple[int, int, int, int]]:
        """Order-independent canonical edge set (node ids fixed)."""
        canon = set()
        for u, pu, v, pv in self._edges:
            if (v, pv) < (u, pu):
                u, pu, v, pv = v, pv, u, pu
            canon.add((u, pu, v, pv))
        return frozenset(canon)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortGraph):
            return NotImplemented
        return self.n == other.n and (
            self.canonical_edges() == other.canonical_edges()
        )

    def __hash__(self) -> int:
        return hash((self.n, self.canonical_edges()))

    def __repr__(self) -> str:
        return f"PortGraph(n={self.n}, m={len(self._edges)})"

    def describe(self) -> str:
        """Multi-line human-readable adjacency listing."""
        lines = [f"PortGraph with {self.n} nodes, {len(self._edges)} edges"]
        for v in self.nodes():
            entries = ", ".join(
                f"{p}->({u} via {q})"
                for p, (u, q) in enumerate(self._adj[v])
            )
            lines.append(f"  node {v} (deg {self.degree(v)}): {entries}")
        return "\n".join(lines)


def iter_all_walks(length: int, alphabet_size: int) -> Iterator[tuple[int, ...]]:
    """Enumerate all port words of ``length`` over ``0..alphabet_size-1``.

    Used by ``BallTraversal`` and ``EnsureCleanExploration`` which
    enumerate every path of a fixed length over a bounded port
    alphabet.  Enumeration is lexicographic, matching the paper's
    "for each path x ... from the set {0, ..., n_h - 2}".
    """
    if alphabet_size < 1:
        if length == 0:
            yield ()
        return
    word = [0] * length
    while True:
        yield tuple(word)
        i = length - 1
        while i >= 0 and word[i] == alphabet_size - 1:
            word[i] = 0
            i -= 1
        if i < 0:
            return
        word[i] += 1
