"""Exhaustive enumeration of small port-labelled connected graphs.

Two consumers:

* UXS verification (:mod:`repro.explore.uxs`) checks a candidate
  exploration sequence against *every* connected port-labelled graph of
  size up to 4 — this is what makes the sequence a certified universal
  exploration sequence for those sizes.
* The configuration enumeration Ω of ``GatherUnknownUpperBound``
  (:mod:`repro.core.configurations`) draws its underlying graphs from
  here.

The enumeration works on labelled nodes ``0..n-1`` (an over-count of
the anonymous graphs, which is harmless for both consumers: coverage of
a super-family is still coverage, and Ω may repeat isomorphic
configurations without affecting correctness — the paper only requires
every configuration to occur at least once).
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Iterator

from .port_graph import GraphError, PortGraph


def _connected(n: int, pairs: tuple[tuple[int, int], ...]) -> bool:
    seen = {0}
    frontier = [0]
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in pairs:
        adj[u].append(v)
        adj[v].append(u)
    while frontier:
        u = frontier.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return len(seen) == n


def iter_connected_edge_sets(n: int) -> Iterator[tuple[tuple[int, int], ...]]:
    """All connected simple edge sets on labelled nodes ``0..n-1``."""
    if n == 1:
        yield ()
        return
    all_pairs = list(combinations(range(n), 2))
    for size in range(n - 1, len(all_pairs) + 1):
        for subset in combinations(all_pairs, size):
            if _connected(n, subset):
                yield subset


def iter_port_labelings(
    n: int, pairs: tuple[tuple[int, int], ...]
) -> Iterator[PortGraph]:
    """All port assignments of an edge set, as :class:`PortGraph`."""
    incident: list[list[int]] = [[] for _ in range(n)]
    for idx, (u, v) in enumerate(pairs):
        incident[u].append(idx)
        incident[v].append(idx)
    per_node_orders = [list(permutations(inc)) for inc in incident]

    def rec(node: int, port_of: list[dict[int, int]]) -> Iterator[PortGraph]:
        if node == n:
            edges = [
                (u, port_of[u][idx], v, port_of[v][idx])
                for idx, (u, v) in enumerate(pairs)
            ]
            try:
                yield PortGraph(n, edges)
            except GraphError:  # pragma: no cover - construction is valid
                raise
            return
        for order in per_node_orders[node]:
            port_of[node] = {edge_idx: p for p, edge_idx in enumerate(order)}
            yield from rec(node + 1, port_of)

    yield from rec(0, [{} for _ in range(n)])


def iter_all_port_graphs(n: int) -> Iterator[PortGraph]:
    """Every connected simple port-labelled graph on ``n`` labelled nodes.

    Counts grow quickly (K4 alone has 6^4 labelings); intended for
    n <= 4.
    """
    for pairs in iter_connected_edge_sets(n):
        yield from iter_port_labelings(n, pairs)


def count_port_graphs(n: int) -> int:
    """Number of enumerated port graphs of size ``n`` (for tests)."""
    return sum(1 for _ in iter_all_port_graphs(n))
