"""``MetricsEventProcessor`` — runner-level series from the event stream.

An :class:`~repro.events.processors.EventProcessor` that folds PR 7's
typed events into metric series, so any event source (a live sweep or
a replayed JSONL trace) yields the same runner-level counters without
touching the instrumented code paths.  Attach it like any other
processor::

    reg = Registry(source="trace")
    with stream.attached(MetricsEventProcessor(reg)):
        run_experiment(spec)

Series (all under ``events.``, to keep them distinct from the directly
instrumented ``runner.*`` / ``sim.*`` families):

- ``events.count{type=...}`` — one counter per event type.
- ``events.trials{status=ok|failed}`` — from ``TrialEnd``.
- ``events.trials.cached`` — cached ``SweepProgress`` entries.
- ``events.chunks.claimed{worker=...}`` — ``BackendChunkClaimed``.
- ``events.search.rounds`` — ``SearchRoundFrontier``.
- ``events.sim.moves`` / ``events.sim.segment_edges`` — per-edge moves
  and batched segment edges from the simulation-level events.
"""

from __future__ import annotations

from ..events.types import (
    AgentMove,
    BackendChunkClaimed,
    Event,
    SearchRoundFrontier,
    SweepProgress,
    TrialEnd,
    WalkSegment,
)
from .registry import Registry


class MetricsEventProcessor:
    """Derives metric series from a typed event stream."""

    def __init__(self, registry: Registry | None = None) -> None:
        self.registry = registry if registry is not None else Registry(
            source="events"
        )

    def on_event(self, event: Event) -> None:
        reg = self.registry
        reg.counter("events.count", type=type(event).__name__).value += 1
        if isinstance(event, TrialEnd):
            status = "ok" if event.ok else "failed"
            reg.counter("events.trials", status=status).value += 1
        elif isinstance(event, SweepProgress):
            if event.cached:
                reg.counter("events.trials.cached").value += 1
        elif isinstance(event, AgentMove):
            reg.counter("events.sim.moves").value += 1
        elif isinstance(event, WalkSegment):
            reg.counter("events.sim.segment_edges").value += (
                event.length * len(event.walkers)
            )
        elif isinstance(event, BackendChunkClaimed):
            reg.counter(
                "events.chunks.claimed", worker=event.worker
            ).value += 1
        elif isinstance(event, SearchRoundFrontier):
            reg.counter("events.search.rounds").value += 1

    def shutdown(self) -> None:
        pass

    def snapshot(self) -> dict:
        return self.registry.snapshot()
