"""Low-overhead metrics: counters, gauges, histograms and snapshots.

The registry mirrors the event stream's attachment contract
(:mod:`repro.events.stream`): :func:`current` returns ``None`` unless
a scope attached a :class:`Registry`, so instrumentation in the hot
layers costs one ``is None`` test when metrics are off and never
affects results — metrics stay out of spec hashes and record bytes.

Quick tour::

    from repro import metrics

    reg = metrics.Registry(source="my-run")
    with metrics.attached(reg):
        run_experiment(spec)               # instrumented layers record
    snap = reg.snapshot()                  # serializable + mergeable

See docs/observability.md for the naming conventions, label
cardinality rules and merge semantics, and ``python -m repro metrics``
for the snapshot CLI.
"""

from .registry import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    Registry,
    attach,
    attached,
    current,
    register_collector,
)
from .snapshot import (
    diff_snapshots,
    find_sidecars,
    fold_sidecars,
    format_summary,
    load_snapshot,
    merge_snapshots,
    to_json,
    to_prometheus,
    validate_snapshot,
    write_snapshot,
)

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "attach",
    "attached",
    "current",
    "register_collector",
    "diff_snapshots",
    "find_sidecars",
    "fold_sidecars",
    "format_summary",
    "load_snapshot",
    "merge_snapshots",
    "to_json",
    "to_prometheus",
    "validate_snapshot",
    "write_snapshot",
    "MetricsEventProcessor",
]


def __getattr__(name: str):
    # Lazy: repro.metrics.events imports repro.events; keep the core
    # registry importable from the sim layer without that edge.
    if name == "MetricsEventProcessor":
        from .events import MetricsEventProcessor

        return MetricsEventProcessor
    raise AttributeError(name)
