"""The metrics registry: named counters, gauges and log-scale histograms.

The attachment contract mirrors :mod:`repro.events.stream`: a
module-global :func:`current` registry that is ``None`` unless a scope
attached one, so every instrumentation site in the hot layers costs a
single ``is None`` test when metrics are off.  Metrics never feed back
into results — they are excluded from spec hashes and record bytes
(``tests/test_metrics.py`` asserts byte-identity of a metrics-on sweep
against a metrics-off one).

Three series kinds:

``Counter``
    Monotonic ``value`` (``inc(n)``).  Also usable *standalone*, off
    any registry: the scheduler keeps per-simulation counters this way
    and folds them into the attached registry once, at ``result()``.
``Gauge``
    Last-written ``value`` (``set(v)``).
``Histogram``
    Log2-bucketed distribution with exact ``count``/``sum``/``min``/
    ``max``.  Bucket ``e`` holds values in ``[2**(e-1), 2**e)``;
    non-positive values land in the dedicated ``0`` bucket.  The
    bucketing is exact for arbitrarily large ints (``bit_length``, no
    float conversion), so even the unknown-bound algorithm's
    astronomically large quantities cannot overflow it — though by
    convention round counts are never recorded as metric values (see
    docs/observability.md).

``Registry.timer(name)`` is a context manager observing wall seconds
into a histogram.  Snapshots (:meth:`Registry.snapshot`) are plain
JSON dicts; merging, export and diffing live in
:mod:`repro.metrics.snapshot`.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

SCHEMA_NAME = "repro.metrics"
SCHEMA_VERSION = 1


class Counter:
    """A monotonic counter.  ``value`` is public: hot paths may use
    ``c.value += n`` directly to skip the method call."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def set(self, value) -> None:
        self.value = value


def _bucket_of(value) -> int:
    """Log2 bucket index: ``e`` covers ``[2**(e-1), 2**e)``; ``0`` is
    the non-positive bucket."""
    if value <= 0:
        return 0
    if isinstance(value, int):
        return value.bit_length()
    # frexp: value = m * 2**e with 0.5 <= m < 1, i.e. value in
    # [2**(e-1), 2**e) — exactly the bucket convention.
    return math.frexp(value)[1]


class Histogram:
    """Log2-scale histogram with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets: dict[int, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = _bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1


class _Timer:
    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._start = None

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._start)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

# Collectors publish process-wide absolute totals (module-level cache
# stats in sim.agent / explore.uxs) into a registry at snapshot time,
# so hot cache paths stay plain-int increments with no registry lookup.
_COLLECTORS: list[Callable[["Registry"], None]] = []


def register_collector(fn: Callable[["Registry"], None]) -> None:
    """Register a snapshot-time collector (idempotent per function)."""
    if fn not in _COLLECTORS:
        _COLLECTORS.append(fn)


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class Registry:
    """A set of named, labeled metric series plus absorbed sub-snapshots.

    Series creation is locked (the pipelined backend's producer thread
    instruments concurrently with the main thread); increments on a
    series are not, matching the single-writer-per-series usage of
    every instrumentation site.

    ``absorb(worker, snapshot)`` folds a worker process's *cumulative*
    snapshot in with replace-per-worker semantics: each task returning
    from a pool carries that worker's running totals, so only the
    latest snapshot per worker may count.  :meth:`snapshot` merges the
    registry's own series with the absorbed ones into one payload.
    """

    def __init__(self, source: str = "repro") -> None:
        self.source = source
        self._series: dict[tuple, object] = {}
        self._kinds: dict[tuple, str] = {}
        self._absorbed: dict[str, dict] = {}
        self._lock = threading.Lock()

    # -- series access -------------------------------------------------

    def _get(self, kind: str, name: str, labels: dict):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = _KINDS[kind]()
                    self._series[key] = series
                    self._kinds[key] = kind
        elif self._kinds[key] != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{self._kinds[key]}, not {kind}"
            )
        return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    def timer(self, name: str, **labels) -> _Timer:
        return _Timer(self._get("histogram", name, labels))

    # -- worker sub-snapshots ------------------------------------------

    def absorb(self, worker: str, snapshot: dict) -> None:
        """Fold in a worker's cumulative snapshot (latest per worker wins)."""
        with self._lock:
            self._absorbed[str(worker)] = snapshot

    # -- serialization -------------------------------------------------

    def _own_series(self) -> list[dict]:
        rows = []
        with self._lock:
            items = list(self._series.items())
        for (name, labels), series in items:
            kind = self._kinds[(name, labels)]
            row: dict = {
                "name": name,
                "kind": kind,
                "labels": dict(labels),
            }
            if kind == "histogram":
                row.update(
                    count=series.count,
                    sum=series.total,
                    min=series.min,
                    max=series.max,
                    buckets={str(b): c for b, c in series.buckets.items()},
                )
            else:
                row["value"] = series.value
            rows.append(row)
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def snapshot(self) -> dict:
        """One mergeable JSON payload: own series + absorbed workers."""
        for collect in _COLLECTORS:
            collect(self)
        own = {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "source": self.source,
            "series": self._own_series(),
        }
        with self._lock:
            absorbed = list(self._absorbed.values())
        if not absorbed:
            return own
        from .snapshot import merge_snapshots

        return merge_snapshots([own] + absorbed, source=self.source)


# ----------------------------------------------------------------------
# Module-global attachment (mirrors repro.events.stream).
# ----------------------------------------------------------------------

_ACTIVE: Registry | None = None


def current() -> Registry | None:
    """The attached registry, or ``None`` — the zero-cost off switch."""
    return _ACTIVE


def attach(registry: Registry | None) -> Registry | None:
    """Install ``registry`` as the process-global one; returns the
    previous registry so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else None
    return previous


@contextmanager
def attached(registry: Registry | None) -> Iterator[Registry | None]:
    """Scope ``registry`` as :func:`current`.

    ``attached(None)`` is a no-op scope yielding whatever is already
    attached, so CLI code can wrap its run unconditionally::

        with metrics.attached(reg):   # reg is None without --metrics
            run_experiment(spec)
    """
    if registry is None:
        yield _ACTIVE
        return
    previous = attach(registry)
    try:
        yield registry
    finally:
        attach(previous)
