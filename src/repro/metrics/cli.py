"""``python -m repro metrics`` — summarize, export and diff snapshots.

Subcommands:

``summary FILE [--json]``
    Render the snapshot as the fixed-width series table (or the raw
    canonical JSON).
``export FILE --format json|prometheus [-o OUT]``
    Re-emit the snapshot for machine consumption; ``prometheus`` is
    the text exposition format a future ``serve`` endpoint will serve
    at ``/metrics``.
``diff BEFORE AFTER [--json]``
    Per-series deltas between two snapshots — the bench-trend story
    told in counters.

All subcommands validate against the snapshot schema first and exit 1
on malformed input.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from . import snapshot as snap_mod


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="Summarize, export and diff metrics snapshots "
                    "captured with --metrics (see docs/observability.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="render a snapshot as a series table",
    )
    p_summary.add_argument("snapshot", help="snapshot JSON file")
    p_summary.add_argument(
        "--json", action="store_true",
        help="emit the validated snapshot as canonical JSON",
    )

    p_export = sub.add_parser(
        "export", help="re-emit a snapshot for machine consumption",
    )
    p_export.add_argument("snapshot", help="snapshot JSON file")
    p_export.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="output format (default: json)",
    )
    p_export.add_argument(
        "-o", "--output", metavar="OUT", default=None,
        help="write here instead of stdout",
    )

    p_diff = sub.add_parser(
        "diff", help="per-series deltas between two snapshots",
    )
    p_diff.add_argument("before", help="baseline snapshot JSON file")
    p_diff.add_argument("after", help="comparison snapshot JSON file")
    p_diff.add_argument(
        "--json", action="store_true", help="emit the deltas as JSON",
    )
    return parser


def _load(path: str) -> dict:
    return snap_mod.load_snapshot(path)


def metrics_main(argv: list[str]) -> int:
    args = build_metrics_parser().parse_args(argv)
    try:
        if args.command == "diff":
            before = _load(args.before)
            after = _load(args.after)
        else:
            snapshot = _load(args.snapshot)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 1

    if args.command == "summary":
        if args.json:
            print(snap_mod.to_json(snapshot), end="")
        else:
            print(snap_mod.format_summary(snapshot))
            print(
                f"{args.snapshot}: {len(snapshot['series'])} series "
                f"(source: {snapshot.get('source')}, "
                f"schema v{snapshot.get('version')})"
            )
        return 0

    if args.command == "export":
        if args.format == "prometheus":
            body = snap_mod.to_prometheus(snapshot)
        else:
            body = snap_mod.to_json(snapshot)
        if args.output:
            Path(args.output).write_text(body, encoding="utf-8")
            print(f"wrote {args.output} ({args.format})")
        else:
            print(body, end="")
        return 0

    # diff
    rows = snap_mod.diff_snapshots(before, after)
    if args.json:
        print(json.dumps(rows, indent=1, sort_keys=True))
        return 0
    changed = 0
    for row in rows:
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(row["labels"].items())
        )
        name = row["name"] + (f"{{{labels}}}" if labels else "")
        if "only" in row:
            changed += 1
            print(f"  {name}: only in {row['only']}")
        elif row["kind"] == "histogram":
            if row["count_delta"] or row["sum_delta"]:
                changed += 1
                print(
                    f"  {name}: count {row['count_before']} -> "
                    f"{row['count_after']} ({row['count_delta']:+}), "
                    f"sum {row['sum_delta']:+g}"
                )
        elif row["delta"]:
            changed += 1
            print(
                f"  {name}: {row['before']} -> {row['after']} "
                f"({row['delta']:+})"
            )
    print(
        f"{args.before} -> {args.after}: {changed} of {len(rows)} "
        "series changed"
    )
    return 0
