"""Snapshot algebra: merge, diff, validation and exporters.

A snapshot is the plain-JSON payload produced by
:meth:`repro.metrics.registry.Registry.snapshot`::

    {"schema": "repro.metrics", "version": 1, "source": "...",
     "series": [{"name": ..., "kind": ..., "labels": {...}, ...}]}

Merging is the cross-process fold (one snapshot per worker process →
one fleet-wide snapshot): counters **sum**, histograms merge
bucket-wise with exact count/sum/min/max, gauges keep the last writer.
This composes with the registry's replace-per-worker ``absorb``
semantics: workers ship *cumulative* totals, the parent keeps only the
latest snapshot per worker, and the final merge sums across distinct
workers — never across two snapshots of the same one.

Exporters: canonical JSON and the Prometheus text exposition format
(the future ``serve`` endpoint's ``/metrics`` body).  ``diff`` renders
the delta between two snapshots — the bench-trend story told in
counters.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .registry import SCHEMA_NAME, SCHEMA_VERSION

_SERIES_KINDS = ("counter", "gauge", "histogram")


def _key(row: dict) -> tuple:
    return (row["name"], tuple(sorted(row.get("labels", {}).items())))


def _sorted_series(by_key: dict[tuple, dict]) -> list[dict]:
    return [
        by_key[k]
        for k in sorted(by_key, key=lambda k: (k[0], k[1]))
    ]


def merge_snapshots(snapshots: list[dict], source: str = "merged") -> dict:
    """Fold worker snapshots into one (sum/bucket-merge/last-wins)."""
    by_key: dict[tuple, dict] = {}
    for snap in snapshots:
        for row in snap.get("series", ()):
            key = _key(row)
            have = by_key.get(key)
            if have is None:
                merged = dict(row)
                merged["labels"] = dict(row.get("labels", {}))
                if row["kind"] == "histogram":
                    merged["buckets"] = dict(row.get("buckets", {}))
                by_key[key] = merged
                continue
            if have["kind"] != row["kind"]:
                raise ValueError(
                    f"metric {row['name']!r} is a {have['kind']} in one "
                    f"snapshot and a {row['kind']} in another"
                )
            if row["kind"] == "counter":
                have["value"] += row["value"]
            elif row["kind"] == "gauge":
                have["value"] = row["value"]
            else:
                have["count"] += row["count"]
                have["sum"] += row["sum"]
                for bound in ("min", "max"):
                    mine, theirs = have.get(bound), row.get(bound)
                    if theirs is None:
                        continue
                    if mine is None:
                        have[bound] = theirs
                    else:
                        have[bound] = (
                            min(mine, theirs) if bound == "min"
                            else max(mine, theirs)
                        )
                buckets = have["buckets"]
                for b, c in row.get("buckets", {}).items():
                    buckets[b] = buckets.get(b, 0) + c
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "source": source,
        "series": _sorted_series(by_key),
    }


def validate_snapshot(snapshot: dict) -> list[str]:
    """Schema errors (empty list = valid snapshot)."""
    errors: list[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not a JSON object"]
    if snapshot.get("schema") != SCHEMA_NAME:
        errors.append(
            f"schema is {snapshot.get('schema')!r}, expected "
            f"{SCHEMA_NAME!r}"
        )
    if snapshot.get("version") != SCHEMA_VERSION:
        errors.append(
            f"version is {snapshot.get('version')!r}, expected "
            f"{SCHEMA_VERSION}"
        )
    series = snapshot.get("series")
    if not isinstance(series, list):
        return errors + ["'series' is missing or not a list"]
    seen: set[tuple] = set()
    for i, row in enumerate(series):
        where = f"series[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        name = row.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing metric name")
            continue
        where = f"{where} ({name})"
        kind = row.get("kind")
        if kind not in _SERIES_KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        labels = row.get("labels", {})
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, (str, int, float, bool))
            for k, v in labels.items()
        ):
            errors.append(f"{where}: malformed labels {labels!r}")
        key = (name, tuple(sorted(labels.items())) if isinstance(labels, dict) else ())
        if key in seen:
            errors.append(f"{where}: duplicate series for labels {labels!r}")
        seen.add(key)
        if kind == "histogram":
            for field in ("count", "sum", "buckets"):
                if field not in row:
                    errors.append(f"{where}: histogram missing {field!r}")
            buckets = row.get("buckets", {})
            if isinstance(buckets, dict):
                total = sum(buckets.values())
                if "count" in row and total != row["count"]:
                    errors.append(
                        f"{where}: bucket counts sum to {total}, "
                        f"count says {row['count']}"
                    )
            else:
                errors.append(f"{where}: buckets is not an object")
        elif "value" not in row:
            errors.append(f"{where}: {kind} missing 'value'")
        elif not isinstance(row["value"], (int, float)) or isinstance(
            row["value"], bool
        ):
            errors.append(
                f"{where}: non-numeric value {row['value']!r}"
            )
    return errors


# ----------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_LABEL_RE.sub("_", k)}="{_escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters export as ``<name>_total``; histograms as cumulative
    ``<name>_bucket{le=...}`` lines (upper bounds ``2**e`` from the
    log2 buckets) plus ``_sum``/``_count``.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for row in snapshot.get("series", ()):
        name = _prom_name(row["name"])
        labels = row.get("labels", {})
        kind = row["kind"]
        if kind == "counter":
            full = f"{name}_total"
            if full not in typed:
                lines.append(f"# TYPE {full} counter")
                typed.add(full)
            lines.append(
                f"{full}{_prom_labels(labels)} {_prom_value(row['value'])}"
            )
        elif kind == "gauge":
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(
                f"{name}{_prom_labels(labels)} {_prom_value(row['value'])}"
            )
        else:
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            for e in sorted(int(b) for b in row.get("buckets", {})):
                cumulative += row["buckets"][str(e)]
                # Exponents past the float range (exact big-int
                # observations) saturate to +Inf-adjacent bounds.
                try:
                    bound = f"{2.0 ** e:g}"
                except OverflowError:
                    bound = f"2e{e}"
                le = {"le": bound}
                lines.append(
                    f"{name}_bucket{_prom_labels({**labels, **le})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels({**labels, 'le': '+Inf'})} {row['count']}"
            )
            lines.append(
                f"{name}_sum{_prom_labels(labels)} "
                f"{_prom_value(row['sum'])}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} {row['count']}"
            )
    return "\n".join(lines) + "\n"


def to_json(snapshot: dict) -> str:
    """Canonical JSON (sorted keys), one trailing newline."""
    return json.dumps(snapshot, sort_keys=True, indent=1) + "\n"


# ----------------------------------------------------------------------
# Diff.
# ----------------------------------------------------------------------

def diff_snapshots(before: dict, after: dict) -> list[dict]:
    """Per-series deltas, sorted by name/labels.

    Counters and gauges report ``before``/``after``/``delta``;
    histograms report count and sum deltas.  Series present on only
    one side appear with ``"only": "before" | "after"``.
    """
    a = {_key(r): r for r in before.get("series", ())}
    b = {_key(r): r for r in after.get("series", ())}
    rows = []
    for key in sorted(set(a) | set(b), key=lambda k: (k[0], k[1])):
        ra, rb = a.get(key), b.get(key)
        row: dict = {
            "name": key[0],
            "labels": dict(key[1]),
            "kind": (rb or ra)["kind"],
        }
        if ra is None or rb is None:
            row["only"] = "before" if rb is None else "after"
            present = ra or rb
            if present["kind"] == "histogram":
                row["count"] = present["count"]
            else:
                row["value"] = present["value"]
        elif row["kind"] == "histogram":
            row.update(
                count_before=ra["count"], count_after=rb["count"],
                count_delta=rb["count"] - ra["count"],
                sum_delta=rb["sum"] - ra["sum"],
            )
        else:
            row.update(
                before=ra["value"], after=rb["value"],
                delta=rb["value"] - ra["value"],
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Human summary (the sweep-end table and ``metrics summary``).
# ----------------------------------------------------------------------

def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10 ** 7:
        return f"{value:.3e}"
    return str(value)


def format_summary(snapshot: dict) -> str:
    """A fixed-width text table of every series in the snapshot."""
    rows = [("metric", "labels", "kind", "value / count·mean·max")]
    for row in snapshot.get("series", ()):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(row.get("labels", {}).items())
        )
        if row["kind"] == "histogram":
            count = row["count"]
            mean = (row["sum"] / count) if count else None
            cell = (
                f"n={count} mean={_fmt(mean)} "
                f"min={_fmt(row.get('min'))} max={_fmt(row.get('max'))}"
            )
        else:
            cell = _fmt(row["value"])
        rows.append((row["name"], labels or "-", row["kind"], cell))
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(
                [row[j].ljust(widths[j]) for j in range(3)] + [row[3]]
            ).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# File helpers + sidecar folding.
# ----------------------------------------------------------------------

def write_snapshot(path, snapshot: dict) -> None:
    Path(path).write_text(to_json(snapshot), encoding="utf-8")


def load_snapshot(path) -> dict:
    snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    errors = validate_snapshot(snapshot)
    if errors:
        raise ValueError(f"{path}: {errors[0]}")
    return snapshot


def find_sidecars(roots) -> list[Path]:
    """Snapshot sidecars under store / manifest roots.

    Workers and the manifest backend write per-worker snapshots to
    ``<spec-dir>/manifest/metrics/<worker>.json``; a bare
    ``metrics/*.json`` directly under a root is also honored.
    """
    found: list[Path] = []
    for root in roots:
        root = Path(root)
        if root.is_file():
            found.append(root)
            continue
        for pattern in ("metrics/*.json", "*/manifest/metrics/*.json"):
            found.extend(sorted(root.glob(pattern)))
    return found


def fold_sidecars(roots, source: str = "merged") -> tuple[dict, int]:
    """Merge every sidecar snapshot under ``roots``.

    Returns ``(snapshot, count)``; the snapshot is empty-but-valid when
    no sidecars exist.
    """
    snaps = [load_snapshot(p) for p in find_sidecars(roots)]
    return merge_snapshots(snaps, source=source), len(snaps)
