"""``EST`` / ``EST+``: exploration with a stationary token.

The paper (Section 2 and Section 4.2) borrows from [10, 12] a
procedure that lets an agent learn the map — and hence the exact size —
of an unknown anonymous graph, given a stationary token at its start
node; in ``GraphSizeCheck`` the token is played by the ``k_h - 1``
waiting co-located agents, so "the token is here" is exactly
``CurCard > 1`` (a *clean* exploration guarantees the explorer meets
agents only at the token node).

Our construction — **UXS-signature map building** (DESIGN.md Section 3):

* The *signature* of a node ``v`` is the trace ``(degree, entry_port,
  token_flag)`` observed while walking the exploration sequence
  ``U(n_hat)`` from ``v`` and backtracking to ``v``.
* If ``U(n_hat)`` is universal for the real graph, the walk from any
  node visits the token node; by reversibility of port walks, two
  nodes with equal signatures must then coincide (walk both traces to
  the first token visit and reverse: a deterministic reverse walk from
  the token node cannot end at two places).  Signatures are therefore
  *perfect node identifiers*, and a BFS over (node signature, port)
  probes reconstructs the map exactly.
* If the real graph is larger than ``n_hat``, the BFS either discovers
  more than ``n_hat`` signatures, runs into an inconsistency, or
  exceeds its round budget — all reported as failure.

``EST+`` (Section 4.2) wraps a budgeted ``EST`` run followed by an
exact backtrack of every traversed edge, and succeeds iff the map
closed within budget with learned size equal to ``n_hat``.
"""

from __future__ import annotations

from collections import deque

from ..sim.agent import AgentContext, intern_plan as _intern_plan, walk
from .uxs import UXSProvider

Signature = tuple


class ESTResult:
    """Outcome of a (budgeted) EST run."""

    __slots__ = ("completed", "size", "entries", "rounds", "reason")

    def __init__(
        self,
        completed: bool,
        size: int | None,
        entries: list[int],
        rounds: int,
        reason: str,
    ) -> None:
        self.completed = completed
        self.size = size
        self.entries = entries
        self.rounds = rounds
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ESTResult(completed={self.completed}, size={self.size}, "
            f"rounds={self.rounds}, reason={self.reason!r})"
        )


def est_budget(n_hat: int, provider: UXSProvider) -> int:
    """Our explicit ``T(EST(n_hat))`` bound (paper shape: O(n^5)).

    Worst case: one signature at the root plus one probe per directed
    port (at most ``n_hat * (n_hat - 1)`` of them under the degree cap
    enforced by ``BallTraversal``); each probe costs a tree walk (at
    most ``n_hat`` hops each way), one probe edge each way and one
    signature walk (``2 L`` moves).
    """
    length = provider.length(n_hat)
    probes = n_hat * n_hat + 1
    return 2 * length + probes * (2 * n_hat + 2 * length + 4)


def est(
    ctx: AgentContext,
    provider: UXSProvider,
    n_hat: int,
    budget: int,
):
    """Budgeted map construction from the current (token) node.

    Yields move ops only; consumes at most ``budget`` rounds.  Returns
    an :class:`ESTResult` whose ``entries`` lists the entry port of
    every move made (callers backtrack with it).
    """
    sequence = provider.sequence(n_hat)
    signature_steps = provider.walk_plan(n_hat)
    entries: list[int] = []
    state = {"moves": 0}

    def do_walk(steps):
        """Walk a plan, logging entry ports and the move count."""
        trace = yield from walk(ctx, _intern_plan(tuple(steps)))
        entries.extend(rec[2] for rec in trace)
        state["moves"] += len(trace)
        return trace

    def take_signature():
        """Signature of the current node: U-walk out and back.

        Each half is one walk plan; during ``GraphSizeCheck`` the
        waiting token group are plain statics, so the scheduler
        typically runs the whole 2L-edge walk as two events while
        still reporting the exact per-edge CurCard trace (the
        ``token_flag`` bits below).
        """
        sig: list[tuple[int, int, bool]] = [
            (ctx.degree(), -1, ctx.curcard() > 1)
        ]
        forward = yield from do_walk(signature_steps)
        walk_entries = [rec[2] for rec in forward]
        sig.extend((rec[1], rec[2], rec[3] > 1) for rec in forward)
        yield from do_walk(tuple(reversed(walk_entries)))
        return tuple(sig)

    def result(completed: bool, size: int | None, reason: str) -> ESTResult:
        return ESTResult(completed, size, entries, state["moves"], reason)

    length = len(sequence)
    sig_cost = 2 * length
    if state["moves"] + sig_cost > budget:
        return result(False, None, "budget")
    home_sig = yield from take_signature()
    known: dict[Signature, int] = {home_sig: 0}
    tree_path: dict[int, tuple[int, ...]] = {0: ()}
    degrees: dict[int, int] = {0: ctx.degree()}
    edge_map: dict[tuple[int, int], tuple[int, int]] = {}
    pending: deque[tuple[int, int]] = deque(
        (0, p) for p in range(ctx.degree())
    )
    while pending:
        x, port = pending.popleft()
        if (x, port) in edge_map:
            continue
        path = tree_path[x]
        probe_cost = 2 * (len(path) + 1) + sig_cost
        if state["moves"] + probe_cost > budget:
            return result(False, None, "budget")
        probe = yield from do_walk(tuple(path) + (port,))
        nav_entries = [rec[2] for rec in probe[:-1]]
        back_port = probe[-1][2]
        sig = yield from take_signature()
        y = known.get(sig)
        if y is None:
            if len(known) >= n_hat:
                # More nodes than hypothesised: walk home and stop.
                yield from do_walk(
                    tuple(reversed(nav_entries + [back_port]))
                )
                return result(False, len(known) + 1, "too-many-nodes")
            y = len(known)
            known[sig] = y
            tree_path[y] = path + (port,)
            degrees[y] = sig[0][0]
            pending.extend((y, p) for p in range(sig[0][0]) if p != back_port)
        edge_map[(x, port)] = (y, back_port)
        yield from do_walk(tuple(reversed(nav_entries + [back_port])))
    # Consistency: every recorded edge must be symmetric.
    for (x, port), (y, back_port) in edge_map.items():
        other = edge_map.get((y, back_port))
        if other is not None and other != (x, port):
            return result(False, len(known), "inconsistent")
    return result(True, len(known), "complete")


def est_plus(
    ctx: AgentContext,
    provider: UXSProvider,
    n_hat: int,
    budget: int,
):
    """``EST+(n_hat)``: budgeted EST then exact backtrack.

    Returns ``True`` iff the map closed within ``budget`` rounds and
    the learned size equals ``n_hat``.  Total duration is at most
    ``2 * budget`` rounds (the caller pads to an exact schedule, cf.
    Algorithm 11 line 7).
    """
    outcome = yield from est(ctx, provider, n_hat, budget)
    yield from walk(ctx, _intern_plan(tuple(reversed(outcome.entries))))
    return outcome.completed and outcome.size == n_hat
