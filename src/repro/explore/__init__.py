"""Exploration and rendezvous primitives (EXPLO, TZ, EST)."""

from .explo import ExploStats, explo
from .est import ESTResult, est, est_budget, est_plus
from .tz import BLOCK_SLOTS, tz, tz_schedule_bits
from .uxs import (
    UniversalityError,
    UXSProvider,
    generate_sequence,
    is_universal_for,
    nodes_visited,
    search_sequence,
    verify_exhaustive,
    walk_ports,
)

__all__ = [
    "explo",
    "ExploStats",
    "tz",
    "tz_schedule_bits",
    "BLOCK_SLOTS",
    "est",
    "est_plus",
    "est_budget",
    "ESTResult",
    "UXSProvider",
    "UniversalityError",
    "generate_sequence",
    "is_universal_for",
    "nodes_visited",
    "walk_ports",
    "search_sequence",
    "verify_exhaustive",
]
