"""The rendezvous procedure ``TZ(L)``.

The paper borrows Ta-Shma and Zwick's rendezvous procedure [37] as a
black box: two agents running ``TZ`` with distinct integer parameters
meet within a polynomial number of rounds.  ``GatherKnownUpperBound``
only ever invokes it between groups whose starts differ by at most
``T(EXPLO(N)) / 2`` rounds and whose parameters are bounded by the
phase index (Lemma 3.2 / Claim 3.4 of the paper), which admits the
following much simpler certified construction.

Construction
------------
Let ``s = code(bin(L))`` (the prefix-free transformed label).  Time is
divided into *blocks* of ``6 * T`` rounds, ``T = T(EXPLO(N))``.  In
block ``j`` the agent reads bit ``b = s[j mod |s|]`` and executes::

    b = 1:   EXPLO(N) | wait T | wait T | wait T | wait T | wait T
    b = 0:   wait T   | wait T | EXPLO(N) | wait T | wait T | wait T

Guarantee (verified by tests/test_tz.py): two groups running ``TZ``
with distinct parameters, started at most ``T/2`` rounds apart, share a
node within ``P(N, i) = 6 * T * ((i + 4)**2 + 4)`` rounds of the later
start, whenever both transformed labels have length at most ``i + 4``.

*Why the bits eventually differ*: distinct ``code`` strings can never
be powers of a common word (an interior aligned ``01`` at an odd
position would contradict Proposition 2.1), so by Fine and Wilf their
periodic expansions differ at some index ``j* < |s_A| * |s_B|``.

*Why differing bits force a meeting*: the exploring slot of either
schedule is flanked by stationary slots so that, for any start offset
``delta`` with ``|delta| <= T``, the *entire* exploration window of the
bit-1 agent falls inside a stationary window of the bit-0 agent (or
vice versa); the effective part of EXPLO then walks through the
stationary group's node.
"""

from __future__ import annotations

from ..sim.agent import AgentContext, wait
from ..sim.ops import Watch
from .explo import explo
from .uxs import UXSProvider

# Slot layouts per bit; "E" = EXPLO(N), "W" = wait T(EXPLO(N)) rounds.
_SLOTS_ONE = ("E", "W", "W", "W", "W", "W")
_SLOTS_ZERO = ("W", "W", "E", "W", "W", "W")

BLOCK_SLOTS = 6


def tz_schedule_bits(transformed_label: str, blocks: int) -> str:
    """The periodic bit stream driving the block schedule (for tests)."""
    return "".join(
        transformed_label[j % len(transformed_label)] for j in range(blocks)
    )


def tz(
    ctx: AgentContext,
    provider: UXSProvider,
    n: int,
    transformed_label: str,
    duration: int,
    watch: Watch | None = None,
    block_offset: int = 0,
):
    """Run the ``TZ`` schedule for exactly ``duration`` rounds.

    ``transformed_label`` must be a non-empty binary string (callers
    pass ``code(bin(L))``).  The stream is truncated mid-slot when the
    budget runs out, exactly like the paper's "execute TZ(lambda) for
    D_i consecutive rounds".

    ``block_offset`` shifts the bit-stream index: block ``j`` reads bit
    ``(block_offset + j) mod |s|``.  The gathering algorithm always
    uses 0 (groups start TZ near-simultaneously); the talking baseline
    anchors the index to a global block grid so that groups restarting
    at different times still compare stream positions alignedly.
    """
    if not transformed_label or set(transformed_label) - {"0", "1"}:
        raise ValueError("transformed label must be a non-empty binary string")
    slot = provider.explo_duration(n)
    if slot == 0:
        yield from wait(ctx, duration, watch)
        return
    used = 0
    j = block_offset
    while used < duration:
        bit = transformed_label[j % len(transformed_label)]
        layout = _SLOTS_ONE if bit == "1" else _SLOTS_ZERO
        for action in layout:
            if used >= duration:
                break
            chunk = min(slot, duration - used)
            if action == "E":
                yield from explo(ctx, provider, n, watch=watch, limit=chunk)
            else:
                yield from wait(ctx, chunk, watch)
            used += chunk
        j += 1
