"""Universal exploration sequences (UXS).

The paper's procedure ``EXPLO(N)`` (Section 2) follows a universal
exploration sequence for graphs of size at most ``N``: a sequence of
offsets ``x_1, x_2, ...`` such that an agent entering a node of degree
``d`` by port ``p`` exits by port ``q = (p + x_i) mod d``.  Reingold's
construction [36] guarantees polynomial-length sequences; rebuilding
that construction is out of the paper's scope, so we substitute
*certified* sequences (see DESIGN.md Section 3):

* for ``N <= 4`` the pinned sequences below are verified against
  **every** connected port-labelled graph of size at most ``N``
  (exhaustive certification; re-run via :func:`verify_exhaustive`);
* for larger ``N`` a deterministically seeded pseudorandom sequence of
  length ``factor * N**2 * ceil(log2 N)`` is used, and every simulation
  front-end *verifies the sequence against the actual graph* before
  running (:func:`is_universal_for`), so a coverage failure is a loud
  pre-flight error rather than a silent correctness bug.

The sequence for a given ``N`` is a pure function of ``(N, seed,
factor)``; all agents of a run share one provider and therefore agree
on ``EXPLO(N)`` step by step, as the model requires.
"""

from __future__ import annotations

import random

from ..graphs.enumerate_graphs import iter_all_port_graphs
from ..graphs.port_graph import PortGraph
from ..metrics import register_collector as _register_collector
from ..sim.ops import iter_walk, uxs_walk_steps

# Provider cache tallies, process-wide across all UXSProvider
# instances: plain module ints on the hot path, published as absolute
# totals into an attached metrics registry at snapshot time.
_SEQ_HITS = 0
_SEQ_MISSES = 0
_PLAN_HITS = 0
_PLAN_MISSES = 0


def cache_stats() -> dict[str, int]:
    """Process-wide UXS cache tallies (sequence + walk-plan caches)."""
    return {
        "seq_hits": _SEQ_HITS,
        "seq_misses": _SEQ_MISSES,
        "plan_hits": _PLAN_HITS,
        "plan_misses": _PLAN_MISSES,
    }


def reset_cache_stats() -> None:
    """Zero the tallies (a forked pool worker starts its own totals)."""
    global _SEQ_HITS, _SEQ_MISSES, _PLAN_HITS, _PLAN_MISSES
    _SEQ_HITS = 0
    _SEQ_MISSES = 0
    _PLAN_HITS = 0
    _PLAN_MISSES = 0


def _collect_cache_stats(registry) -> None:
    registry.counter("explore.seq_cache.hits").value = _SEQ_HITS
    registry.counter("explore.seq_cache.misses").value = _SEQ_MISSES
    registry.counter("explore.plan_cache.hits").value = _PLAN_HITS
    registry.counter("explore.plan_cache.misses").value = _PLAN_MISSES


_register_collector(_collect_cache_stats)

# Exhaustively certified sequences (see tests/test_uxs.py).  The entry
# for N covers every connected port-labelled graph with at most N
# nodes, from every start node.
_PINNED: dict[int, tuple[int, ...]] = {
    1: (),
    2: (0,),
    # Found by tools/find_uxs.py; certified against every connected
    # port-labelled graph of size <= N in tests/test_uxs.py.
    3: (320681, 183279, 689959),
    4: (347801, 161, 95861, 217151, 122209, 519787, 226249, 415205),
}


class UniversalityError(RuntimeError):
    """A candidate exploration sequence failed to cover a graph."""


# Short sequences certified by sampling (tools/find_uxs.py) against the
# standard graph families and hundreds of random graphs of each size
# (tests/test_uxs.py re-verifies).  Keyed by N, valued (length, seed)
# for :func:`generate_sequence`.  Every simulation additionally
# verifies its own graph at pre-flight, so these are safe defaults.
SAMPLED_LENGTHS: dict[int, tuple[int, int]] = {
    5: (39, 4501231),
    6: (68, 5402119),
    8: (144, 7204482),
    10: (230, 9007168),
    12: (354, 10811005),
    14: (482, 12600001),
    16: (630, 14400000),
    18: (810, 16200000),
    20: (1000, 18000000),
}


def first_exit_port(degree: int, offset: int) -> int:
    """Exit port for the first step of a walk (no entry port yet)."""
    return offset % degree


def next_exit_port(entry_port: int, offset: int, degree: int) -> int:
    """The paper's UXS step rule: ``q = (p + x_i) mod d``."""
    return (entry_port + offset) % degree


def walk_ports(
    graph: PortGraph, start: int, sequence: tuple[int, ...]
) -> list[int]:
    """Exit ports taken when walking ``sequence`` from ``start``.

    Both walk helpers (and the scheduler's segment planner) share the
    step iterator in :mod:`repro.sim.ops`, so offline certification,
    agent-side walks and the fast path cannot disagree on step
    semantics.
    """
    return [
        port
        for port, _node, _entry in iter_walk(
            graph, start, uxs_walk_steps(sequence)
        )
    ]


def nodes_visited(
    graph: PortGraph, start: int, sequence: tuple[int, ...]
) -> set[int]:
    """Set of nodes visited when walking ``sequence`` from ``start``."""
    visited = {start}
    for _port, node, _entry in iter_walk(
        graph, start, uxs_walk_steps(sequence)
    ):
        visited.add(node)
    return visited


def is_universal_for(graph: PortGraph, sequence: tuple[int, ...]) -> bool:
    """Does the sequence visit all nodes from *every* start node?"""
    return all(
        len(nodes_visited(graph, start, sequence)) == graph.n
        for start in graph.nodes()
    )


def generate_sequence(length: int, seed: int) -> tuple[int, ...]:
    """Deterministic pseudorandom offset sequence.

    Offsets are drawn from a wide range; they are reduced modulo the
    local degree at application time, so the range only needs to be
    large enough to hit every residue of every small degree.
    """
    rng = random.Random(seed)
    return tuple(rng.randrange(0, 720720) for _ in range(length))


def _default_length(n: int, factor: int) -> int:
    if n <= 1:
        return 0
    bits = max(1, (n - 1).bit_length())
    return max(4, factor * n * n * bits)


class UXSProvider:
    """Source of exploration sequences shared by all agents of a run.

    Parameters
    ----------
    factor:
        Length multiplier for generated (non-pinned) sequences.
    seed:
        Seed of the deterministic generator.
    lengths:
        Optional per-``N`` length overrides (``{8: 300}``) for callers
        that certified a shorter sequence for their graph family.
    """

    def __init__(
        self,
        factor: int = 4,
        seed: int = 0x5EED,
        lengths: dict[int, int] | None = None,
    ) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor
        self.seed = seed
        self.lengths = dict(lengths) if lengths else {}
        # Both caches are keyed by the *source descriptor* of the
        # sequence — ``(kind, n, length, seed)`` — not by the bare
        # ``n``.  A bare-``n`` key served stale entries when
        # ``SAMPLED_LENGTHS`` is extended at runtime (tests mutate it)
        # or when ``pin()`` replaced a sequence that a plan had already
        # been derived from.
        self._pins: dict[int, tuple[int, ...]] = {}
        self._pin_version: dict[int, int] = {}
        self._cache: dict[tuple, tuple[int, ...]] = {}
        self._plan_cache: dict[tuple, tuple[int, ...]] = {}

    def _source_key(self, n: int) -> tuple:
        """Descriptor of where ``sequence(n)`` currently comes from."""
        if n in self._pins:
            return ("pin", n, self._pin_version[n])
        if n in self.lengths:
            return ("len", n, self.lengths[n], self.seed + n)
        if n in _PINNED:
            return ("exhaustive", n)
        if n in SAMPLED_LENGTHS:
            length, seed = SAMPLED_LENGTHS[n]
            return ("sampled", n, length, seed)
        return ("gen", n, _default_length(n, self.factor), self.seed + n)

    def sequence(self, n: int) -> tuple[int, ...]:
        """The exploration sequence for graphs of size at most ``n``."""
        if n < 1:
            raise ValueError("n must be >= 1")
        global _SEQ_HITS, _SEQ_MISSES
        key = self._source_key(n)
        cached = self._cache.get(key)
        if cached is not None:
            _SEQ_HITS += 1
            return cached
        _SEQ_MISSES += 1
        kind = key[0]
        if kind == "pin":
            seq = self._pins[n]
        elif kind == "exhaustive":
            seq = _PINNED[n]
        else:  # "len" / "sampled" / "gen" all carry (length, seed)
            seq = generate_sequence(key[2], key[3])
        self._cache[key] = seq
        return seq

    def walk_plan(self, n: int) -> tuple[int, ...]:
        """The sequence for ``n`` encoded as a walk plan (rule steps).

        Cached: EXPLO / signature emitters slice this tuple instead of
        re-encoding the sequence on every tour.  The stable identity of
        the returned tuple also lets the scheduler's route cache key
        chased routes by plan identity.
        """
        global _PLAN_HITS, _PLAN_MISSES
        key = self._source_key(n)
        cached = self._plan_cache.get(key)
        if cached is None:
            _PLAN_MISSES += 1
            cached = uxs_walk_steps(self.sequence(n))
            self._plan_cache[key] = cached
        else:
            _PLAN_HITS += 1
        return cached

    def length(self, n: int) -> int:
        """Number of edge traversals of the effective part of EXPLO(n)."""
        return len(self.sequence(n))

    def explo_duration(self, n: int) -> int:
        """T(EXPLO(n)): effective part + backtrack part."""
        return 2 * self.length(n)

    def pin(self, n: int, sequence: tuple[int, ...]) -> None:
        """Install a custom (externally certified) sequence for ``n``.

        Bumping the pin version retires every cache entry derived from
        the previous source — both the sequence and its walk plan —
        without touching entries for other sizes.
        """
        self._pins[n] = tuple(sequence)
        self._pin_version[n] = self._pin_version.get(n, 0) + 1

    def verify_for_graph(self, n: int, graph: PortGraph) -> None:
        """Pre-flight check: raise unless the sequence covers ``graph``.

        Called by the simulation front-ends for every graph they run,
        which turns the probabilistic tail-risk of a generated sequence
        into a deterministic, loud failure.
        """
        if graph.n > n:
            raise UniversalityError(
                f"graph has {graph.n} nodes but the size bound is {n}"
            )
        if not is_universal_for(graph, self.sequence(n)):
            raise UniversalityError(
                f"exploration sequence for N={n} (length "
                f"{self.length(n)}) does not cover the given graph; "
                "increase the factor, change the seed, or pin a longer "
                "sequence"
            )


def verify_exhaustive(sequence: tuple[int, ...], max_n: int) -> None:
    """Certify a sequence against every port graph of size <= max_n.

    Exponential in ``max_n``; intended for ``max_n <= 4``.
    Raises :class:`UniversalityError` on the first failure.
    """
    for n in range(2, max_n + 1):
        for graph in iter_all_port_graphs(n):
            if not is_universal_for(graph, sequence):
                raise UniversalityError(
                    f"sequence fails on a graph of size {n}:\n"
                    f"{graph.describe()}"
                )


def search_sequence(
    max_n: int,
    max_length: int,
    attempts: int = 200,
    seed: int = 1,
) -> tuple[int, ...]:
    """Find a short sequence certified for all graphs of size <= max_n.

    Randomized search used offline (tools/find_uxs.py) to produce the
    pinned sequences; deterministic given its arguments.
    """
    graphs = [
        graph for n in range(2, max_n + 1) for graph in iter_all_port_graphs(n)
    ]
    for length in range(1, max_length + 1):
        for attempt in range(attempts):
            candidate = generate_sequence(length, seed * 100_003 + length * 1_009 + attempt)
            if all(is_universal_for(g, candidate) for g in graphs):
                return candidate
    raise UniversalityError(
        f"no sequence of length <= {max_length} found for size {max_n}"
    )
