"""The procedure ``EXPLO(N)`` of Section 2.

``EXPLO(N)`` lasts exactly ``T(EXPLO(N)) = 2 * L`` rounds, where ``L``
is the length of the exploration sequence for size ``N``:

* the *effective part* (first ``L`` rounds) follows the universal
  exploration sequence and visits every node of any graph of size at
  most ``N``;
* the *backtrack part* (last ``L`` rounds) retraces the traversed
  edges in reverse order, returning the agent to its starting node.

The generator below is written against :class:`~repro.sim.agent.
AgentContext` only — it steers by the observed degree and entry port,
never by node identity, exactly as the model allows.
"""

from __future__ import annotations

from ..sim.agent import AgentContext, move
from ..sim.ops import Watch
from .uxs import UXSProvider, first_exit_port, next_exit_port


class ExploStats:
    """Statistics of one EXPLO execution.

    ``min_curcard`` is the smallest ``CurCard`` observed during the
    execution — the quantity lines 17 and 24 of Algorithm 4
    (``Communicate``) read off.
    """

    __slots__ = ("min_curcard", "rounds")

    def __init__(self, min_curcard: int, rounds: int) -> None:
        self.min_curcard = min_curcard
        self.rounds = rounds


def explo(
    ctx: AgentContext,
    provider: UXSProvider,
    n: int,
    watch: Watch | None = None,
    limit: int | None = None,
):
    """Execute ``EXPLO(n)`` (optionally only its first ``limit`` rounds).

    A ``limit`` smaller than ``2 * L`` truncates the instruction stream
    mid-procedure (the agent may end away from its start); this is how
    ``TZ`` executes "for D_i consecutive rounds".

    Raises :class:`~repro.sim.agent.WatchTriggered` as soon as the
    watch fires on any arrival observation.
    """
    sequence = provider.sequence(n)
    length = len(sequence)
    total = 2 * length if limit is None else min(limit, 2 * length)
    min_card = ctx.curcard()
    entries: list[int] = []
    entry: int | None = None
    effective = min(length, total)
    for i in range(effective):
        degree = ctx.degree()
        if entry is None:
            port = first_exit_port(degree, sequence[i])
        else:
            port = next_exit_port(entry, sequence[i], degree)
        obs = yield from move(ctx, port, watch)
        entry = obs.entry_port
        entries.append(entry)
        if obs.curcard < min_card:
            min_card = obs.curcard
    remaining = total - effective
    for e in list(reversed(entries))[:remaining]:
        obs = yield from move(ctx, e, watch)
        if obs.curcard < min_card:
            min_card = obs.curcard
    return ExploStats(min_card, total)
