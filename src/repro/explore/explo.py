"""The procedure ``EXPLO(N)`` of Section 2.

``EXPLO(N)`` lasts exactly ``T(EXPLO(N)) = 2 * L`` rounds, where ``L``
is the length of the exploration sequence for size ``N``:

* the *effective part* (first ``L`` rounds) follows the universal
  exploration sequence and visits every node of any graph of size at
  most ``N``;
* the *backtrack part* (last ``L`` rounds) retraces the traversed
  edges in reverse order, returning the agent to its starting node.

The generator below is written against :class:`~repro.sim.agent.
AgentContext` only — it steers by the observed degree and entry port,
never by node identity, exactly as the model allows.  Both halves are
emitted as *walk plans* (offset-rule steps for the effective part,
absolute entry ports for the backtrack): the plan is a pure function
of information the agent legitimately has, and the scheduler's segment
fast path merely executes it without a per-edge generator resume.
"""

from __future__ import annotations

from ..sim.agent import AgentContext, intern_plan, walk_cols
from ..sim.ops import Watch
from .uxs import UXSProvider


class ExploStats:
    """Statistics of one EXPLO execution.

    ``min_curcard`` is the smallest ``CurCard`` observed during the
    execution — the quantity lines 17 and 24 of Algorithm 4
    (``Communicate``) read off.
    """

    __slots__ = ("min_curcard", "rounds")

    def __init__(self, min_curcard: int, rounds: int) -> None:
        self.min_curcard = min_curcard
        self.rounds = rounds


def explo(
    ctx: AgentContext,
    provider: UXSProvider,
    n: int,
    watch: Watch | None = None,
    limit: int | None = None,
):
    """Execute ``EXPLO(n)`` (optionally only its first ``limit`` rounds).

    A ``limit`` smaller than ``2 * L`` truncates the instruction stream
    mid-procedure (the agent may end away from its start); this is how
    ``TZ`` executes "for D_i consecutive rounds".

    Raises :class:`~repro.sim.agent.WatchTriggered` as soon as the
    watch fires on any arrival observation.
    """
    plan = provider.walk_plan(n)
    length = len(plan)
    total = 2 * length if limit is None else min(limit, 2 * length)
    min_card = ctx.curcard()
    effective = min(length, total)
    # Effective part: one precomputed UXS walk plan; the scheduler runs
    # every interaction-free stretch of it as a single event.  Plans
    # are interned so the route cache (keyed by plan identity) hits on
    # every repeated EXPLO of the same agent or group; the full slice
    # is already the provider's canonical tuple.
    entries, _degs, cards = yield from walk_cols(
        ctx, intern_plan(plan[:effective]), watch
    )
    if cards:
        low = min(cards)
        if low < min_card:
            min_card = low
    remaining = total - effective
    if remaining > 0:
        # Backtrack part: the recorded entry ports, absolute, reversed.
        _bents, _bdegs, bcards = yield from walk_cols(
            ctx, intern_plan(tuple(reversed(entries))[:remaining]), watch
        )
        if bcards:
            low = min(bcards)
            if low < min_card:
                min_card = low
    return ExploStats(min_card, total)
