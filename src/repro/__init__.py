"""repro: a reproduction of "Want to Gather? No Need to Chatter!"

Bouchard, Dieudonne and Pelc (PODC 2020) show that mobile agents in an
anonymous network can gather, elect a leader and even gossip
*deterministically* while being unable to communicate: the only signal
an agent ever receives is the number of agents standing at its node.

This package provides:

* the network and simulation substrate (:mod:`repro.graphs`,
  :mod:`repro.sim`) — an event-driven synchronous-round simulator with
  an arbitrary-precision clock;
* the exploration/rendezvous primitives the paper builds on
  (:mod:`repro.explore`): ``EXPLO``, ``TZ`` and ``EST``;
* the paper's algorithms (:mod:`repro.core`):
  ``GatherKnownUpperBound``, ``GatherUnknownUpperBound``, ``Gossip``
  and the leader-election by-product;
* baselines in the traditional talking model
  (:mod:`repro.baselines`) and scaling analysis helpers
  (:mod:`repro.analysis`).

Quickstart::

    from repro import ring, run_gather_known
    report = run_gather_known(ring(6), labels=[5, 9, 12], n_bound=8)
    print(report.round, report.leader)
"""

from .graphs import (
    GraphError,
    PortGraph,
    complete_graph,
    family_for_size,
    grid_graph,
    hypercube,
    lollipop,
    oriented_ring,
    path_graph,
    random_connected_graph,
    random_regular,
    random_tree,
    ring,
    single_edge,
    star_graph,
    torus,
    torus_for_size,
)
from .explore import UXSProvider, UniversalityError
from .sim import (
    AgentSpec,
    BudgetExceededError,
    DeadlockError,
    Simulation,
    SimulationError,
    SimulationResult,
)
from .core import (
    Configuration,
    DovetailOmega,
    GatherOutcome,
    GatherReport,
    GossipOutcome,
    GossipReport,
    InfeasibleHypothesisError,
    KnownBoundParameters,
    RunValidationError,
    TwoNodeDenseOmega,
    UnknownBoundSchedule,
    UnknownGatherReport,
    run_gather_known,
    run_gather_unknown,
    run_gossip_known,
    run_gossip_unknown,
    run_leader_election,
)

__version__ = "1.0.0"

__all__ = [
    "PortGraph",
    "GraphError",
    "single_edge",
    "ring",
    "oriented_ring",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "hypercube",
    "random_tree",
    "random_connected_graph",
    "random_regular",
    "torus",
    "torus_for_size",
    "lollipop",
    "family_for_size",
    "UXSProvider",
    "UniversalityError",
    "Simulation",
    "SimulationResult",
    "AgentSpec",
    "SimulationError",
    "DeadlockError",
    "BudgetExceededError",
    "KnownBoundParameters",
    "GatherOutcome",
    "GossipOutcome",
    "GatherReport",
    "GossipReport",
    "RunValidationError",
    "run_gather_known",
    "run_gossip_known",
    "run_leader_election",
    "run_gather_unknown",
    "run_gossip_unknown",
    "Configuration",
    "DovetailOmega",
    "TwoNodeDenseOmega",
    "UnknownBoundSchedule",
    "UnknownGatherReport",
    "InfeasibleHypothesisError",
    "__version__",
]
