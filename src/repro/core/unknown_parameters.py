"""The doubly-exponential schedule of ``GatherUnknownUpperBound``.

Section 4.2 of the paper defines, for each hypothesis index ``h`` (with
``n_h`` the supposed size, ``k_h`` the supposed team size and ``m_h``
the largest supposed size so far):

* ``T(BallTraversal(h)) = 64**h * m_h**(7 h m_h**5)`` — bound on the
  ball traversal;
* ``S_h = T(BallTraversal(h)) + sum_{i<h} T_i`` — bound on "everything
  before the main part of hypothesis h";
* ``T_h = 8 m_h**(2 m_h**5) (3 S_h + 2 T(BallTraversal(h)))`` — exact
  duration of a failed ``Hypothesis(h)``;
* slowdown waits of ``7 m_h**(2 m_h**5)`` rounds around every edge
  traversal outside the sensitive windows;
* ball paths of length ``4 h m_h**5`` and clean-exploration paths of
  length ``n_h**5 + 1``.

These numbers are astronomically large (``T_1`` is about ``2**295``
already) — the event-driven clock (DESIGN.md Section 4) is what makes
them executable.  The one substitution is ``T(EST(n))``: the paper
assumes a black-box bound ``n**5`` from [12]; we use the explicit
budget of our EST implementation (:func:`repro.explore.est.est_budget`,
same ``O(n**5)`` shape).  ``check_invariants`` asserts every dominance
relation the correctness proofs need.
"""

from __future__ import annotations

from ..explore.est import est_budget
from ..explore.uxs import UXSProvider
from .configurations import Configuration


class InfeasibleHypothesisError(RuntimeError):
    """Executing this hypothesis would need more moves than any
    computer can perform (see DESIGN.md Section 4: for ``n_h >= 3``
    the ball traversal alone enumerates ``(n_h - 1)**(4 h m_h**5)``
    paths)."""


class UnknownBoundSchedule:
    """Derived timing quantities for a given enumeration Ω."""

    #: Executing a hypothesis is refused above this many enumerated
    #: ball paths (1 for n_h = 2; astronomically more for n_h >= 3).
    MAX_EXECUTABLE_PATHS = 10_000

    def __init__(self, omega, provider: UXSProvider | None = None) -> None:
        self.omega = omega
        self.provider = provider if provider is not None else UXSProvider()
        self._t_ball: dict[int, int] = {}
        self._t_hyp: dict[int, int] = {}
        self._s: dict[int, int] = {}
        self._m: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Configuration shorthands.
    # ------------------------------------------------------------------

    def config(self, h: int) -> Configuration:
        """phi_h."""
        return self.omega.config(h)

    def n(self, h: int) -> int:
        """``n_h``: size of the hypothesised graph."""
        return self.config(h).n

    def k(self, h: int) -> int:
        """``k_h``: number of labelled nodes in phi_h."""
        return self.config(h).k

    def m(self, h: int) -> int:
        """``m_h = max(n_1, ..., n_h)``."""
        cached = self._m.get(h)
        if cached is None:
            cached = self.n(h) if h == 1 else max(self.m(h - 1), self.n(h))
            self._m[h] = cached
        return cached

    # ------------------------------------------------------------------
    # The paper's schedule.
    # ------------------------------------------------------------------

    def ball_length(self, h: int) -> int:
        """Length ``4 h m_h**5`` of each enumerated ball path."""
        return 4 * h * self.m(h) ** 5

    def slowdown(self, h: int) -> int:
        """The inter-move waiting period ``7 m_h**(2 m_h**5)``."""
        m = self.m(h)
        return 7 * m ** (2 * m**5)

    def t_ball(self, h: int) -> int:
        """``T(BallTraversal(h)) = 64**h * m_h**(7 h m_h**5)``."""
        cached = self._t_ball.get(h)
        if cached is None:
            m = self.m(h)
            cached = 64**h * m ** (7 * h * m**5)
            self._t_ball[h] = cached
        return cached

    def s(self, h: int) -> int:
        """``S_h``: ball traversal bound plus all previous ``T_i``."""
        cached = self._s.get(h)
        if cached is None:
            cached = self.t_ball(h) + sum(self.t_hyp(i) for i in range(1, h))
            self._s[h] = cached
        return cached

    def t_hyp(self, h: int) -> int:
        """``T_h``: exact duration of a failed ``Hypothesis(h)``."""
        cached = self._t_hyp.get(h)
        if cached is None:
            m = self.m(h)
            cached = 8 * m ** (2 * m**5) * (3 * self.s(h) + 2 * self.t_ball(h))
            self._t_hyp[h] = cached
        return cached

    def ece_length(self, h: int) -> int:
        """Clean-exploration path length ``n_h**5 + 1``."""
        return self.n(h) ** 5 + 1

    def t_est(self, n: int) -> int:
        """Our explicit ``T(EST(n))`` (paper shape ``n**5``)."""
        return est_budget(n, self.provider)

    def start_round_bound(self, h: int) -> int:
        """Latest wake-relative round at which Hypothesis(h) can start."""
        return sum(self.t_hyp(i) for i in range(1, h))

    # ------------------------------------------------------------------
    # Feasibility and proof-invariant checks.
    # ------------------------------------------------------------------

    def ball_path_count(self, h: int) -> int:
        """Number of ball paths: ``(n_h - 1)**ball_length(h)``."""
        return (self.n(h) - 1) ** self.ball_length(h)

    def ece_path_count(self, h: int) -> int:
        """Number of clean-exploration paths: ``(n_h-1)**(n_h**5+1)``."""
        return (self.n(h) - 1) ** self.ece_length(h)

    def assert_executable(self, h: int) -> None:
        """Refuse hypotheses whose move count is physically impossible."""
        paths = self.ball_path_count(h)
        if paths > self.MAX_EXECUTABLE_PATHS:
            raise InfeasibleHypothesisError(
                f"Hypothesis({h}) has n_h = {self.n(h)}: its ball "
                f"traversal enumerates {paths:.3e}"
                if paths < 10**300
                else f"Hypothesis({h}) has n_h = {self.n(h)}: its ball "
                f"traversal enumerates more than 10**300 paths"
            )

    def sensitive_duration_bound(self, h: int) -> int:
        """Worst-case rounds for StarCheck + EnsureCleanExploration +
        GraphSizeCheck of hypothesis ``h`` (our implementations).

        The paper's Lemma 4.4 bounds this by ``7 n_h**(2 n_h**5)``,
        which the slowdown waits must dominate; ``check_invariants``
        asserts our bound stays below the slowdown.
        """
        n = self.n(h)
        k = self.k(h)
        star = 4 * (n - 1) * k
        ece = 2 * self.ece_path_count(h) * 2 * self.ece_length(h)
        gsc = 2 * k * self.t_est(n)
        return star + ece + gsc

    def first_part_duration_bound(self, h: int) -> int:
        """Worst-case duration of lines 3-14 of Algorithm 6."""
        ball = self.actual_ball_duration_bound(h)
        mtcn = (self.n(h) - 1) + 2 * (self.s(h) + self.n(h))
        return ball + self.s(h) + mtcn + self.sensitive_duration_bound(h)

    def actual_ball_duration_bound(self, h: int) -> int:
        """Worst-case duration of our BallTraversal(h) execution."""
        per_path = 2 * self.ball_length(h) * (1 + self.slowdown(h))
        return self.ball_path_count(h) * per_path

    def first_part_moves_bound(self, h: int) -> int:
        """Bound on edge traversals during the first part (the second
        part retraces each of them behind a slowdown wait)."""
        ball_moves = self.ball_path_count(h) * 2 * self.ball_length(h)
        mtcn_moves = self.n(h) - 1
        sensitive_moves = self.sensitive_duration_bound(h)
        return ball_moves + mtcn_moves + sensitive_moves

    def check_invariants(self, h: int) -> None:
        """Assert every dominance relation the proofs rely on.

        * the slowdown wait exceeds the sensitive windows of every
          hypothesis up to ``h`` (Lemma 4.9's separation argument);
        * ``T(BallTraversal(h))`` dominates our actual ball traversal;
        * ``T_h`` dominates first part + retrace (so a failed
          hypothesis can always pad to exactly ``T_h``, Lemma 4.5).
        """
        for x in range(1, h + 1):
            if self.slowdown(h) < self.sensitive_duration_bound(x):
                raise AssertionError(
                    f"slowdown({h}) < sensitive bound of hypothesis {x}"
                )
        if self.t_ball(h) < self.actual_ball_duration_bound(h):
            raise AssertionError(f"T(BallTraversal({h})) too small")
        retrace = (1 + self.slowdown(h)) * self.first_part_moves_bound(h)
        if self.t_hyp(h) < self.first_part_duration_bound(h) + retrace:
            raise AssertionError(f"T_{h} smaller than a worst-case run")
