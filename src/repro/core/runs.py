"""High-level entry points: configure, simulate and validate a run.

These wrappers are the public API most users (and all benchmarks)
interact with: they assemble the agents, pre-flight-verify the
exploration sequences against the actual graph, run the event-driven
simulation and post-validate the outcome against the paper's
guarantees (same declaration round, same node, consistent leader).
"""

from __future__ import annotations

from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from ..sim.agent import AgentContext, declare
from ..sim.scheduler import AgentSpec, Simulation, SimulationResult
from .configurations import DovetailOmega
from .gather_known import gather_known_core, gather_known_program, smallest_label_length
from .gather_unknown import gather_unknown_core, gather_unknown_program
from .gossip import gossip
from .parameters import KnownBoundParameters
from .results import GatherOutcome, GossipOutcome
from .unknown_parameters import UnknownBoundSchedule


class RunValidationError(AssertionError):
    """The simulation finished but violated a guarantee of the paper."""


class PreparedRun:
    """A fully built, not-yet-run simulation plus its validation step.

    The ``prepare_*`` front-ends below split run assembly (placement,
    pre-flight UXS verification, agent program construction) from
    execution so the cohort executor can collect many same-graph
    simulations and drive them in lockstep; ``finalize`` turns a
    :class:`~repro.sim.scheduler.SimulationResult` — however obtained —
    into the same validated report ``run()`` returns.
    """

    __slots__ = ("simulation", "_finalize")

    def __init__(self, simulation: Simulation, finalize) -> None:
        self.simulation = simulation
        self._finalize = finalize

    def finalize(self, sim_result: SimulationResult):
        """Validate a result of :attr:`simulation` into a report."""
        return self._finalize(sim_result)

    def run(self):
        """Execute the simulation and validate, like the ``run_*`` API."""
        return self._finalize(self.simulation.run())


class GatherReport:
    """Validated result of a gathering run."""

    __slots__ = (
        "sim_result",
        "labels",
        "leader",
        "round",
        "node",
        "phases",
        "events",
        "total_moves",
    )

    def __init__(self, sim_result: SimulationResult, labels: list[int]) -> None:
        self.sim_result = sim_result
        self.labels = list(labels)
        if not sim_result.gathered():
            raise RunValidationError(
                "agents did not declare gathering at one node in one round: "
                f"{sim_result.outcomes}"
            )
        payloads = sim_result.payloads()
        leaders = {p.leader for p in payloads}
        if len(leaders) != 1:
            raise RunValidationError(f"leader disagreement: {leaders}")
        leader = leaders.pop()
        if leader not in self.labels:
            raise RunValidationError(
                f"elected leader {leader} is not an agent label {self.labels}"
            )
        self.leader = leader
        self.round = sim_result.declaration_round()
        self.node = sim_result.meeting_node()
        self.phases = max(p.phase for p in payloads)
        self.events = sim_result.events
        self.total_moves = sim_result.total_moves

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GatherReport(round={self.round}, node={self.node}, "
            f"leader={self.leader}, phases={self.phases})"
        )


def _resolve_placement(
    graph: PortGraph,
    labels: list[int],
    start_nodes: list[int] | None,
    wake_rounds: list[int | None] | None,
) -> tuple[list[int], list[int | None]]:
    if start_nodes is None:
        start_nodes = list(range(len(labels)))
    if wake_rounds is None:
        wake_rounds = [0] * len(labels)
    if len(start_nodes) != len(labels) or len(wake_rounds) != len(labels):
        raise ValueError("labels, start_nodes and wake_rounds must align")
    if len(labels) < 2:
        raise ValueError("gathering needs at least two agents")
    if len(labels) > graph.n:
        raise ValueError("more agents than nodes")
    return start_nodes, wake_rounds


def prepare_gather_known(
    graph: PortGraph,
    labels: list[int],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
    max_events: int | None = 300_000_000,
    faults=None,
    dynamics=None,
    horizon: int | None = None,
) -> PreparedRun:
    """Assemble a ``GatherKnownUpperBound`` run without executing it.

    ``faults`` / ``dynamics`` / ``horizon`` are forwarded to
    :class:`~repro.sim.scheduler.Simulation` unchanged; faulted runs
    bypass :meth:`PreparedRun.run` (whose ``GatherReport`` validation
    assumes everyone gathers) and inspect the raw result instead.
    """
    start_nodes, wake_rounds = _resolve_placement(
        graph, labels, start_nodes, wake_rounds
    )
    params = KnownBoundParameters(n_bound, provider)
    params.provider.verify_for_graph(n_bound, graph)
    budget = params.max_phases(smallest_label_length(labels)) + 2
    program = gather_known_program(params, max_phases=budget)
    specs = [
        AgentSpec(label, node, program, wake)
        for label, node, wake in zip(labels, start_nodes, wake_rounds)
    ]
    sim = Simulation(
        graph,
        specs,
        max_events=max_events,
        faults=faults,
        dynamics=dynamics,
        horizon=horizon,
    )
    labels = list(labels)
    return PreparedRun(sim, lambda result: GatherReport(result, labels))


def run_gather_known(
    graph: PortGraph,
    labels: list[int],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
    max_events: int | None = 300_000_000,
) -> GatherReport:
    """Simulate ``GatherKnownUpperBound`` and validate Theorem 3.1.

    Parameters
    ----------
    graph:
        The (anonymous, port-labelled) network.
    labels:
        Distinct positive agent labels.
    n_bound:
        The common upper bound ``N >= graph.n`` known to all agents.
    start_nodes / wake_rounds:
        Placement and adversary wake schedule; ``None`` wake means the
        agent stays dormant until visited.
    """
    return prepare_gather_known(
        graph,
        labels,
        n_bound,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
        max_events=max_events,
    ).run()


class GossipReport:
    """Validated result of a gossiping run."""

    __slots__ = ("sim_result", "messages", "round", "events", "leader")

    def __init__(
        self,
        sim_result: SimulationResult,
        expected: dict[str, int],
    ) -> None:
        self.sim_result = sim_result
        payloads = sim_result.payloads()
        rounds = {o.finish_round for o in sim_result.outcomes}
        if len(rounds) != 1:
            raise RunValidationError(
                f"gossip did not finish synchronously: {rounds}"
            )
        self.round = rounds.pop()
        learned = [p.messages for p in payloads]
        for got in learned:
            if got != expected:
                raise RunValidationError(
                    f"gossip mismatch: expected {expected}, got {got}"
                )
        self.messages = expected
        leaders = {
            p.gather.leader for p in payloads if p.gather is not None
        }
        self.leader = leaders.pop() if len(leaders) == 1 else None
        self.events = sim_result.events


def run_gossip_known(
    graph: PortGraph,
    labels: list[int],
    messages: list[str],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
    max_events: int | None = 300_000_000,
) -> GossipReport:
    """``GossipKnownUpperBound`` (Section 5): gather, then gossip.

    ``messages[i]`` is the binary-string message of ``labels[i]``.
    Validates that every agent ends with the exact message multiset.
    """
    start_nodes, wake_rounds = _resolve_placement(
        graph, labels, start_nodes, wake_rounds
    )
    if len(messages) != len(labels):
        raise ValueError("one message per agent")
    for m in messages:
        if set(m) - {"0", "1"}:
            raise ValueError(f"messages are binary strings, got {m!r}")
    params = KnownBoundParameters(n_bound, provider)
    params.provider.verify_for_graph(n_bound, graph)
    budget = params.max_phases(smallest_label_length(labels)) + 2
    message_of = dict(zip(labels, messages))

    def make_program(my_message: str):
        def program(ctx: AgentContext):
            gather_outcome = yield from gather_known_core(
                ctx, params, max_phases=budget
            )
            learned = yield from gossip(ctx, params, my_message)
            yield from declare(
                ctx,
                GossipOutcome(ctx.label, learned, gather_outcome),
            )

        return program

    specs = [
        AgentSpec(label, node, make_program(message_of[label]), wake)
        for label, node, wake in zip(labels, start_nodes, wake_rounds)
    ]
    sim = Simulation(graph, specs, max_events=max_events)
    expected: dict[str, int] = {}
    for m in messages:
        expected[m] = expected.get(m, 0) + 1
    return GossipReport(sim.run(), expected)


def run_leader_election(
    graph: PortGraph,
    labels: list[int],
    n_bound: int,
    **kwargs,
) -> int:
    """Leader election (Theorem 3.1 by-product): the elected label."""
    report = run_gather_known(graph, labels, n_bound, **kwargs)
    return report.leader


class UnknownGatherReport:
    """Validated result of a ``GatherUnknownUpperBound`` run."""

    __slots__ = (
        "sim_result",
        "labels",
        "leader",
        "size",
        "round",
        "node",
        "hypothesis",
        "events",
        "total_moves",
        "true_index",
    )

    def __init__(
        self,
        sim_result: SimulationResult,
        labels: list[int],
        graph_size: int,
        true_index: int,
    ) -> None:
        self.sim_result = sim_result
        self.labels = list(labels)
        self.true_index = true_index
        if not sim_result.gathered():
            raise RunValidationError(
                "agents did not declare gathering at one node in one "
                f"round: {sim_result.outcomes}"
            )
        payloads = sim_result.payloads()
        leaders = {p.leader for p in payloads}
        sizes = {p.size for p in payloads}
        hypotheses = {p.phase for p in payloads}
        if leaders != {min(labels)}:
            raise RunValidationError(
                f"leader must be the smallest label {min(labels)}, "
                f"got {leaders}"
            )
        if sizes != {graph_size}:
            raise RunValidationError(
                f"agents learned size {sizes}, real size is {graph_size}"
            )
        if len(hypotheses) != 1:
            raise RunValidationError(
                f"agents confirmed different hypotheses: {hypotheses}"
            )
        self.leader = leaders.pop()
        self.size = graph_size
        self.hypothesis = hypotheses.pop()
        if self.hypothesis != true_index:
            raise RunValidationError(
                f"confirmed hypothesis {self.hypothesis} but the true "
                f"configuration has index {true_index}"
            )
        self.round = sim_result.declaration_round()
        self.node = sim_result.meeting_node()
        self.events = sim_result.events
        self.total_moves = sim_result.total_moves

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"UnknownGatherReport(hypothesis={self.hypothesis}, "
            f"round={self.round}, leader={self.leader}, size={self.size})"
        )


def _prepare_unknown(
    graph: PortGraph,
    labels: list[int],
    start_nodes: list[int] | None,
    wake_rounds: list[int | None] | None,
    omega,
    provider: UXSProvider | None,
):
    start_nodes, wake_rounds = _resolve_placement(
        graph, labels, start_nodes, wake_rounds
    )
    if omega is None:
        omega = DovetailOmega()
    sched = UnknownBoundSchedule(omega, provider)
    sched.provider.verify_for_graph(graph.n, graph)
    label_map = dict(zip(start_nodes, labels))
    true_index = omega.index_of(graph, label_map)
    if true_index is None:
        raise ValueError(
            "the real configuration does not occur in the enumerated "
            "prefix of Omega (labels too large or graph too big?)"
        )
    for h in range(1, true_index + 1):
        sched.assert_executable(h)
    return start_nodes, wake_rounds, sched, true_index


def prepare_gather_unknown(
    graph: PortGraph,
    labels: list[int],
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    omega=None,
    provider: UXSProvider | None = None,
    max_events: int | None = 50_000_000,
    faults=None,
    dynamics=None,
    horizon: int | None = None,
) -> PreparedRun:
    """Assemble a ``GatherUnknownUpperBound`` run without executing it."""
    start_nodes, wake_rounds, sched, true_index = _prepare_unknown(
        graph, labels, start_nodes, wake_rounds, omega, provider
    )
    program = gather_unknown_program(sched, max_hypotheses=true_index)
    specs = [
        AgentSpec(label, node, program, wake)
        for label, node, wake in zip(labels, start_nodes, wake_rounds)
    ]
    sim = Simulation(
        graph,
        specs,
        max_events=max_events,
        faults=faults,
        dynamics=dynamics,
        horizon=horizon,
    )
    labels = list(labels)
    return PreparedRun(
        sim,
        lambda result: UnknownGatherReport(
            result, labels, graph.n, true_index
        ),
    )


def run_gather_unknown(
    graph: PortGraph,
    labels: list[int],
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    omega=None,
    provider: UXSProvider | None = None,
    max_events: int | None = 50_000_000,
) -> UnknownGatherReport:
    """Simulate ``GatherUnknownUpperBound`` and validate Theorem 4.1.

    The agents receive *no* knowledge about the graph; they walk the
    enumeration ``omega`` (default: :class:`DovetailOmega`).  The
    wrapper pre-checks that the true configuration's Ω-prefix is
    executable (every earlier hypothesis has ``n_h = 2``; see DESIGN.md
    Section 4 for why size-3 hypotheses are beyond any computer).
    """
    return prepare_gather_unknown(
        graph,
        labels,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        omega=omega,
        provider=provider,
        max_events=max_events,
    ).run()


def run_gossip_unknown(
    graph: PortGraph,
    labels: list[int],
    messages: list[str],
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    omega=None,
    provider: UXSProvider | None = None,
    max_events: int | None = 50_000_000,
) -> GossipReport:
    """``GossipUnknownUpperBound``: gather with no knowledge, then use
    the *learned* graph size as the bound for the gossip phase."""
    start_nodes, wake_rounds, sched, true_index = _prepare_unknown(
        graph, labels, start_nodes, wake_rounds, omega, provider
    )
    if len(messages) != len(labels):
        raise ValueError("one message per agent")
    message_of = dict(zip(labels, messages))

    def make_program(my_message: str):
        def program(ctx: AgentContext):
            gather_outcome = yield from gather_unknown_core(
                ctx, sched, max_hypotheses=true_index
            )
            params = KnownBoundParameters(gather_outcome.size, sched.provider)
            learned = yield from gossip(ctx, params, my_message)
            yield from declare(
                ctx, GossipOutcome(ctx.label, learned, gather_outcome)
            )

        return program

    specs = [
        AgentSpec(label, node, make_program(message_of[label]), wake)
        for label, node, wake in zip(labels, start_nodes, wake_rounds)
    ]
    sim = Simulation(graph, specs, max_events=max_events)
    expected: dict[str, int] = {}
    for m in messages:
        expected[m] = expected.get(m, 0) + 1
    return GossipReport(sim.run(), expected)
