"""Convenience codecs: gossiping arbitrary text, not just bit strings.

The paper's gossip algorithm moves binary strings.  Downstream users
usually hold structured payloads; these helpers provide a canonical
UTF-8 <-> bits mapping and a text-level wrapper around
:func:`repro.core.runs.run_gossip_known`, so "mute robots exchange
sensor readings" is a one-liner.
"""

from __future__ import annotations

from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from .runs import GossipReport, run_gossip_known


def text_to_bits(text: str) -> str:
    """UTF-8 encode ``text`` as a binary string (8 bits per byte)."""
    return "".join(format(byte, "08b") for byte in text.encode("utf-8"))


def bits_to_text(bits: str) -> str:
    """Inverse of :func:`text_to_bits`."""
    if len(bits) % 8 != 0:
        raise ValueError(f"bit length {len(bits)} is not a whole byte")
    if set(bits) - {"0", "1"}:
        raise ValueError("not a binary string")
    data = bytes(int(bits[i : i + 8], 2) for i in range(0, len(bits), 8))
    return data.decode("utf-8")


class TextGossipReport:
    """Text-level view of a gossip run."""

    __slots__ = ("report", "texts", "round")

    def __init__(self, report: GossipReport) -> None:
        self.report = report
        self.texts = {
            bits_to_text(bits): count
            for bits, count in report.messages.items()
        }
        self.round = report.round


def run_text_gossip(
    graph: PortGraph,
    labels: list[int],
    texts: list[str],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
) -> TextGossipReport:
    """Gossip UTF-8 strings through the movement modem.

    Every agent ends up knowing the exact multiset of texts.  Note the
    modem's price: each *bit* costs five graph tours, so texts should
    be short on large graphs (see benchmark E4b).
    """
    report = run_gossip_known(
        graph,
        labels,
        [text_to_bits(t) for t in texts],
        n_bound,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return TextGossipReport(report)
