"""``Communicate`` (Algorithm 4): the movement modem.

A group of co-located agents exchanges a binary string without any
message passing.  The call ``communicate(ctx, params, i, s, flag)``
lasts exactly ``5 * i * T(EXPLO(N))`` rounds and is organised in ``i``
steps of ``5 * T(EXPLO(N))`` rounds each.  In step ``j``:

* agents still *participating* whose string has bit ``0`` at position
  ``j`` perform ``[wait T | EXPLO | wait 3T]`` — they leave on a tour
  while everyone else stands still;
* all other agents perform ``[wait 3T | EXPLO | wait T]`` and read,
  from the smallest ``CurCard`` seen on their own tour, whether a
  subgroup left in the first window (their tour visits a node away
  from the meeting point, where only their own subgroup is present).

Bit by bit this computes the lexicographically smallest participating
code word sigma and the number of agents holding exactly sigma —
Lemma 3.1, verified directly by ``tests/test_communicate.py``.
"""

from __future__ import annotations

from ..explore.explo import explo
from ..sim.agent import AgentContext, wait
from .parameters import KnownBoundParameters


class CommunicateResult:
    """Return value ``(l, k)`` of Algorithm 4."""

    __slots__ = ("string", "count")

    def __init__(self, string: str, count: int) -> None:
        self.string = string
        self.count = count

    def __iter__(self):
        yield self.string
        yield self.count


def communicate(
    ctx: AgentContext,
    params: KnownBoundParameters,
    i: int,
    s: str,
    flag: bool,
):
    """Execute ``Communicate(i, s, bool)`` (Algorithm 4).

    Parameters mirror the paper: ``i`` is the number of transmitted
    bits, ``s`` the agent's code word, ``flag`` whether the agent
    offers ``s`` for transmission at all (always true for gathering;
    the gossip algorithm clears it once its message is known).
    """
    if i < 1:
        raise ValueError("Communicate needs a positive bit count")
    t_explo = params.t_explo
    provider = params.provider
    n_bound = params.n_bound
    c = ctx.curcard()
    k = 1
    bits: list[str] = []
    participate = flag and len(s) <= i
    for j in range(1, i + 1):
        if participate and j <= len(s) and s[j - 1] == "0":
            yield from wait(ctx, t_explo)
            stats = yield from explo(ctx, provider, n_bound)
            yield from wait(ctx, 3 * t_explo)
            bits.append("0")
            if c > 1:
                k = stats.min_curcard
        else:
            yield from wait(ctx, 3 * t_explo)
            stats = yield from explo(ctx, provider, n_bound)
            yield from wait(ctx, t_explo)
            c_away = stats.min_curcard
            if c == 1 or c_away == c:
                bits.append("1")
            else:
                bits.append("0")
                participate = False
                k = c - c_away
    return CommunicateResult("".join(bits), k)


def communicate_duration(params: KnownBoundParameters, i: int) -> int:
    """Exact duration of ``Communicate(i, ., .)``: ``5 i T(EXPLO(N))``."""
    return 5 * i * params.t_explo
