"""``Gossip`` (Algorithm 12): full information exchange by movement.

Preconditions (established by either gathering algorithm): all agents
are together at one node, start in the same round, and share the
parameters (in particular the size bound behind ``T(EXPLO(N))``).

Messages are binary strings; as in the paper each message is shipped
as ``code(M)`` so transmissions are self-delimiting.  The agents
repeatedly call ``Communicate`` with a growing bit budget ``j``; each
time the returned string ends in a code terminator they have jointly
learned the lexicographically smallest not-yet-delivered message and
how many agents carry it, and the holders stop offering theirs.  The
loop ends when the counted deliveries reach the group cardinality.
"""

from __future__ import annotations

from ..sim.agent import AgentContext
from .communicate import communicate
from .labels import code, decode
from .parameters import KnownBoundParameters


def gossip(
    ctx: AgentContext,
    params: KnownBoundParameters,
    message: str,
):
    """Run Algorithm 12; returns ``{message: holder_count}``.

    ``message`` is the agent's own binary-string input (possibly
    empty; possibly equal to other agents' messages).
    """
    if set(message) - {"0", "1"}:
        raise ValueError(f"message must be a binary string, got {message!r}")
    coded = code(message)
    total = ctx.curcard()
    delivered = 0
    j = 2
    offering = True
    learned: dict[str, int] = {}
    while delivered != total:
        result = yield from communicate(ctx, params, j, coded, offering)
        if result.string.endswith("01"):
            learned[decode(result.string)] = result.count
            delivered += result.count
            j = 2
            if result.string == coded:
                offering = False
        else:
            j += 2
    return learned


def gossip_round_bound(
    params: KnownBoundParameters,
    num_messages: int,
    max_message_length: int,
) -> int:
    """Crude closed-form bound on gossip duration (Theorem 5.1 shape).

    Each distinct message of coded length ``s`` costs the escalation
    ``sum_{j=2,4..s} 5 j T(EXPLO(N)) <= 5 s^2 T``; with at most
    ``num_messages`` distinct messages of coded length at most
    ``2 * max_message_length + 2`` the total is polynomial in all
    three parameters.
    """
    s_max = 2 * max_message_length + 2
    per_message = 5 * s_max * s_max * params.t_explo
    return num_messages * per_message
