"""Label transformation: the ``code``/``decode`` functions of Section 2.

``code`` doubles every bit and appends the terminator ``01``::

    code("")    = "01"
    code("101") = "11001101"

Proposition 2.1 of the paper gives the three properties everything
else leans on:

* ``|code(s)|`` is even;
* ``code(s)[z, z+1] == "01"`` at an odd (1-indexed) position ``z`` iff
  ``z + 1 == |code(s)|`` — i.e. the terminator is the *only* aligned
  ``01`` pair;
* no ``code`` string is a prefix of another.

These make the movement-encoded transmissions self-delimiting: a
receiver scanning aligned bit pairs recognises the first ``01`` as the
end of a full code word (Algorithm 3, lines 20-22).
"""

from __future__ import annotations


class CodecError(ValueError):
    """Raised when decoding a malformed code string."""


def to_binary(value: int) -> str:
    """Binary representation without prefix; ``0 -> "0"``."""
    if value < 0:
        raise ValueError("labels and transmitted values are non-negative")
    return format(value, "b")


def binary_length(value: int) -> int:
    """Length of the binary representation of ``value``."""
    return len(to_binary(value))


def code(s: str) -> str:
    """The paper's ``code`` function on a binary string."""
    if set(s) - {"0", "1"}:
        raise ValueError(f"not a binary string: {s!r}")
    doubled = "".join(ch + ch for ch in s)
    return doubled + "01"


def decode(t: str) -> str:
    """Inverse of :func:`code`; validates the structure."""
    if len(t) < 2 or len(t) % 2 != 0:
        raise CodecError(f"bad code length: {t!r}")
    if t[-2:] != "01":
        raise CodecError(f"missing 01 terminator: {t!r}")
    body = t[:-2]
    out = []
    for i in range(0, len(body), 2):
        pair = body[i : i + 2]
        if pair[0] != pair[1]:
            raise CodecError(f"unpaired bits at position {i}: {t!r}")
        out.append(pair[0])
    return "".join(out)


def transformed_label(label: int) -> str:
    """``code`` of the binary representation of an integer label."""
    return code(to_binary(label))


def find_code_prefix(stream: str) -> str | None:
    """First aligned ``01`` pair terminates a code word; return it.

    ``stream`` is the string assembled by ``Communicate``; the paper
    (Algorithm 3 line 20) looks for an odd 1-indexed ``z`` with
    ``stream[z, z+1] == "01"``, i.e. an even 0-indexed offset here.
    Returns the code-word prefix, or ``None`` if no terminator occurs.
    """
    for k in range(0, len(stream) - 1, 2):
        if stream[k] == "0" and stream[k + 1] == "1":
            return stream[: k + 2]
    return None


def label_from_transmission(stream: str) -> int | None:
    """Decode the leading code word of a transmission into an integer.

    Returns ``None`` when the stream carries no complete code word
    (e.g. it is all-ones padding) or the prefix is malformed.
    """
    prefix = find_code_prefix(stream)
    if prefix is None:
        return None
    try:
        bits = decode(prefix)
    except CodecError:
        return None
    if not bits:
        return None
    return int(bits, 2)
