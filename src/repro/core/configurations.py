"""Initial configurations and the enumeration Ω (Section 4.2).

An *initial configuration* is a port-labelled connected graph of size
at least 2 in which at least 2 nodes carry distinct positive integer
labels — node ``v`` labelled ``L`` means "agent ``L`` starts at ``v``".
``GatherUnknownUpperBound`` walks a fixed recursively-enumerable
ordering Ω = (phi_1, phi_2, ...) of all configurations, testing the
hypothesis "the real configuration is phi_h" one index at a time.

Two complete enumerations are provided (DESIGN.md Section 7, item 4):

* :class:`DovetailOmega` — the straightforward dovetail by *weight*
  ``W = n + max_label``: small graphs with small labels first.
* :class:`TwoNodeDenseOmega` — also complete, but schedules
  configurations of size >= 3 only at indices that are multiples of
  ``stride``.  Any fixed enumeration is admissible per the paper
  ("an arbitrarily fixed enumeration"); this one keeps runs with
  2-node networks and larger labels inside the feasibility envelope
  (executing even one size-3 hypothesis costs ``2**244`` moves — see
  DESIGN.md Section 4).
"""

from __future__ import annotations

from itertools import combinations, permutations

from ..graphs.enumerate_graphs import iter_all_port_graphs
from ..graphs.generators import single_edge
from ..graphs.isomorphism import configurations_match
from ..graphs.port_graph import PortGraph


class OmegaLimit(RuntimeError):
    """The requested Ω index needs graphs our enumerator cannot list."""


class Configuration:
    """One labelled configuration phi_h."""

    __slots__ = ("graph", "labels", "_sorted_labels")

    def __init__(self, graph: PortGraph, labels: dict[int, int]) -> None:
        if graph.n < 2:
            raise ValueError("configurations have at least 2 nodes")
        if len(labels) < 2:
            raise ValueError("configurations have at least 2 labelled nodes")
        if len(set(labels.values())) != len(labels):
            raise ValueError("labels must be distinct")
        if any(v < 0 or v >= graph.n for v in labels):
            raise ValueError("labelled node out of range")
        if any(lab < 1 for lab in labels.values()):
            raise ValueError("labels are positive integers")
        self.graph = graph
        self.labels = dict(labels)
        self._sorted_labels = sorted(labels.values())

    @property
    def n(self) -> int:
        """Number of nodes (the paper's ``n_h``)."""
        return self.graph.n

    @property
    def k(self) -> int:
        """Number of labelled nodes / agents (the paper's ``k_h``)."""
        return len(self.labels)

    def label_values(self) -> list[int]:
        """Sorted agent labels in this configuration."""
        return list(self._sorted_labels)

    def has_label(self, label: int) -> bool:
        """Does an agent with this label exist in the configuration?"""
        return label in set(self.labels.values())

    def smallest_label(self) -> int:
        """The leader this configuration elects."""
        return self._sorted_labels[0]

    def central_node(self) -> int:
        """The starting node of the smallest label (the paper's v_h)."""
        smallest = self.smallest_label()
        for node, lab in self.labels.items():
            if lab == smallest:
                return node
        raise AssertionError("unreachable")  # pragma: no cover

    def node_of(self, label: int) -> int:
        """Starting node of the agent with ``label``."""
        for node, lab in self.labels.items():
            if lab == label:
                return node
        raise KeyError(label)

    def path_to_central(self, label: int) -> list[int]:
        """``path_h(L)``: lexicographically smallest shortest port path
        from the node labelled ``label`` to the central node."""
        return self.graph.shortest_path_ports(
            self.node_of(label), self.central_node()
        )

    def rank(self, label: int) -> int:
        """``rank_h(L)``: number of labels smaller than ``label``."""
        return sum(1 for lab in self._sorted_labels if lab < label)

    def matches(self, graph: PortGraph, labels: dict[int, int]) -> bool:
        """Is this the same configuration (up to port-preserving iso)?"""
        return configurations_match(self.graph, self.labels, graph, labels)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Configuration(n={self.n}, labels={self.labels})"


def _two_node_stream():
    """All 2-node configurations: label pairs (a, b), a < b, ordered by
    (b, a).  The 2-node graph is unique and symmetric, so one labelling
    per unordered pair enumerates all configurations up to iso."""
    edge = single_edge()
    b = 2
    while True:
        for a in range(1, b):
            yield Configuration(edge, {0: a, 1: b})
        b += 1


def _labelings(num_nodes: int, max_label: int):
    """Injective labelings of >= 2 nodes with labels in {1..max_label},
    the maximum label being used (so each (n, max_label) block is
    finite and every configuration appears in exactly one block)."""
    nodes = range(num_nodes)
    values = range(1, max_label + 1)
    for size in range(2, num_nodes + 1):
        for subset in combinations(nodes, size):
            for perm in permutations(values, size):
                if max(perm) != max_label:
                    continue
                yield dict(zip(subset, perm))


class DovetailOmega:
    """Complete enumeration ordered by weight ``W = n + max_label``.

    Within one weight, sizes ascend; within one size, graphs follow the
    deterministic order of
    :func:`repro.graphs.enumerate_graphs.iter_all_port_graphs` and
    labelings the order of :func:`_labelings`.
    """

    #: Largest graph size the exhaustive generator supports.
    MAX_GRAPH_SIZE = 4

    def __init__(self) -> None:
        self._configs: list[Configuration] = []
        self._next_weight = 4  # n = 2 plus max label 2
        self._graph_cache: dict[int, list[PortGraph]] = {}

    def _graphs(self, n: int) -> list[PortGraph]:
        if n > self.MAX_GRAPH_SIZE:
            raise OmegaLimit(
                f"Omega index requires enumerating graphs of size {n}; the "
                f"exhaustive generator supports size <= {self.MAX_GRAPH_SIZE}"
            )
        if n not in self._graph_cache:
            self._graph_cache[n] = list(iter_all_port_graphs(n))
        return self._graph_cache[n]

    def _extend(self) -> None:
        weight = self._next_weight
        self._next_weight += 1
        for n in range(2, weight - 1):
            max_label = weight - n
            if max_label < 2:
                continue
            for graph in self._graphs(n):
                for labeling in _labelings(n, max_label):
                    self._configs.append(Configuration(graph, labeling))

    def config(self, h: int) -> Configuration:
        """phi_h (1-based)."""
        if h < 1:
            raise ValueError("Omega indices start at 1")
        while len(self._configs) < h:
            self._extend()
        return self._configs[h - 1]

    def index_of(
        self, graph: PortGraph, labels: dict[int, int], limit: int = 10_000
    ) -> int | None:
        """Index of the configuration matching ``(graph, labels)``."""
        for h in range(1, limit + 1):
            try:
                candidate = self.config(h)
            except OmegaLimit:
                return None
            if candidate.matches(graph, labels):
                return h
        return None


class TwoNodeDenseOmega:
    """Complete enumeration that front-loads 2-node configurations.

    Index ``h`` maps to the 2-node stream unless ``h`` is a multiple of
    ``stride``, in which case it maps to the next configuration of size
    >= 3 from the dovetail order.  Both streams are exhaustive for
    their class, so every configuration occurs at a finite index.
    """

    def __init__(self, stride: int = 64) -> None:
        if stride < 2:
            raise ValueError("stride must be >= 2")
        self.stride = stride
        self._two: list[Configuration] = []
        self._two_gen = _two_node_stream()
        self._rest: list[Configuration] = []
        self._dovetail = DovetailOmega()
        self._dovetail_pos = 0

    def _two_node(self, i: int) -> Configuration:
        while len(self._two) < i:
            self._two.append(next(self._two_gen))
        return self._two[i - 1]

    def _rest_config(self, i: int) -> Configuration:
        while len(self._rest) < i:
            self._dovetail_pos += 1
            candidate = self._dovetail.config(self._dovetail_pos)
            if candidate.n >= 3:
                self._rest.append(candidate)
        return self._rest[i - 1]

    def config(self, h: int) -> Configuration:
        """phi_h (1-based)."""
        if h < 1:
            raise ValueError("Omega indices start at 1")
        if h % self.stride == 0:
            return self._rest_config(h // self.stride)
        return self._two_node(h - h // self.stride)

    def index_of(
        self, graph: PortGraph, labels: dict[int, int], limit: int = 10_000
    ) -> int | None:
        """Index of the configuration matching ``(graph, labels)``."""
        for h in range(1, limit + 1):
            try:
                candidate = self.config(h)
            except OmegaLimit:
                return None
            if candidate.matches(graph, labels):
                return h
        return None
