"""``GatherUnknownUpperBound`` (Algorithms 5-11 of the paper).

No a-priori knowledge at all: the agents walk a fixed enumeration Ω of
initial configurations and, for each index ``h``, run ``Hypothesis(h)``
— "behave as if the real configuration were phi_h".  A hypothesis is
organised as:

* **preprocessing** (``BallTraversal`` + a wait of ``S_h``): visit
  every node any interfering agent could start from, so that agents
  still working on *earlier* hypotheses have been woken long ago and
  are already past them (the paper's second scheme);
* **main part**: walk to the supposed central node
  (``MoveToCentralNode``), check the group by a movement dance
  (``StarCheck``), sweep the supposed neighbourhood twice
  (``EnsureCleanExploration``) and finally verify the graph size with
  token-based exploration (``GraphSizeCheck`` / ``EST+``);
* **unwind**: retrace every entered port behind huge slowdown waits
  (the paper's first scheme — agents on later hypotheses move so
  slowly that earlier-hypothesis dances can't be faked), then pad the
  hypothesis to exactly ``T_h`` rounds.

Every routine below is a line-by-line translation of the corresponding
algorithm; the big waits are exact big-integer rounds, executable
thanks to the event-compressed clock.
"""

from __future__ import annotations

from ..explore.est import est_plus
from ..graphs.port_graph import iter_all_walks
from ..sim.agent import (
    AgentContext,
    WatchTriggered,
    declare,
    move,
    observe,
    wait,
    walk,
)
from .results import GatherOutcome
from .unknown_parameters import UnknownBoundSchedule


class ScheduleOverrunError(RuntimeError):
    """An execution outlived its proven bound (a bug, never a model
    outcome; Lemma 4.5 proves ``Hypothesis(h)`` fits in ``T_h``)."""


class HypothesisBudgetError(RuntimeError):
    """The run used more hypotheses than the caller allowed."""


def ball_traversal(ctx: AgentContext, sched: UnknownBoundSchedule, h: int):
    """Algorithm 7: visit the ball of radius ``4 h m_h**5``.

    Enumerates every port word of that length over ``{0..n_h-2}``,
    following each as far as it exists and backtracking, with a
    slowdown wait before every edge traversal.  Returns ``False`` as
    soon as a node of degree >= ``n_h`` is seen (then phi_h is
    certainly wrong and the agent skips the main part).
    """
    n_h = sched.n(h)
    length = sched.ball_length(h)
    slow = sched.slowdown(h)
    for word in iter_all_walks(length, n_h - 1):
        entries: list[int] = []
        aborted = False
        for port in word:
            if ctx.degree() >= n_h:
                return False
            if port >= ctx.degree():
                aborted = True
                break
            yield from wait(ctx, slow)
            obs = yield from move(ctx, port)
            entries.append(obs.entry_port)
        if not aborted and ctx.degree() >= n_h:
            return False
        for back in reversed(entries):
            yield from wait(ctx, slow)
            yield from move(ctx, back)
    return True


def move_to_central(ctx: AgentContext, sched: UnknownBoundSchedule, h: int):
    """Algorithm 8: walk ``path_h(L)`` and await ``k_h`` co-agents."""
    cfg = sched.config(h)
    if not cfg.has_label(ctx.label):
        return False
    # The hypothesised path is a precomputed plan of absolute ports; it
    # may not exist on the real graph, so the walk stops quietly before
    # the first port the current node does not have (exactly the
    # per-step guard of Algorithm 8, line 2).
    path = tuple(cfg.path_to_central(ctx.label))
    reached_trace = yield from walk(ctx, path, stop_before_invalid=True)
    if len(reached_trace) < len(path):
        return False
    window = sched.s(h) + cfg.n
    reached = False
    try:
        yield from wait(ctx, window, watch=("eq", cfg.k))
    except WatchTriggered:
        reached = True
    if not reached:
        return False
    yield from wait(ctx, window)
    return ctx.curcard() == cfg.k


# Bounce plans of the StarCheck dance, by meeting-node degree.  Each
# pair ``(port, ~0)`` visits one neighbour and bounces straight back
# (the rule step with offset 0 exits by the port of entry).  Cached so
# the plan tuple keeps a stable identity, which lets the scheduler's
# route cache reuse the chased dance route across turns and trials.
_DANCE_PLANS: dict[int, tuple[int, ...]] = {}


def _dance_plan(degree: int) -> tuple[int, ...]:
    plan = _DANCE_PLANS.get(degree)
    if plan is None:
        plan = tuple(s for port in range(degree) for s in (port, ~0))
        _DANCE_PLANS[degree] = plan
    return plan


def star_check(ctx: AgentContext, sched: UnknownBoundSchedule, h: int):
    """Algorithm 9: the rank-ordered neighbourhood dance.

    The agents take turns (by rank in phi_h) visiting every neighbour
    of the meeting node and bouncing straight back, while the rest
    stand still and verify the cardinality oscillation k, k-1, k, ...
    Any outsider — or any missing insider — breaks the pattern for
    everyone.  Total duration: exactly ``4 d k_h`` rounds.

    The dance is one ``walk`` plan (out + bounce-back per neighbour)
    and the verifiers one ``observe`` per turn, so the scheduler can
    execute a whole turn as a single joint segment; the per-arrival
    records carry exactly what per-edge ``move`` / per-round ``wait``
    would have observed (odd indices: away from the meeting node; even
    indices: back on it).
    """
    cfg = sched.config(h)
    k_h = cfg.k
    my_rank = cfg.rank(ctx.label)
    degree = ctx.degree()
    good = True
    for t in (1, 2):
        for turn in range(k_h):
            if turn == my_rank and (t == 1 or good):
                trace = yield from walk(ctx, _dance_plan(degree))
                for j, rec in enumerate(trace, start=1):
                    if j % 2 == 1:
                        if t == 1 and rec[3] != 1:
                            good = False
                    elif rec[3] != k_h:
                        good = False
            else:
                records = yield from observe(ctx, 2 * degree)
                for j, rec in enumerate(records, start=1):
                    if j % 2 == 1:
                        if rec[3] != k_h - 1:
                            good = False
                    elif rec[3] != k_h:
                        good = False
    return good


def ensure_clean_exploration(
    ctx: AgentContext, sched: UnknownBoundSchedule, h: int
):
    """Algorithm 10: sweep all paths of length ``n_h**5 + 1`` twice.

    The whole group moves together; any round with a cardinality other
    than ``k_h`` exposes an interfering agent and fails the hypothesis
    immediately.  Success guarantees the upcoming ``EST+`` explorations
    are *clean* (the explorer meets agents only at its token node).
    """
    cfg = sched.config(h)
    k_h = cfg.k
    length = sched.ece_length(h)
    # "Any round with a cardinality other than k_h fails immediately"
    # is exactly a CurCard != k_h watch on the forward walks; the
    # backtracks are unchecked, as in Algorithm 10.  The whole group
    # walks the same plans in lockstep, which the scheduler executes
    # jointly as segments.
    for _sweep in (1, 2):
        for word in iter_all_walks(length, cfg.n - 1):
            try:
                trace = yield from walk(
                    ctx,
                    tuple(word),
                    watch=("ne", k_h),
                    stop_before_invalid=True,
                )
            except WatchTriggered:
                return False
            yield from walk(
                ctx, tuple(reversed([rec[2] for rec in trace]))
            )
    return True


def graph_size_check(ctx: AgentContext, sched: UnknownBoundSchedule, h: int):
    """Algorithm 11: rank-ordered ``EST+`` runs against a group token.

    Each agent in turn explores with the others as its stationary
    token; everyone pads its turn to exactly ``2 T(EST(n_h))`` rounds
    so the group stays synchronized.  Returns the explorer's verdict:
    did the map close with exactly ``n_h`` nodes?
    """
    cfg = sched.config(h)
    budget = sched.t_est(cfg.n)
    start = ctx.obs.round
    verdict = False
    for turn in range(1, cfg.k + 1):
        if turn == cfg.rank(ctx.label) + 1:
            verdict = yield from est_plus(ctx, sched.provider, cfg.n, budget)
        target = start + 2 * turn * budget
        pad = target - ctx.obs.round
        if pad < 0:
            raise ScheduleOverrunError(
                f"EST+ turn {turn} overran its 2*T(EST) slot by {-pad}"
            )
        if pad > 0:
            yield from wait(ctx, pad)
    return verdict


def hypothesis(ctx: AgentContext, sched: UnknownBoundSchedule, h: int):
    """Algorithm 6: one full hypothesis; True means gathering is done."""
    sched.assert_executable(h)
    start = ctx.obs.round
    ctx.record_entries()
    success = False
    ball_ok = yield from ball_traversal(ctx, sched, h)
    if ball_ok:
        yield from wait(ctx, sched.s(h))
        central_ok = yield from move_to_central(ctx, sched, h)
        if central_ok:
            star_ok = yield from star_check(ctx, sched, h)
            if star_ok:
                clean_ok = yield from ensure_clean_exploration(ctx, sched, h)
                if clean_ok:
                    success = yield from graph_size_check(ctx, sched, h)
    entries = ctx.stop_recording_entries()
    if success:
        return True
    # Second part (lines 16-22): retrace every entered port in reverse,
    # each move behind a slowdown wait, then pad to exactly T_h.
    slow = sched.slowdown(h)
    for port in reversed(entries):
        yield from wait(ctx, slow)
        yield from move(ctx, port)
    spent = ctx.obs.round - start
    target = sched.t_hyp(h)
    if spent > target:
        raise ScheduleOverrunError(
            f"Hypothesis({h}) ran {spent - target} rounds past T_h"
        )
    if spent < target:
        yield from wait(ctx, target - spent)
    return False


def gather_unknown_core(
    ctx: AgentContext,
    sched: UnknownBoundSchedule,
    max_hypotheses: int | None = None,
):
    """Algorithm 5: iterate hypotheses until one returns true."""
    h = 0
    while True:
        h += 1
        if max_hypotheses is not None and h > max_hypotheses:
            raise HypothesisBudgetError(
                f"agent {ctx.label} exceeded {max_hypotheses} hypotheses"
            )
        confirmed = yield from hypothesis(ctx, sched, h)
        if confirmed:
            break
    cfg = sched.config(h)
    return GatherOutcome(
        label=ctx.label,
        leader=cfg.smallest_label(),
        phase=h,
        size=cfg.n,
    )


def gather_unknown_program(
    sched: UnknownBoundSchedule, max_hypotheses: int | None = None
):
    """Program factory for a plain ``GatherUnknownUpperBound`` agent."""

    def program(ctx: AgentContext):
        outcome = yield from gather_unknown_core(ctx, sched, max_hypotheses)
        yield from declare(ctx, outcome)

    return program
