"""The paper's algorithms: gathering, leader election, gossiping."""

from .communicate import CommunicateResult, communicate, communicate_duration
from .configurations import (
    Configuration,
    DovetailOmega,
    OmegaLimit,
    TwoNodeDenseOmega,
)
from .gather_known import (
    PhaseBudgetError,
    gather_known_core,
    gather_known_program,
    smallest_label_length,
)
from .gather_unknown import (
    HypothesisBudgetError,
    ScheduleOverrunError,
    gather_unknown_core,
    gather_unknown_program,
)
from .gossip import gossip, gossip_round_bound
from .messages import (
    TextGossipReport,
    bits_to_text,
    run_text_gossip,
    text_to_bits,
)
from .labels import (
    CodecError,
    binary_length,
    code,
    decode,
    find_code_prefix,
    label_from_transmission,
    to_binary,
    transformed_label,
)
from .parameters import KnownBoundParameters
from .results import GatherOutcome, GossipOutcome
from .runs import (
    GatherReport,
    GossipReport,
    RunValidationError,
    UnknownGatherReport,
    run_gather_known,
    run_gather_unknown,
    run_gossip_known,
    run_gossip_unknown,
    run_leader_election,
)
from .unknown_parameters import InfeasibleHypothesisError, UnknownBoundSchedule

__all__ = [
    "Configuration",
    "DovetailOmega",
    "TwoNodeDenseOmega",
    "OmegaLimit",
    "UnknownBoundSchedule",
    "InfeasibleHypothesisError",
    "gather_unknown_core",
    "gather_unknown_program",
    "HypothesisBudgetError",
    "ScheduleOverrunError",
    "UnknownGatherReport",
    "run_gather_unknown",
    "run_gossip_unknown",
    "text_to_bits",
    "bits_to_text",
    "run_text_gossip",
    "TextGossipReport",
    "code",
    "decode",
    "to_binary",
    "binary_length",
    "transformed_label",
    "find_code_prefix",
    "label_from_transmission",
    "CodecError",
    "KnownBoundParameters",
    "communicate",
    "communicate_duration",
    "CommunicateResult",
    "gather_known_core",
    "gather_known_program",
    "smallest_label_length",
    "PhaseBudgetError",
    "gossip",
    "gossip_round_bound",
    "GatherOutcome",
    "GossipOutcome",
    "GatherReport",
    "GossipReport",
    "RunValidationError",
    "run_gather_known",
    "run_gossip_known",
    "run_leader_election",
]
