"""Timing parameters of ``GatherKnownUpperBound`` (Section 3.2).

The algorithm is driven by three quantities:

* ``T(EXPLO(N))`` — duration of one EXPLO, i.e. twice the exploration
  sequence length (effective + backtrack parts);
* ``P(N, l)`` — the rendezvous bound of our ``TZ`` implementation: two
  groups with distinct transformed labels of length at most ``l + 4``,
  started at most ``T(EXPLO(N))/2`` apart, meet within ``P(N, l)``
  rounds of the later start (see ``repro.explore.tz``);
* ``D_k = P(N, k) + 3 (k + 2) T(EXPLO(N))`` — the paper's phase-``k``
  waiting quantum (Section 3.2), unchanged.

The paper treats ``P`` as the named polynomial of Ta-Shma and Zwick;
since our TZ substitute has its own (simpler) polynomial, ``P`` here is
*ours*, and every inequality the correctness proofs rely on is asserted
in ``tests/test_parameters.py``.
"""

from __future__ import annotations

from ..explore.tz import BLOCK_SLOTS
from ..explore.uxs import UXSProvider


class KnownBoundParameters:
    """All timing constants for a run with known size bound ``N``."""

    def __init__(self, n_bound: int, provider: UXSProvider | None = None) -> None:
        if n_bound < 2:
            raise ValueError("the size upper bound N must be at least 2")
        self.n_bound = n_bound
        self.provider = provider if provider is not None else UXSProvider()
        self.t_explo = self.provider.explo_duration(n_bound)
        if self.t_explo < 2:
            raise ValueError("EXPLO(N) must make at least one traversal")
        self._d_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # The schedule.
    # ------------------------------------------------------------------

    def tz_block(self) -> int:
        """Duration of one TZ block: 6 * T(EXPLO(N))."""
        return BLOCK_SLOTS * self.t_explo

    def max_label_string(self, phase: int) -> int:
        """Bound on transformed-label length used in phase ``phase``.

        The label an agent feeds to TZ in phase ``i`` is either 0
        (string ``code("0")`` of length 4) or decoded from a prefix of
        an ``i``-bit transmission, so its transformed length is at most
        ``i + 4``.
        """
        return phase + 4

    def p_bound(self, phase: int) -> int:
        """``P(N, i)``: meeting bound of TZ for phase-``i`` labels.

        By the Fine-Wilf periodicity lemma, two *distinct* periodic bit
        streams with periods ``p, q <= i + 4`` must differ at some
        index ``j* < p + q - gcd(p, q) <= 2 (i + 4)`` (they are
        distinct because ``code`` words are primitive — Proposition
        2.1); two extra blocks absorb the truncated block of a delayed
        start and the meeting itself.
        """
        max_len = self.max_label_string(phase)
        return self.tz_block() * (2 * max_len + 2)

    def d(self, k: int) -> int:
        """``D_k = P(N, k) + 3 (k + 2) T(EXPLO(N))`` (Section 3.2)."""
        if k < 0:
            raise ValueError("D_k is defined for k >= 0")
        cached = self._d_cache.get(k)
        if cached is None:
            cached = self.p_bound(k) + 3 * (k + 2) * self.t_explo
            self._d_cache[k] = cached
        return cached

    # ------------------------------------------------------------------
    # Derived bounds for tests and the benchmark harness.
    # ------------------------------------------------------------------

    def max_phases(self, smallest_label_length: int) -> int:
        """Theorem 3.1 phase bound: ``floor(log N) + 2 l + 2``."""
        return (self.n_bound).bit_length() - 1 + 2 * smallest_label_length + 2

    def phase_duration_bound(self, k: int) -> int:
        """Worst-case rounds spent in phase ``k >= 1``.

        From properties P3/P5 of Lemma 3.3: a phase never exceeds
        ``2 D_{k+1} + 2 D_k + (5 k + 6) T(EXPLO(N))`` plus the merge
        slack ``3 T(EXPLO(N))``; we use the paper's coarse bound
        ``4 D_{k+1} + (5 k + 6) T(EXPLO(N))``.
        """
        return 4 * self.d(k + 1) + (5 * k + 6) * self.t_explo

    def total_time_bound(self, smallest_label_length: int) -> int:
        """Theorem 3.1's explicit polynomial envelope on gathering time."""
        phases = self.max_phases(smallest_label_length)
        per_phase = self.phase_duration_bound(phases + 1)
        return (phases + 2) * per_phase
