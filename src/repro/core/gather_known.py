"""``GatherKnownUpperBound`` (Algorithm 3 of the paper).

Agents know a common upper bound ``N`` on the network size.  The
algorithm alternates *merge attempts* (synchronized EXPLO tours that
force distinct groups to meet or prove their mutual invisibility) with
*label transmission* (``Communicate``) and *targeted rendezvous*
(``TZ`` on the transmitted label).  An agent declares gathering once a
full phase passes with its group intact and a complete label learned.

The phase-``i`` body is a line-by-line translation of Algorithm 3; the
pseudo-code's two interruptible begin-end blocks map onto
``try/except WatchTriggered`` with a ``CurCard > c`` watch.

Every tour below (the merge-attempt EXPLOs, the TZ exploration slots
and the Communicate subgroup tours) is emitted as a *walk plan*, so
the scheduler's segment fast path executes the long quiet stretches —
a lone group touring while everyone else sits out a ``d(i)`` wait — in
O(1) events per stretch; the ``CurCard > c`` watch truncates a segment
at the exact edge where a meeting would have interrupted the per-step
walk (see ``sim/scheduler.py``, "Walk segments").
"""

from __future__ import annotations

from ..explore.explo import explo
from ..explore.tz import tz
from ..sim.agent import AgentContext, WatchTriggered, declare, wait, wait_stable
from .communicate import communicate
from .labels import label_from_transmission, to_binary, transformed_label
from .parameters import KnownBoundParameters
from .results import GatherOutcome


class PhaseBudgetError(RuntimeError):
    """The algorithm exceeded its proven phase bound — a bug, not a model
    outcome; raised so tests fail loudly instead of looping forever."""


def gather_known_core(
    ctx: AgentContext,
    params: KnownBoundParameters,
    max_phases: int | None = None,
):
    """Run Algorithm 3 until the declaration condition holds.

    This generator *returns* the :class:`GatherOutcome` instead of
    declaring, so that leader election and gossiping can run on top of
    it; use :func:`gather_known_program` for the plain gathering agent.
    """
    t_explo = params.t_explo
    provider = params.provider
    n_bound = params.n_bound
    my_code = transformed_label(ctx.label)

    # Phase 0 (lines 2-3): wake everyone, then let late risers finish.
    yield from explo(ctx, provider, n_bound)
    yield from wait(ctx, t_explo)

    i = 1
    while True:
        if max_phases is not None and i > max_phases:
            raise PhaseBudgetError(
                f"agent {ctx.label} exceeded the phase budget {max_phases}"
            )
        c = ctx.curcard()
        lam = 0
        watch = ("gt", c)
        # Lines 8-14: merge attempt, interruptible on CurCard > c.
        try:
            yield from wait(ctx, params.d(i), watch)
            yield from explo(ctx, provider, n_bound, watch)
            yield from wait(ctx, t_explo, watch)
            yield from explo(ctx, provider, n_bound, watch)
            met_new_agents = False
        except WatchTriggered:
            met_new_agents = True
        if met_new_agents:
            # Line 16: re-synchronize all merged groups.
            yield from wait_stable(ctx, params.d(i + 1))
        else:
            # Lines 18-22: transmit/receive i bits of the smallest code.
            result = yield from communicate(ctx, params, i, my_code, True)
            decoded = label_from_transmission(result.string)
            if decoded is not None:
                lam = decoded
            # Lines 23-29: rendezvous on the learned label.
            try:
                yield from wait(ctx, t_explo, watch)
                yield from tz(
                    ctx,
                    provider,
                    n_bound,
                    transformed_label(lam),
                    params.d(i),
                    watch,
                )
                yield from wait(ctx, t_explo, watch)
                yield from explo(ctx, provider, n_bound, watch)
            except WatchTriggered:
                yield from wait_stable(ctx, params.d(i + 1))
        # Line 34.
        yield from wait(ctx, params.d(i + 1))
        # Lines 35-37: group unchanged for the whole phase and a full
        # label was learned -> everyone is here; declare.
        if ctx.curcard() == c and lam != 0:
            return GatherOutcome(label=ctx.label, leader=lam, phase=i)
        i += 1


def gather_known_program(
    params: KnownBoundParameters, max_phases: int | None = None
):
    """Program factory for a plain ``GatherKnownUpperBound`` agent."""

    def program(ctx: AgentContext):
        outcome = yield from gather_known_core(ctx, params, max_phases)
        yield from declare(ctx, outcome)

    return program


def smallest_label_length(labels: list[int]) -> int:
    """``l``: binary length of the smallest label (complexity parameter)."""
    return len(to_binary(min(labels)))
