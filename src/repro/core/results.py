"""Outcome payloads produced by the algorithm programs."""

from __future__ import annotations


class GatherOutcome:
    """Per-agent result of a gathering algorithm.

    ``leader`` is the elected label (the paper's leader-election
    by-product): every agent finishes with the same value, which is
    the label of one of the agents.
    """

    __slots__ = ("label", "leader", "phase", "size")

    def __init__(
        self,
        label: int,
        leader: int,
        phase: int,
        size: int | None = None,
    ) -> None:
        self.label = label
        self.leader = leader
        self.phase = phase
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GatherOutcome(label={self.label}, leader={self.leader}, "
            f"phase={self.phase}, size={self.size})"
        )


class GossipOutcome:
    """Per-agent result of a gossip algorithm.

    ``messages`` maps each distinct message (a binary string) to the
    number of agents whose input message it was; ``gather`` carries
    the preceding gathering outcome when gossip ran on top of it.
    """

    __slots__ = ("label", "messages", "gather")

    def __init__(
        self,
        label: int,
        messages: dict[str, int],
        gather: GatherOutcome | None = None,
    ) -> None:
        self.label = label
        self.messages = messages
        self.gather = gather

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"GossipOutcome(label={self.label}, messages={self.messages})"
