"""Declarative experiment specifications and their trial grids.

An :class:`ExperimentSpec` names *what* to measure — an algorithm, a
graph family with sizes, label sets, optional gossip message sets,
replicate seeds, and (since the scenario-matrix engine) wake
schedules, placements and adversary strategies — without saying *how*
to execute it.  The spec expands into a deterministic list of
:class:`TrialSpec` grid points, each carrying a per-trial graph seed
derived by hashing the spec seed with the trial key (so results never
depend on scheduling order, worker identity or Python's per-process
hash randomization).

The scenario axes are plain strings, validated here at construction:

* ``wake_schedules`` — :mod:`repro.sim.adversary` strategy strings
  (``simultaneous``, ``staggered:<gap>``, ``single_awake[:i]``,
  ``random[:max_delay[:pct]]``);
* ``placements`` — start-node strategies (``default``, ``spread``,
  ``random``, ``eccentric``), resolved against the concrete graph at
  execution time;
* ``adversaries`` — how the adversary spends its randomness:
  ``fixed`` runs the scenario once, ``worst_of:<k>`` /``best_of:<k>``
  let it draw ``k`` seed-derived scenario perturbations and keep the
  slowest/fastest outcome.

The canonical dictionary form (:meth:`ExperimentSpec.to_dict`) is
hashed into :meth:`ExperimentSpec.spec_hash`, which keys the on-disk
result store: any change to the grid produces a different hash and
therefore a fresh cache entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Sequence

from ..sim.adversary import parse_wake_strategy
from ..sim.faults import parse_dynamics_strategy, parse_fault_strategy

PLACEMENTS = ("default", "spread", "random", "eccentric")
# Algorithms whose trial runner understands faulted/dynamic scenarios
# (graceful degradation needs the gather declaration semantics; the
# chatty baselines have no notion of a surviving subset).
FAULTABLE_ALGORITHMS = ("gather_known", "gather_unknown")
_SEED_MODES = ("derived", "fixed")
_ADVERSARY_KINDS = ("fixed", "worst_of", "best_of", "adaptive")


class SpecError(ValueError):
    """The experiment specification is malformed."""


def parse_placement(placement: str) -> tuple[str, tuple[int, ...]]:
    """Validate a placement string; return ``(kind, nodes)``.

    Either a named strategy from :data:`PLACEMENTS` (empty ``nodes``),
    or an explicit assignment ``nodes:<v0>-<v1>-...`` giving agent
    ``i``'s start node — the placement analogue of the ``explicit``
    wake strategy, used by the adaptive-adversary search to express a
    concrete scenario it found as an ordinary declarative axis value.
    Node ids must be distinct non-negative integers (range-checked
    against the concrete graph at execution time).
    """
    if placement in PLACEMENTS:
        return placement, ()
    kind, _, tail = placement.partition(":")
    if kind != "nodes" or not tail:
        raise SpecError(
            f"placement {placement!r} must be one of {PLACEMENTS} or "
            "an explicit 'nodes:<v0>-<v1>-...' assignment"
        )
    try:
        nodes = tuple(int(part) for part in tail.split("-"))
    except ValueError:
        raise SpecError(
            f"explicit placement nodes must be integers: {placement!r}"
        ) from None
    if any(v < 0 for v in nodes):
        raise SpecError(
            f"explicit placement nodes must be non-negative: {placement!r}"
        )
    if len(set(nodes)) != len(nodes):
        raise SpecError(
            f"explicit placement nodes must be distinct: {placement!r}"
        )
    return "nodes", nodes


def format_placement_nodes(nodes) -> str:
    """The ``nodes:...`` string describing a concrete placement."""
    return "nodes:" + "-".join(str(v) for v in nodes)


def parse_adversary(strategy: str) -> tuple[str, int]:
    """Validate an adversary strategy string; return ``(kind, draws)``.

    ``fixed`` (one scenario, draw index 0), ``worst_of:<k>`` /
    ``best_of:<k>`` (the adversary evaluates ``k`` seed-derived
    scenario draws and keeps the worst/best round count), or
    ``adaptive:<strategy>:<budget>`` (the adversary *searches* the
    randomized scenario components with a
    :mod:`repro.runner.search` strategy — ``hill_climb``, ``halving``,
    ``bisect``, ``sample`` — under a budget of ``budget`` scenario
    evaluations, and keeps the worst outcome it found).
    """
    kind, _, arg = strategy.partition(":")
    if kind not in _ADVERSARY_KINDS:
        raise SpecError(
            f"unknown adversary strategy {strategy!r}; "
            f"known kinds: {_ADVERSARY_KINDS}"
        )
    if kind == "fixed":
        if arg:
            raise SpecError(
                f"the 'fixed' adversary takes no arguments: {strategy!r}"
            )
        return "fixed", 1
    if kind == "adaptive":
        # Imported lazily: the search package imports this module at
        # load time, so a module-level import would cycle.
        from .search.strategies import STRATEGIES

        search_strategy, _, budget_arg = arg.partition(":")
        if search_strategy not in STRATEGIES:
            raise SpecError(
                f"unknown search strategy in {strategy!r}; known: "
                f"{sorted(STRATEGIES)} (adaptive:<strategy>:<budget>)"
            )
        try:
            budget = int(budget_arg)
        except ValueError:
            raise SpecError(
                f"the adaptive adversary needs an integer budget, e.g. "
                f"'adaptive:{search_strategy}:16': {strategy!r}"
            ) from None
        if budget < 1:
            raise SpecError(
                f"adaptive adversary budget must be >= 1: {strategy!r}"
            )
        return "adaptive", budget
    try:
        draws = int(arg)
    except ValueError:
        raise SpecError(
            f"adversary {kind!r} needs an integer draw count, "
            f"e.g. '{kind}:4': {strategy!r}"
        ) from None
    if draws < 1:
        raise SpecError(f"adversary draw count must be >= 1: {strategy!r}")
    return kind, draws


def _canonical_json(payload: object) -> str:
    """Deterministic JSON used for hashing and byte-stable records."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, key: str) -> int:
    """Per-trial RNG seed: a pure function of the spec seed and key.

    Uses SHA-256 (not ``hash()``) so the value is identical in every
    worker process and interpreter invocation.
    """
    digest = hashlib.sha256(f"{base_seed}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class TrialSpec:
    """One fully-resolved grid point of an experiment.

    Plain-data and picklable: this is the unit of work shipped to pool
    workers.  ``graph_factory`` is the only non-declarative field (an
    escape hatch for callers with bespoke graphs); specs carrying one
    are executed serially and never cached.
    """

    __slots__ = (
        "key",
        "algorithm",
        "family",
        "n",
        "n_bound",
        "labels",
        "messages",
        "seed",
        "graph_seed",
        "placement",
        "wake_schedule",
        "adversary",
        "faults",
        "dynamics",
        "algorithm_params",
        "graph_factory",
    )

    def __init__(
        self,
        key: str,
        algorithm: str,
        family: str,
        n: int,
        n_bound: int,
        labels: tuple[int, ...],
        messages: tuple[str, ...] | None,
        seed: int,
        graph_seed: int,
        placement: str,
        wake_schedule: str = "simultaneous",
        adversary: str = "fixed",
        faults: str = "none",
        dynamics: str = "none",
        algorithm_params: dict | None = None,
        graph_factory: Callable | None = None,
    ) -> None:
        self.key = key
        self.algorithm = algorithm
        self.family = family
        self.n = n
        self.n_bound = n_bound
        self.labels = labels
        self.messages = messages
        self.seed = seed
        self.graph_seed = graph_seed
        self.placement = placement
        self.wake_schedule = wake_schedule
        self.adversary = adversary
        self.faults = faults
        self.dynamics = dynamics
        self.algorithm_params = dict(algorithm_params or {})
        self.graph_factory = graph_factory

    def to_dict(self) -> dict:
        """Picklable/JSON form (drops the factory escape hatch).

        The robustness axes serialize only away from their defaults, so
        every record writable before fault injection existed is still
        emitted byte-for-byte.
        """
        out = {
            "key": self.key,
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "n_bound": self.n_bound,
            "labels": list(self.labels),
            "messages": None if self.messages is None else list(self.messages),
            "seed": self.seed,
            "graph_seed": self.graph_seed,
            "placement": self.placement,
            "wake_schedule": self.wake_schedule,
            "adversary": self.adversary,
            "algorithm_params": dict(self.algorithm_params),
        }
        if self.faults != "none":
            out["faults"] = self.faults
        if self.dynamics != "none":
            out["dynamics"] = self.dynamics
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialSpec":
        messages = payload["messages"]
        return cls(
            key=payload["key"],
            algorithm=payload["algorithm"],
            family=payload["family"],
            n=payload["n"],
            n_bound=payload["n_bound"],
            labels=tuple(payload["labels"]),
            messages=None if messages is None else tuple(messages),
            seed=payload["seed"],
            graph_seed=payload["graph_seed"],
            placement=payload["placement"],
            # Absent in records written before the scenario-matrix
            # engine; the defaults reproduce the old behavior exactly.
            wake_schedule=payload.get("wake_schedule", "simultaneous"),
            adversary=payload.get("adversary", "fixed"),
            faults=payload.get("faults", "none"),
            dynamics=payload.get("dynamics", "none"),
            algorithm_params=payload.get("algorithm_params"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TrialSpec({self.key})"


class ExperimentSpec:
    """Declarative description of a trial grid.

    Parameters
    ----------
    algorithm:
        Registry name (see :data:`repro.runner.trial.ALGORITHMS`):
        ``gather_known``, ``gossip_known``, ``talking`` or
        ``random_walk``.
    family:
        Graph-family registry name (see
        :data:`repro.runner.trial.FAMILIES`), e.g. ``ring``, ``path``,
        ``torus``, ``random_regular``.  Ignored when ``graph_factory``
        is given.
    sizes:
        Graph sizes to build, one trial axis.
    label_sets:
        Agent label tuples, one trial axis.
    message_sets:
        Per-agent binary-string messages (gossip algorithms only); each
        set must align with every label set.  ``None`` for non-gossip.
    seeds:
        Replicate seeds, one trial axis.  With ``graph_seed_mode ==
        "derived"`` (default) the actual graph seed of a trial is
        derived by hashing the replicate seed with the trial key; with
        ``"fixed"`` the replicate seed is passed to the generator
        verbatim (matching historical single-run studies).
    n_bound:
        Known size bound given to the agents; ``None`` means "use the
        trial's graph size".
    placement:
        Single placement strategy (kept for backward compatibility;
        equivalent to ``placements=(placement,)``).  ``"default"``
        places agents on nodes ``0..k-1``; ``"spread"`` spaces them
        evenly (for two agents: nodes ``0`` and ``n-1``); ``"random"``
        samples distinct start nodes from the trial's derived scenario
        seed; ``"eccentric"`` greedily maximizes pairwise BFS distance
        (farthest-point sampling — the adversarial spread).
    placements:
        Placement strategies, one trial axis.  Overrides ``placement``
        when given.
    wake_schedules:
        Wake-up strategy strings, one trial axis (see
        :func:`repro.sim.adversary.schedule_from_strategy`):
        ``"simultaneous"``, ``"staggered:<gap>"``,
        ``"single_awake[:i]"``, ``"random[:max_delay[:pct]]"``.  The
        random strategy draws from the trial's derived scenario seed,
        so schedules are identical in every worker process.
    adversaries:
        Adversary strategies, one trial axis: ``"fixed"`` (run the
        scenario once) or ``"worst_of:<k>"`` / ``"best_of:<k>"`` (the
        adversary evaluates ``k`` seed-derived scenario draws of the
        random wake/placement components and records the slowest /
        fastest outcome).
    faults:
        Crash-fault strategies, one trial axis (see
        :mod:`repro.sim.faults`): ``"none"``,
        ``"crash:<label>@<round>[+...]"`` or
        ``"crash-random:<k>:<max_round>"``.  Restricted to the gather
        algorithms; ``crash-random`` resolves from the trial's derived
        scenario seed.
    dynamics:
        Dynamic-edge strategies, one trial axis: ``"none"``,
        ``"ring-sweep[:<period>]"`` or ``"ring-random"`` (at most one
        blocked edge per round — 1-interval-connected on rings).
    algorithm_params:
        Extra keyword knobs for the algorithm runner (e.g. ``{"seed":
        0}`` to pin the random-walk baseline's walk seed).  Part of the
        spec identity.
    graph_factory:
        Optional ``callable(n) -> PortGraph`` overriding the family.
        Such specs are not cacheable and must run with ``workers=1``.
    backend:
        Preferred execution backend name (see
        :mod:`repro.runner.backends`): ``serial``, ``process``,
        ``pipelined`` or ``manifest``.  ``None`` keeps the historical
        mapping (serial for ``workers=1``, process otherwise).  Purely
        an execution detail: every backend produces byte-identical
        records, so this field is *excluded* from :meth:`to_dict` and
        :meth:`spec_hash` — the same study run on one host or twenty
        shares one cache entry.
    """

    def __init__(
        self,
        algorithm: str,
        family: str = "ring",
        sizes: Sequence[int] = (4,),
        label_sets: Sequence[Sequence[int]] = ((1, 2),),
        message_sets: Sequence[Sequence[str]] | None = None,
        seeds: Sequence[int] = (0,),
        n_bound: int | None = None,
        placement: str = "default",
        placements: Sequence[str] | None = None,
        wake_schedules: Sequence[str] = ("simultaneous",),
        adversaries: Sequence[str] = ("fixed",),
        faults: Sequence[str] = ("none",),
        dynamics: Sequence[str] = ("none",),
        graph_seed_mode: str = "derived",
        algorithm_params: dict | None = None,
        graph_factory: Callable | None = None,
        backend: str | None = None,
    ) -> None:
        def require_unique(name: str, values) -> None:
            seen = []
            for value in values:
                if value in seen:
                    raise SpecError(
                        f"duplicate {name} value {value!r}: it would "
                        "collide with itself in the trial grid"
                    )
                seen.append(value)

        if not sizes:
            raise SpecError("sizes must be non-empty")
        if not label_sets:
            raise SpecError("label_sets must be non-empty")
        if not seeds:
            raise SpecError("seeds must be non-empty")
        if placements is None:
            placements = (placement,)
        if not placements:
            raise SpecError("placements must be non-empty")
        # Normalize before the uniqueness check, so type-variant
        # duplicates like (1, "1") cannot slip through and collide
        # once coerced.
        sizes = tuple(int(s) for s in sizes)
        label_sets = tuple(
            tuple(int(v) for v in ls) for ls in label_sets
        )
        if message_sets is not None:
            message_sets = tuple(
                tuple(str(m) for m in ms) for ms in message_sets
            )
        seeds = tuple(int(s) for s in seeds)
        placements = tuple(str(p) for p in placements)
        wake_schedules = tuple(str(w) for w in wake_schedules)
        adversaries = tuple(str(a) for a in adversaries)
        faults = tuple(str(f) for f in faults)
        dynamics = tuple(str(d) for d in dynamics)
        require_unique("sizes", sizes)
        require_unique("label_sets", label_sets)
        if message_sets is not None:
            require_unique("message_sets", message_sets)
        require_unique("seeds", seeds)
        require_unique("placements", placements)
        require_unique("wake_schedules", wake_schedules)
        require_unique("adversaries", adversaries)
        for p in placements:
            parse_placement(p)
        if not wake_schedules:
            raise SpecError("wake_schedules must be non-empty")
        max_team = max(len(ls) for ls in label_sets)
        for w in wake_schedules:
            try:
                kind, wake_args = parse_wake_strategy(w)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
            if kind == "single_awake" and wake_args:
                # Team sizes are known here; an index no team can
                # satisfy is rejected now rather than a thousand
                # captured failures later.  In a mixed-team grid an
                # index valid for only some teams stays expressible —
                # the rest become captured per-trial failures.
                if wake_args[0] >= max_team:
                    raise SpecError(
                        f"single_awake index {wake_args[0]} is out of "
                        f"range for every team (largest has "
                        f"{max_team} agents)"
                    )
        if not adversaries:
            raise SpecError("adversaries must be non-empty")
        for a in adversaries:
            parse_adversary(a)
        if not faults:
            raise SpecError("faults must be non-empty")
        if not dynamics:
            raise SpecError("dynamics must be non-empty")
        require_unique("faults", faults)
        require_unique("dynamics", dynamics)
        for f in faults:
            try:
                parsed = parse_fault_strategy(f)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
            if parsed[0] == "crash-random" and parsed[1] >= min(
                len(ls) for ls in label_sets
            ):
                raise SpecError(
                    f"crash-random victim count {parsed[1]} leaves no "
                    f"survivor for the smallest team "
                    f"({min(len(ls) for ls in label_sets)} agents)"
                )
        for d in dynamics:
            try:
                parse_dynamics_strategy(d)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        if (faults != ("none",) or dynamics != ("none",)) and (
            algorithm not in FAULTABLE_ALGORITHMS
        ):
            raise SpecError(
                f"faults/dynamics axes require one of "
                f"{FAULTABLE_ALGORITHMS}, got {algorithm!r}"
            )
        if graph_seed_mode not in _SEED_MODES:
            raise SpecError(f"graph_seed_mode must be one of {_SEED_MODES}")
        if backend is not None:
            # Imported lazily: the backends package imports this module
            # at load time, so a module-level import would cycle.
            from .backends import BACKENDS

            if backend not in BACKENDS:
                raise SpecError(
                    f"unknown execution backend {backend!r}; "
                    f"known: {sorted(BACKENDS)}"
                )
        self.backend = backend
        self.algorithm = algorithm
        self.family = family
        self.sizes = sizes
        self.label_sets = label_sets
        self.message_sets = message_sets
        self.seeds = seeds
        self.n_bound = n_bound
        self.placements = placements
        self.wake_schedules = wake_schedules
        self.adversaries = adversaries
        self.faults = faults
        self.dynamics = dynamics
        self.graph_seed_mode = graph_seed_mode
        self.algorithm_params = dict(algorithm_params or {})
        self.graph_factory = graph_factory
        if self.message_sets is not None:
            for ms in self.message_sets:
                for m in ms:
                    if set(m) - {"0", "1"}:
                        # Validated here (not only at execution) so
                        # trial keys, which join messages with ",",
                        # can never collide.
                        raise SpecError(
                            f"messages are binary strings, got {m!r}"
                        )
                for ls in self.label_sets:
                    if len(ms) != len(ls):
                        raise SpecError(
                            "every message set must have one message per "
                            f"label: {ms!r} vs labels {ls!r}"
                        )

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------

    @property
    def cacheable(self) -> bool:
        """Specs with a custom factory have no stable identity."""
        return self.graph_factory is None

    def to_dict(self) -> dict:
        """Canonical declarative form (raises for factory specs).

        Scenario axes at their defaults serialize in the *legacy*
        shape (a scalar ``placement``, no wake/adversary keys): every
        grid expressible before the scenario-matrix engine keeps its
        historical spec hash, so pre-existing result stores — v1
        single files included — are found and migrated instead of
        silently orphaned.
        """
        if not self.cacheable:
            raise SpecError(
                "a spec with a custom graph_factory has no canonical form"
            )
        out = {
            "algorithm": self.algorithm,
            "family": self.family,
            "sizes": list(self.sizes),
            "label_sets": [list(ls) for ls in self.label_sets],
            "message_sets": (
                None
                if self.message_sets is None
                else [list(ms) for ms in self.message_sets]
            ),
            "seeds": list(self.seeds),
            "n_bound": self.n_bound,
            "graph_seed_mode": self.graph_seed_mode,
            "algorithm_params": dict(self.algorithm_params),
        }
        if len(self.placements) == 1 and self.placements[0] in (
            "default", "spread",
        ):
            out["placement"] = self.placements[0]
        else:
            out["placements"] = list(self.placements)
        if self.wake_schedules != ("simultaneous",):
            out["wake_schedules"] = list(self.wake_schedules)
        if self.adversaries != ("fixed",):
            out["adversaries"] = list(self.adversaries)
        if self.faults != ("none",):
            out["faults"] = list(self.faults)
        if self.dynamics != ("none",):
            out["dynamics"] = list(self.dynamics)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Rebuild a spec from its canonical form (``spec.json``).

        Tolerates dictionaries written before the scenario-matrix
        axes existed (the defaults reproduce the old grid exactly).
        """
        placements = payload.get("placements")
        if placements is None:
            placements = (payload.get("placement", "default"),)
        return cls(
            algorithm=payload["algorithm"],
            family=payload.get("family", "ring"),
            sizes=payload["sizes"],
            label_sets=payload["label_sets"],
            message_sets=payload.get("message_sets"),
            seeds=payload["seeds"],
            n_bound=payload.get("n_bound"),
            placements=placements,
            wake_schedules=payload.get("wake_schedules", ("simultaneous",)),
            adversaries=payload.get("adversaries", ("fixed",)),
            faults=payload.get("faults", ("none",)),
            dynamics=payload.get("dynamics", ("none",)),
            graph_seed_mode=payload.get("graph_seed_mode", "derived"),
            algorithm_params=payload.get("algorithm_params"),
        )

    def spec_hash(self) -> str:
        """Stable content hash keying the on-disk result store.

        The package version is mixed in, so cached records are
        structurally invalidated when the simulator code changes — a
        stale cache can never silently serve pre-fix numbers.
        """
        from .. import __version__

        blob = _canonical_json(self.to_dict()).encode()
        blob += f"|repro={__version__}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Grid expansion.
    # ------------------------------------------------------------------

    def trials(self) -> list[TrialSpec]:
        """The full trial grid, in canonical (deterministic) order."""
        out: list[TrialSpec] = []
        message_axis: Sequence[Sequence[str] | None] = (
            [None] if self.message_sets is None else list(self.message_sets)
        )
        for n in self.sizes:
            for labels in self.label_sets:
                for messages in message_axis:
                    for placement in self.placements:
                        for wake in self.wake_schedules:
                            for adversary in self.adversaries:
                                for faults in self.faults:
                                    for dyn in self.dynamics:
                                        for seed in self.seeds:
                                            out.append(
                                                self._make_trial(
                                                    n, labels, messages,
                                                    placement, wake,
                                                    adversary, faults,
                                                    dyn, seed,
                                                )
                                            )
        return out

    def _make_trial(
        self,
        n: int,
        labels: Sequence[int],
        messages: Sequence[str] | None,
        placement: str,
        wake: str,
        adversary: str,
        faults: str,
        dynamics: str,
        seed: int,
    ) -> TrialSpec:
        key = self._trial_key(
            n, labels, messages, placement, wake, adversary,
            faults, dynamics, seed,
        )
        if self.graph_seed_mode == "fixed":
            graph_seed = seed
        else:
            # Derived from the scenario-free key: trials that differ
            # only in placement/wake/adversary/faults/dynamics run on
            # the *same* port labeling, so scenario comparisons never
            # conflate the adversary's schedule with graph variation
            # (and default scenarios keep their historical graph seeds).
            graph_key = "/".join(
                part for part in key.split("/")
                if not part.startswith(
                    ("place=", "wake=", "adv=", "faults=", "dyn=")
                )
            )
            graph_seed = derive_seed(seed, graph_key)
        return TrialSpec(
            key=key,
            algorithm=self.algorithm,
            family=self.family,
            n=n,
            n_bound=self.n_bound if self.n_bound is not None else n,
            labels=tuple(labels),
            messages=None if messages is None else tuple(messages),
            seed=seed,
            graph_seed=graph_seed,
            placement=placement,
            wake_schedule=wake,
            adversary=adversary,
            faults=faults,
            dynamics=dynamics,
            algorithm_params=self.algorithm_params,
            graph_factory=self.graph_factory,
        )

    def _trial_key(
        self,
        n: int,
        labels: Sequence[int],
        messages: Sequence[str] | None,
        placement: str,
        wake: str,
        adversary: str,
        faults: str,
        dynamics: str,
        seed: int,
    ) -> str:
        parts = [
            self.algorithm,
            self.family if self.cacheable else "custom",
            f"n={n}",
            "labels=" + "-".join(str(v) for v in labels),
        ]
        if messages is not None:
            parts.append("msg=" + ",".join(messages))
        # A scenario segment exists to keep grid points distinct, so
        # it is only emitted when its axis is actually multi-valued
        # (and the value is not the default): single-valued axes keep
        # the historical key format, so pre-scenario-matrix caches —
        # including PR-1 spread-placement stores — still hit.  Axis
        # values are registry/strategy names (no "/"), so distinct
        # grid points can never collide.
        if len(self.placements) > 1 and placement != "default":
            parts.append(f"place={placement}")
        if len(self.wake_schedules) > 1 and wake != "simultaneous":
            parts.append(f"wake={wake}")
        if len(self.adversaries) > 1 and adversary != "fixed":
            parts.append(f"adv={adversary}")
        if len(self.faults) > 1 and faults != "none":
            parts.append(f"faults={faults}")
        if len(self.dynamics) > 1 and dynamics != "none":
            parts.append(f"dyn={dynamics}")
        parts.append(f"seed={seed}")
        return "/".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExperimentSpec({self.algorithm}/{self.family}, "
            f"sizes={self.sizes}, labels={self.label_sets})"
        )
