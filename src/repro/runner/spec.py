"""Declarative experiment specifications and their trial grids.

An :class:`ExperimentSpec` names *what* to measure — an algorithm, a
graph family with sizes, label sets, optional gossip message sets and
replicate seeds — without saying *how* to execute it.  The spec
expands into a deterministic list of :class:`TrialSpec` grid points,
each carrying a per-trial graph seed derived by hashing the spec seed
with the trial key (so results never depend on scheduling order,
worker identity or Python's per-process hash randomization).

The canonical dictionary form (:meth:`ExperimentSpec.to_dict`) is
hashed into :meth:`ExperimentSpec.spec_hash`, which keys the on-disk
result store: any change to the grid produces a different hash and
therefore a fresh cache entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Sequence

_PLACEMENTS = ("default", "spread")
_SEED_MODES = ("derived", "fixed")


class SpecError(ValueError):
    """The experiment specification is malformed."""


def _canonical_json(payload: object) -> str:
    """Deterministic JSON used for hashing and byte-stable records."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, key: str) -> int:
    """Per-trial RNG seed: a pure function of the spec seed and key.

    Uses SHA-256 (not ``hash()``) so the value is identical in every
    worker process and interpreter invocation.
    """
    digest = hashlib.sha256(f"{base_seed}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class TrialSpec:
    """One fully-resolved grid point of an experiment.

    Plain-data and picklable: this is the unit of work shipped to pool
    workers.  ``graph_factory`` is the only non-declarative field (an
    escape hatch for callers with bespoke graphs); specs carrying one
    are executed serially and never cached.
    """

    __slots__ = (
        "key",
        "algorithm",
        "family",
        "n",
        "n_bound",
        "labels",
        "messages",
        "seed",
        "graph_seed",
        "placement",
        "algorithm_params",
        "graph_factory",
    )

    def __init__(
        self,
        key: str,
        algorithm: str,
        family: str,
        n: int,
        n_bound: int,
        labels: tuple[int, ...],
        messages: tuple[str, ...] | None,
        seed: int,
        graph_seed: int,
        placement: str,
        algorithm_params: dict | None = None,
        graph_factory: Callable | None = None,
    ) -> None:
        self.key = key
        self.algorithm = algorithm
        self.family = family
        self.n = n
        self.n_bound = n_bound
        self.labels = labels
        self.messages = messages
        self.seed = seed
        self.graph_seed = graph_seed
        self.placement = placement
        self.algorithm_params = dict(algorithm_params or {})
        self.graph_factory = graph_factory

    def to_dict(self) -> dict:
        """Picklable/JSON form (drops the factory escape hatch)."""
        return {
            "key": self.key,
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "n_bound": self.n_bound,
            "labels": list(self.labels),
            "messages": None if self.messages is None else list(self.messages),
            "seed": self.seed,
            "graph_seed": self.graph_seed,
            "placement": self.placement,
            "algorithm_params": dict(self.algorithm_params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialSpec":
        messages = payload["messages"]
        return cls(
            key=payload["key"],
            algorithm=payload["algorithm"],
            family=payload["family"],
            n=payload["n"],
            n_bound=payload["n_bound"],
            labels=tuple(payload["labels"]),
            messages=None if messages is None else tuple(messages),
            seed=payload["seed"],
            graph_seed=payload["graph_seed"],
            placement=payload["placement"],
            algorithm_params=payload.get("algorithm_params"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TrialSpec({self.key})"


class ExperimentSpec:
    """Declarative description of a trial grid.

    Parameters
    ----------
    algorithm:
        Registry name (see :data:`repro.runner.trial.ALGORITHMS`):
        ``gather_known``, ``gossip_known``, ``talking`` or
        ``random_walk``.
    family:
        Graph-family registry name (see
        :data:`repro.runner.trial.FAMILIES`), e.g. ``ring``, ``path``,
        ``torus``, ``random_regular``.  Ignored when ``graph_factory``
        is given.
    sizes:
        Graph sizes to build, one trial axis.
    label_sets:
        Agent label tuples, one trial axis.
    message_sets:
        Per-agent binary-string messages (gossip algorithms only); each
        set must align with every label set.  ``None`` for non-gossip.
    seeds:
        Replicate seeds, one trial axis.  With ``graph_seed_mode ==
        "derived"`` (default) the actual graph seed of a trial is
        derived by hashing the replicate seed with the trial key; with
        ``"fixed"`` the replicate seed is passed to the generator
        verbatim (matching historical single-run studies).
    n_bound:
        Known size bound given to the agents; ``None`` means "use the
        trial's graph size".
    placement:
        ``"default"`` places agents on nodes ``0..k-1``; ``"spread"``
        spaces them evenly (for two agents: nodes ``0`` and ``n-1``).
    algorithm_params:
        Extra keyword knobs for the algorithm runner (e.g. ``{"seed":
        0}`` to pin the random-walk baseline's walk seed).  Part of the
        spec identity.
    graph_factory:
        Optional ``callable(n) -> PortGraph`` overriding the family.
        Such specs are not cacheable and must run with ``workers=1``.
    """

    def __init__(
        self,
        algorithm: str,
        family: str = "ring",
        sizes: Sequence[int] = (4,),
        label_sets: Sequence[Sequence[int]] = ((1, 2),),
        message_sets: Sequence[Sequence[str]] | None = None,
        seeds: Sequence[int] = (0,),
        n_bound: int | None = None,
        placement: str = "default",
        graph_seed_mode: str = "derived",
        algorithm_params: dict | None = None,
        graph_factory: Callable | None = None,
    ) -> None:
        if not sizes:
            raise SpecError("sizes must be non-empty")
        if not label_sets:
            raise SpecError("label_sets must be non-empty")
        if not seeds:
            raise SpecError("seeds must be non-empty")
        if placement not in _PLACEMENTS:
            raise SpecError(f"placement must be one of {_PLACEMENTS}")
        if graph_seed_mode not in _SEED_MODES:
            raise SpecError(f"graph_seed_mode must be one of {_SEED_MODES}")
        self.algorithm = algorithm
        self.family = family
        self.sizes = tuple(int(s) for s in sizes)
        self.label_sets = tuple(tuple(int(v) for v in ls) for ls in label_sets)
        self.message_sets = (
            None
            if message_sets is None
            else tuple(tuple(str(m) for m in ms) for ms in message_sets)
        )
        self.seeds = tuple(int(s) for s in seeds)
        self.n_bound = n_bound
        self.placement = placement
        self.graph_seed_mode = graph_seed_mode
        self.algorithm_params = dict(algorithm_params or {})
        self.graph_factory = graph_factory
        if self.message_sets is not None:
            for ms in self.message_sets:
                for m in ms:
                    if set(m) - {"0", "1"}:
                        # Validated here (not only at execution) so
                        # trial keys, which join messages with ",",
                        # can never collide.
                        raise SpecError(
                            f"messages are binary strings, got {m!r}"
                        )
                for ls in self.label_sets:
                    if len(ms) != len(ls):
                        raise SpecError(
                            "every message set must have one message per "
                            f"label: {ms!r} vs labels {ls!r}"
                        )

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------

    @property
    def cacheable(self) -> bool:
        """Specs with a custom factory have no stable identity."""
        return self.graph_factory is None

    def to_dict(self) -> dict:
        """Canonical declarative form (raises for factory specs)."""
        if not self.cacheable:
            raise SpecError(
                "a spec with a custom graph_factory has no canonical form"
            )
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "sizes": list(self.sizes),
            "label_sets": [list(ls) for ls in self.label_sets],
            "message_sets": (
                None
                if self.message_sets is None
                else [list(ms) for ms in self.message_sets]
            ),
            "seeds": list(self.seeds),
            "n_bound": self.n_bound,
            "placement": self.placement,
            "graph_seed_mode": self.graph_seed_mode,
            "algorithm_params": dict(self.algorithm_params),
        }

    def spec_hash(self) -> str:
        """Stable content hash keying the on-disk result store.

        The package version is mixed in, so cached records are
        structurally invalidated when the simulator code changes — a
        stale cache can never silently serve pre-fix numbers.
        """
        from .. import __version__

        blob = _canonical_json(self.to_dict()).encode()
        blob += f"|repro={__version__}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Grid expansion.
    # ------------------------------------------------------------------

    def trials(self) -> list[TrialSpec]:
        """The full trial grid, in canonical (deterministic) order."""
        out: list[TrialSpec] = []
        message_axis: Sequence[Sequence[str] | None] = (
            [None] if self.message_sets is None else list(self.message_sets)
        )
        for n in self.sizes:
            for labels in self.label_sets:
                for messages in message_axis:
                    for seed in self.seeds:
                        key = self._trial_key(n, labels, messages, seed)
                        if self.graph_seed_mode == "fixed":
                            graph_seed = seed
                        else:
                            graph_seed = derive_seed(seed, key)
                        out.append(
                            TrialSpec(
                                key=key,
                                algorithm=self.algorithm,
                                family=self.family,
                                n=n,
                                n_bound=(
                                    self.n_bound
                                    if self.n_bound is not None
                                    else n
                                ),
                                labels=tuple(labels),
                                messages=(
                                    None
                                    if messages is None
                                    else tuple(messages)
                                ),
                                seed=seed,
                                graph_seed=graph_seed,
                                placement=self.placement,
                                algorithm_params=self.algorithm_params,
                                graph_factory=self.graph_factory,
                            )
                        )
        return out

    def _trial_key(
        self,
        n: int,
        labels: Sequence[int],
        messages: Sequence[str] | None,
        seed: int,
    ) -> str:
        parts = [
            self.algorithm,
            self.family if self.cacheable else "custom",
            f"n={n}",
            "labels=" + "-".join(str(v) for v in labels),
        ]
        if messages is not None:
            parts.append("msg=" + ",".join(messages))
        parts.append(f"seed={seed}")
        return "/".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExperimentSpec({self.algorithm}/{self.family}, "
            f"sizes={self.sizes}, labels={self.label_sets})"
        )
