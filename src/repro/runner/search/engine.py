"""The search engine: iterative scenario search over any backend.

:func:`run_search` is the store-backed driver behind ``python -m repro
search``: it expands a :class:`~repro.runner.search.spec.SearchSpec`
into a deterministic search trajectory, evaluates each proposed
candidate scenario as an ordinary trial through a registered
:class:`~repro.runner.backends.base.ExecutionBackend`, and persists
two kinds of first-class records in the v2
:class:`~repro.runner.store.ResultStore` under the search's spec
hash:

* **eval records** (``kind="eval"``) — one per evaluated candidate,
  the unmodified trial record of its ``nodes:``/``explicit:`` scenario
  (plus the ``kind`` marker), keyed by the scenario-encoded trial key;
* **round records** (``kind="round"``) — one per search round, keyed
  ``round/<i>``, carrying the strategy's live frontier, the incumbent
  scenario and the best objective value so far.

Because strategies are deterministic in ``(seed, observed values)``
and every candidate's record is a pure function of its trial spec, a
re-run *replays* the trajectory: each proposal hits the eval-record
cache and is never re-simulated, the round records are recomputed
byte-identically, and the search continues live exactly where the
budget last ran out.  The same property makes the records — and the
on-disk store — byte-identical across execution backends and worker
counts.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, cast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spec import ExperimentSpec

from ...events import stream as _event_stream
from ...events.types import SearchRoundFrontier as _EvSearchRoundFrontier
from ...metrics import registry as _metrics_registry
from ..backends import BackendContext, BackendError, get_backend
from ..engine import coerce_store
from ..spec import SpecError, TrialSpec
from ..store import ResultStore
from ...sim.faults import parse_fault_strategy
from ..trial import _build_graph, _resolve_trial_faults, resolve_scenario
from . import checkpoint as checkpoint_mod
from .space import ScenarioPoint, ScenarioSpace
from .spec import SearchSpec
from .strategies import drive_search, make_strategy

# progress callback: (round, attempts, budget, best_value, simulated,
# cached) -> None
SearchProgressFn = Callable[[int, int, int, object, int, int], None]


class SearchResult:
    """Everything a finished search produced."""

    __slots__ = (
        "spec", "records", "best", "best_value", "evaluated",
        "simulated", "cached", "rounds", "failed",
    )

    def __init__(
        self,
        spec: SearchSpec,
        records: list[dict],
        best: dict | None,
        best_value,
        evaluated: int,
        simulated: int,
        cached: int,
        rounds: int,
        failed: int,
    ) -> None:
        self.spec = spec
        self.records = records
        self.best = best
        self.best_value = best_value
        self.evaluated = evaluated
        self.simulated = simulated
        self.cached = cached
        self.rounds = rounds
        self.failed = failed

    def canonical_json(self) -> str:
        """Byte-stable serialization of the record list (for diffing)."""
        return json.dumps(
            self.records, sort_keys=True, separators=(",", ":")
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SearchResult(best={self.best_value!r}, "
            f"evaluated={self.evaluated}, simulated={self.simulated}, "
            f"rounds={self.rounds})"
        )


def _record_signature(record: dict, faults_searched: bool = False) -> str:
    """The scenario signature of a stored eval record.

    Must mirror :meth:`ScenarioSpace.signature` exactly: the fault
    segment appears only when the crash schedule is a *searched*
    coordinate (every candidate then carries its own ``crash:...``
    trial axis).  A fixed fault/dynamics axis is shared by all
    candidates and already separated by the spec hash.
    """
    sig = f"{record['placement']}|{record['wake_schedule']}"
    if faults_searched:
        sig += f"|{record.get('faults', 'none')}"
    return sig


def run_search(
    spec: SearchSpec,
    workers: int = 1,
    store: ResultStore | str | None = None,
    progress: SearchProgressFn | None = None,
    provider_args: dict | None = None,
    backend: str | None = None,
    backend_options: dict | None = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    max_rounds: int | None = None,
) -> SearchResult:
    """Run (or resume) an adaptive scenario search.

    Parameters mirror :func:`repro.runner.engine.run_experiment`; the
    ``manifest`` backend is rejected (an adaptive search is inherently
    sequential across rounds — its within-round batches parallelize
    through ``process``/``pipelined`` instead).

    With a store, every ``checkpoint_every``-th round boundary also
    persists a resumable checkpoint sidecar (strategy state + driver
    counters, see :mod:`repro.runner.search.checkpoint`) under the
    spec-hash directory.  ``resume=True`` restores it and continues
    the trajectory mid-stream instead of replaying the finished prefix
    out of the eval cache; with no (or a stale) checkpoint it degrades
    to exactly that replay.  ``max_rounds`` stops the loop after that
    many total rounds — a deterministic interruption point for
    preemption drills and incremental deep runs.  Interrupted,
    resumed, replayed and uninterrupted runs all leave byte-identical
    store directories.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if max_rounds is not None and max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    backend_name = backend
    if backend_name is None:
        backend_name = "serial" if workers == 1 else "process"
    if backend_name == "manifest":
        raise BackendError(
            "the manifest backend cannot drive an adaptive search "
            "(rounds are sequential); use serial, process or pipelined"
        )
    executor = get_backend(backend_name)
    result_store = coerce_store(store)
    provider_args = dict(provider_args or {})

    # The stream trial: the single-point experiment this search
    # attacks, with fully random scenario components.  Its derived
    # scenario seeds are exactly the ``worst_of`` adversary's draw
    # stream on the same grid point, and its derived graph seed pins
    # one shared graph for every candidate.
    stream_trial = TrialSpec(
        key=spec.base_key(),
        algorithm=spec.algorithm,
        family=spec.family,
        n=spec.n,
        n_bound=spec.effective_n_bound,
        labels=spec.labels,
        messages=spec.messages,
        seed=spec.seed,
        graph_seed=spec.graph_seed(),
        placement="random",
        wake_schedule=f"random:{spec.max_delay}:{spec.dormant_pct}",
        adversary="fixed",
        faults=spec.faults,
        dynamics=spec.dynamics,
    )
    graph = _build_graph(stream_trial)
    faults_searched = spec.faults.partition(":")[0] == "crash-random"
    fault_k = 0
    max_fault_round = 0
    if faults_searched:
        _f_kind, fault_k, max_fault_round = parse_fault_strategy(
            spec.faults
        )
    space = ScenarioSpace(
        n=graph.n,
        team=spec.team,
        max_delay=spec.max_delay,
        dormant_pct=spec.dormant_pct,
        search_placement=True,
        search_wake=True,
        search_faults=faults_searched,
        fault_labels=spec.labels,
        fault_k=fault_k,
        max_fault_round=max_fault_round,
    )

    def stream(draw: int) -> ScenarioPoint:
        nodes, wake = resolve_scenario(stream_trial, graph, draw)
        faults = (
            _resolve_trial_faults(stream_trial, wake, draw)
            if faults_searched
            else None
        )
        return space.from_resolved(nodes, wake, faults)

    def make_trial(point: ScenarioPoint) -> TrialSpec:
        placement, wake, faults = space.encode(point)
        assert placement is not None and wake is not None
        # A searched crash schedule is pinned into the candidate's own
        # ``faults`` axis (a concrete ``crash:...`` string), so its
        # record — like the ``nodes:``/``explicit:`` scenario axes —
        # replays deterministically from the trial spec alone.
        trial_faults = faults if faults is not None else spec.faults
        parts = [
            spec.algorithm,
            spec.family,
            f"n={spec.n}",
            "labels=" + "-".join(str(v) for v in spec.labels),
        ]
        if spec.messages is not None:
            parts.append("msg=" + ",".join(spec.messages))
        parts.append(f"place={placement}")
        parts.append(f"wake={wake}")
        if trial_faults != "none":
            parts.append(f"faults={trial_faults}")
        if spec.dynamics != "none":
            parts.append(f"dyn={spec.dynamics}")
        parts.append(f"seed={spec.seed}")
        return TrialSpec(
            key="/".join(parts),
            algorithm=spec.algorithm,
            family=spec.family,
            n=spec.n,
            n_bound=spec.effective_n_bound,
            labels=spec.labels,
            messages=spec.messages,
            seed=spec.seed,
            graph_seed=spec.graph_seed(),
            placement=placement,
            wake_schedule=wake,
            adversary="fixed",
            faults=trial_faults,
            dynamics=spec.dynamics,
        )

    # Resume: previously evaluated candidates are served from the
    # store; the deterministic replay turns them into pure cache hits.
    all_records: dict[str, dict] = {}
    eval_cache: dict[str, dict] = {}
    if result_store is not None:
        for key, record in result_store.load(spec).items():
            all_records[key] = record
            if record.get("kind") == "eval":
                eval_cache[
                    _record_signature(record, faults_searched)
                ] = record

    maximize = spec.objective == "worst"
    strategy = make_strategy(
        spec.strategy,
        space,
        seed=spec.strategy_seed(),
        budget=spec.budget,
        maximize=maximize,
        stream=stream,
        options={"batch": spec.batch, **spec.strategy_options},
    )

    counters = {"simulated": 0, "cached": 0, "failed": 0}
    # _UNSET distinguishes "no incumbent yet" from a legitimate None
    # objective value when counting frontier improvements.
    _UNSET = object()
    frontier_state: dict[str, Any] = {"best": _UNSET, "improved": 0}

    # Resume from a checkpoint sidecar: restore the strategy's full
    # proposal state and the driver counters, so the loop continues
    # mid-trajectory instead of replaying the finished prefix out of
    # the eval cache.  A missing/stale checkpoint degrades to exactly
    # that replay (start stays None).
    start: dict | None = None
    if resume and result_store is not None:
        ckpt = checkpoint_mod.load_checkpoint(result_store, spec)
        if ckpt is not None:
            start = checkpoint_mod.restore(ckpt, strategy)
            # The restored incumbent was already counted as an
            # improvement by the interrupted invocation.
            frontier_state["best"] = start["best_value"]

    def metric_value(record: dict):
        metrics = record.get("metrics") or {}
        if spec.metric not in metrics:
            raise SpecError(
                f"metric {spec.metric!r} is not in this algorithm's "
                f"records (has: {sorted(metrics)})"
            )
        return metrics[spec.metric]

    def evaluate_batch(points: list[ScenarioPoint]) -> list:
        values: list[Any] = [None] * len(points)
        pending: list[TrialSpec] = []
        order: list[int] = []
        for i, point in enumerate(points):
            cached = eval_cache.get(space.signature(point))
            if cached is not None:
                counters["cached"] += 1
                values[i] = metric_value(cached)
                continue
            pending.append(make_trial(point))
            order.append(i)
        if pending:
            context = BackendContext(
                # Duck-typed: no backend this engine accepts reads the
                # spec (only manifest would, and it is rejected above).
                spec=cast("ExperimentSpec", spec),
                pending=pending,
                workers=workers,
                provider_args=provider_args,
                prewarm=(spec.effective_n_bound,),
                store=None,
                options=backend_options,
            )
            by_key = {}
            for record in executor.execute(context):
                by_key[record["key"]] = record
            for i, trial in zip(order, pending):
                record = by_key.get(trial.key)
                if record is None:
                    raise RuntimeError(
                        f"backend {backend_name!r} returned no record "
                        f"for candidate {trial.key!r}"
                    )
                counters["simulated"] += 1
                if not record["ok"]:
                    counters["failed"] += 1
                    continue  # failures re-run next time, as always
                record["kind"] = "eval"
                sig = _record_signature(record, faults_searched)
                eval_cache[sig] = record
                all_records[record["key"]] = record
                values[i] = metric_value(record)
        return values

    def on_round(
        round_index: int, results, best_point, best_value, attempts
    ) -> None:
        placement, wake, best_faults = (
            space.encode(best_point)
            if best_point is not None
            else (None, None, None)
        )
        record = {
            "key": f"round/{round_index:04d}",
            "kind": "round",
            "ok": True,
            "error": None,
            "algorithm": spec.algorithm,
            "family": spec.family,
            "n": spec.n,
            "labels": list(spec.labels),
            "seed": spec.seed,
            "placement": placement or "-",
            "wake_schedule": wake or "-",
            "adversary": f"adaptive:{spec.strategy}:{spec.budget}",
            "search_round": round_index,
            "frontier": strategy.frontier(),
            "metrics": {
                f"best_{spec.metric}": best_value,
                "attempts": attempts,
                "evaluated_round": len(results),
            },
        }
        if faults_searched:
            record["faults"] = best_faults or "-"
        all_records[record["key"]] = record
        if (
            best_value is not None
            and best_value != frontier_state["best"]
        ):
            frontier_state["best"] = best_value
            frontier_state["improved"] += 1
        if result_store is not None:
            result_store.save(spec, all_records)
            # Checkpoint after the records land: a kill between the
            # two writes resumes one round back and replays the extra
            # records out of the eval cache — never the reverse, where
            # a checkpoint would claim rounds whose records are gone.
            if round_index % checkpoint_every == 0:
                checkpoint_mod.write_checkpoint(
                    result_store,
                    spec,
                    checkpoint_mod.build_checkpoint(
                        spec, strategy, attempts, round_index,
                        best_point, best_value,
                    ),
                )
        if progress is not None:
            progress(
                round_index, attempts, spec.budget, best_value,
                counters["simulated"], counters["cached"],
            )
        emit = _event_stream.current()
        if emit is not None:
            emit.emit(_EvSearchRoundFrontier(
                round_index=round_index,
                attempts=attempts,
                budget=spec.budget,
                best_value=best_value,
                placement=placement,
                wake=wake,
            ))

    outcome = drive_search(
        strategy,
        evaluate_batch,
        spec.budget,
        maximize=maximize,
        on_round=on_round,
        start=start,
        max_rounds=max_rounds,
    )

    if result_store is not None:
        if all_records:
            result_store.save(spec, all_records)
        if outcome.rounds or start is not None:
            # Final round boundary — also covers checkpoint_every > 1
            # runs whose last round missed the periodic write.
            checkpoint_mod.write_checkpoint(
                result_store,
                spec,
                checkpoint_mod.build_checkpoint(
                    spec, strategy, outcome.attempts, outcome.rounds,
                    outcome.best_point, outcome.best_value,
                ),
            )

    reg = _metrics_registry.current()
    if reg is not None:
        reg.counter("runner.search.evaluations").value += outcome.attempts
        reg.counter(
            "runner.search.simulated"
        ).value += counters["simulated"]
        reg.counter("runner.search.cached").value += counters["cached"]
        reg.counter("runner.search.failed").value += counters["failed"]
        reg.counter("runner.search.rounds").value += outcome.rounds
        reg.counter(
            "runner.search.frontier_improvements"
        ).value += frontier_state["improved"]

    best_record = None
    if outcome.best_point is not None:
        best_record = eval_cache.get(space.signature(outcome.best_point))
    ordered = [all_records[key] for key in sorted(all_records)]
    return SearchResult(
        spec,
        ordered,
        best=best_record,
        best_value=outcome.best_value,
        evaluated=outcome.attempts,
        simulated=counters["simulated"],
        cached=counters["cached"],
        rounds=outcome.rounds,
        failed=counters["failed"],
    )
