"""Adaptive search strategies: propose/observe drivers over scenarios.

A strategy is an *ask-tell* state machine: :meth:`propose` returns the
next batch of unevaluated :class:`~repro.runner.search.space
.ScenarioPoint` candidates (never more than the remaining budget,
never a point it already proposed), and :meth:`observe` folds the
evaluated objective values back in.  The generic :func:`drive_search`
loop owns budget accounting and incumbent tracking, so the same
strategies serve both the store-backed search engine
(:mod:`repro.runner.search.engine`) and the in-trial
``adaptive:<strategy>:<budget>`` adversary
(:mod:`repro.runner.trial`).

Everything is deterministic in ``(seed, observed values)``: proposals
are derived from a seeded RNG and observations are folded in proposal
order, so a search replays identically — which is what makes resumed
searches pure cache hits and search records byte-identical across
execution backends.

Strategies:

``sample``
    Blind seeded sampling of the scenario stream — exactly the
    ``worst_of:<k>`` adversary expressed as a search (the baseline the
    adaptive strategies must beat).
``hill_climb``
    Seeded random-restart hill climbing: climb from a stream draw via
    single-coordinate mutations; after ``patience`` stalled rounds,
    restart from the next draw.
``halving``
    Successive halving over wake-delay budgets: a large population
    explores a small delay budget, survivors are promoted into doubled
    budgets (their schedules stretched) and re-evaluated, halving the
    population each rung.
``bisect``
    Coordinate bisection: narrow each scenario coordinate (an agent's
    wake delay, an agent's start node) to the better half-interval,
    cycling through coordinates for a fixed number of passes.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..spec import SpecError
from .space import (
    ScenarioPoint,
    ScenarioSpace,
    point_from_json,
    point_to_json,
)

# A stream maps a draw index to the seeded scenario sample the
# ``worst_of`` adversary would evaluate for the same draw — strategies
# restart/seed from it so adaptive and sampled adversaries explore the
# same distribution.
Stream = Callable[[int], ScenarioPoint]

_STREAM_ATTEMPT_CAP = 64  # consecutive already-seen draws before giving up


class SearchOutcome:
    """What a finished (or budget-exhausted) search found."""

    __slots__ = ("best_point", "best_value", "attempts", "rounds")

    def __init__(
        self,
        best_point: ScenarioPoint | None,
        best_value,
        attempts: int,
        rounds: int,
    ) -> None:
        self.best_point = best_point
        self.best_value = best_value
        self.attempts = attempts
        self.rounds = rounds

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SearchOutcome(best={self.best_value!r}, "
            f"attempts={self.attempts}, rounds={self.rounds})"
        )


def improved(value, incumbent, maximize: bool) -> bool:
    """Strict improvement (ties keep the earlier point)."""
    if incumbent is None:
        return True
    return value > incumbent if maximize else value < incumbent


class _Strategy:
    """Shared bookkeeping: seen-set, value map, incumbent, stream."""

    name = "?"

    def __init__(
        self,
        space: ScenarioSpace,
        seed: int,
        budget: int,
        maximize: bool = True,
        stream: Stream | None = None,
        options: dict | None = None,
    ) -> None:
        self.space = space
        self.budget = budget
        self.maximize = maximize
        self.stream = stream
        self.options = dict(options or {})
        self.rng = random.Random(seed)
        self._seen: set[str] = set()
        self._values: dict[str, Any] = {}
        self.incumbent: ScenarioPoint | None = None
        self.incumbent_value: Any = None

    # -- helpers -------------------------------------------------------

    def _sig(self, point: ScenarioPoint) -> str:
        return self.space.signature(point)

    def _mark(self, point: ScenarioPoint) -> bool:
        """Reserve a point for proposal; ``False`` if already seen."""
        sig = self._sig(point)
        if sig in self._seen:
            return False
        self._seen.add(sig)
        return True

    def _next_stream_point(self) -> ScenarioPoint | None:
        """The next not-yet-seen stream draw (``None`` if exhausted)."""
        if self.stream is None:
            return None
        for _ in range(_STREAM_ATTEMPT_CAP):
            point = self.stream(self._stream_index())
            self._advance_stream()
            if self._mark(point):
                return point
        return None

    def _stream_index(self) -> int:
        return getattr(self, "_stream_i", 0)

    def _advance_stream(self) -> None:
        self._stream_i = self._stream_index() + 1

    # -- protocol ------------------------------------------------------

    def prime(self, point: ScenarioPoint, value) -> None:
        """Pre-seed an already-evaluated point.

        The in-trial ``adaptive`` adversary evaluates the trial's
        fixed (draw-0) scenario before searching — priming it means
        the strategy never re-proposes it and, where meaningful,
        starts from it, which is what guarantees ``adaptive`` can
        never report a milder outcome than ``fixed``.
        """
        sig = self._sig(point)
        self._seen.add(sig)
        self._values[sig] = value
        if value is not None and improved(
            value, self.incumbent_value, self.maximize
        ):
            self.incumbent, self.incumbent_value = point, value
        self._prime(point, value)

    def _prime(self, point: ScenarioPoint, value) -> None:
        pass

    def propose(self, remaining: int) -> list[ScenarioPoint]:
        raise NotImplementedError

    def observe(
        self, results: Sequence[tuple[ScenarioPoint, Any]]
    ) -> None:
        """Fold evaluated values in (``None`` value = failed trial)."""
        for point, value in results:
            self._values[self._sig(point)] = value
            if value is not None and improved(
                value, self.incumbent_value, self.maximize
            ):
                self.incumbent, self.incumbent_value = point, value
        self._observe(results)

    def _observe(
        self, results: Sequence[tuple[ScenarioPoint, Any]]
    ) -> None:
        pass

    def frontier(self) -> dict:
        """JSON-safe snapshot of the strategy's live state."""
        out = {
            "strategy": self.name,
            "evaluated": len(self._values),
            "incumbent": (
                None
                if self.incumbent is None
                else self._sig(self.incumbent)
            ),
        }
        out.update(self._frontier())
        return out

    def _frontier(self) -> dict:
        return {}

    # -- checkpointing -------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot of everything proposal order depends on.

        Restoring it with :meth:`load_state` makes the strategy
        propose the exact sequence an uninterrupted run would have
        proposed from this moment — the property the checkpointed
        search engine's byte-identity contract rests on.  Values must
        survive a JSON round trip unchanged (ints, floats, strings,
        ``None``), which every objective metric already guarantees.
        """
        rng_state = self.rng.getstate()
        return {
            "strategy": self.name,
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
            "seen": sorted(self._seen),
            "values": [
                [sig, self._values[sig]] for sig in sorted(self._values)
            ],
            "incumbent": point_to_json(self.incumbent),
            "incumbent_value": self.incumbent_value,
            "stream_i": self._stream_index(),
            "extra": self._state_extra(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (same strategy only)."""
        if state.get("strategy") != self.name:
            raise SpecError(
                f"checkpoint belongs to strategy "
                f"{state.get('strategy')!r}, not {self.name!r}"
            )
        rng = state["rng"]
        self.rng.setstate((rng[0], tuple(rng[1]), rng[2]))
        self._seen = set(state["seen"])
        self._values = {sig: value for sig, value in state["values"]}
        self.incumbent = point_from_json(state["incumbent"])
        self.incumbent_value = state["incumbent_value"]
        self._stream_i = int(state["stream_i"])
        self._load_extra(state.get("extra") or {})

    def _state_extra(self) -> dict:
        """Subclass hook: private state beyond the shared bookkeeping."""
        return {}

    def _load_extra(self, extra: dict) -> None:
        pass


class SampleStrategy(_Strategy):
    """Blind seeded sampling — ``worst_of:<k>`` as a search strategy."""

    name = "sample"

    def propose(self, remaining: int) -> list[ScenarioPoint]:
        batch_size = min(int(self.options.get("batch", 8)), remaining)
        batch = []
        for _ in range(batch_size):
            point = self._next_stream_point()
            if point is None:
                break
            batch.append(point)
        return batch

    def _frontier(self) -> dict:
        return {"next_draw": self._stream_index()}


class HillClimbStrategy(_Strategy):
    """Seeded random-restart hill climbing over scenario mutations."""

    name = "hill_climb"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.neighbors = int(self.options.get("neighbors", 4))
        self.patience = int(self.options.get("patience", 2))
        if self.neighbors < 1:
            raise SpecError("hill_climb needs neighbors >= 1")
        if self.patience < 1:
            raise SpecError("hill_climb needs patience >= 1")
        self._current: ScenarioPoint | None = None
        self._current_value: Any = None
        self._stalls = 0
        self._restarts = 0
        self._awaiting_restart = False

    def _prime(self, point, value) -> None:
        if value is not None:
            self._current, self._current_value = point, value

    def propose(self, remaining: int) -> list[ScenarioPoint]:
        if self._current is None:
            point = self._next_stream_point()
            if point is None:
                return []
            self._awaiting_restart = True
            return [point]
        batch = []
        for _ in range(min(self.neighbors, remaining)):
            for _ in range(8):  # bounded retries for unseen neighbors
                neighbor = self.space.mutate(self._current, self.rng)
                if self._mark(neighbor):
                    batch.append(neighbor)
                    break
        if not batch:
            # The neighborhood is exhausted: force a restart.
            self._current = None
            self._current_value = None
            self._stalls = 0
            return self.propose(remaining)
        return batch

    def _observe(self, results) -> None:
        if self._awaiting_restart:
            self._awaiting_restart = False
            point, value = results[0]
            self._restarts += 1
            if value is None:
                self._current = None  # failed restart: draw again
                return
            self._current, self._current_value = point, value
            self._stalls = 0
            return
        best_point, best_value = None, None
        for point, value in results:
            if value is not None and improved(
                value, best_value, self.maximize
            ):
                best_point, best_value = point, value
        if best_value is not None and improved(
            best_value, self._current_value, self.maximize
        ):
            self._current, self._current_value = best_point, best_value
            self._stalls = 0
        else:
            self._stalls += 1
            if self._stalls >= self.patience:
                self._current = None
                self._current_value = None
                self._stalls = 0

    def _frontier(self) -> dict:
        return {
            "restarts": self._restarts,
            "stalls": self._stalls,
            "climbing_from": (
                None
                if self._current is None
                else self._sig(self._current)
            ),
        }

    def _state_extra(self) -> dict:
        return {
            "current": point_to_json(self._current),
            "current_value": self._current_value,
            "stalls": self._stalls,
            "restarts": self._restarts,
            "awaiting_restart": self._awaiting_restart,
        }

    def _load_extra(self, extra: dict) -> None:
        self._current = point_from_json(extra["current"])
        self._current_value = extra["current_value"]
        self._stalls = int(extra["stalls"])
        self._restarts = int(extra["restarts"])
        self._awaiting_restart = bool(extra["awaiting_restart"])


class HalvingStrategy(_Strategy):
    """Successive halving over wake-delay budgets."""

    name = "halving"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        population = int(
            self.options.get("population", max(2, self.budget // 2))
        )
        if population < 2:
            raise SpecError("halving needs a population >= 2")
        self._rungs = 1
        while (1 << self._rungs) < population:
            self._rungs += 1
        self._rungs += 1  # final rung runs at the full delay budget
        self._rung = 0
        self._queue: list[ScenarioPoint] = []
        self._rung_results: list[tuple[ScenarioPoint, Any]] = []
        self._pending = 0
        for _ in range(population):
            point = self.space.random_point(
                self.rng, delay_budget=self._delay_budget(0)
            )
            if self._mark(point):
                self._queue.append(point)

    def _delay_budget(self, rung: int) -> int:
        shift = self._rungs - 1 - rung
        return max(1, self.space.max_delay >> shift)

    def propose(self, remaining: int) -> list[ScenarioPoint]:
        if not self._queue and not self._pending:
            if not self._advance_rung():
                return self._tail(remaining)
        batch = self._queue[:remaining]
        self._queue = self._queue[len(batch):]
        self._pending += len(batch)
        return batch

    def _observe(self, results) -> None:
        self._pending -= len(results)
        self._rung_results.extend(results)

    def _advance_rung(self) -> bool:
        """Rank the finished rung, promote survivors; ``False`` at end."""
        if self._rung + 1 >= self._rungs or len(self._rung_results) < 2:
            return False
        ranked = sorted(
            (
                (point, value)
                for point, value in self._rung_results
                if value is not None
            ),
            key=lambda pv: (
                -pv[1] if self.maximize else pv[1],
                self._sig(pv[0]),
            ),
        )
        survivors = ranked[: max(1, (len(ranked) + 1) // 2)]
        self._rung += 1
        self._rung_results = []
        budget = self._delay_budget(self._rung)
        for point, value in survivors:
            promoted = self.space.scale_delays(point, 2, budget)
            if self._mark(promoted):
                self._queue.append(promoted)
            else:
                # Already evaluated (e.g. no delays to stretch): its
                # value is known — it competes in the rung for free.
                self._rung_results.append(
                    (promoted, self._values[self._sig(promoted)])
                )
        return bool(self._queue)

    def _tail(self, remaining: int) -> list[ScenarioPoint]:
        """Spend leftover budget on fresh full-budget samples."""
        batch = []
        for _ in range(min(int(self.options.get("batch", 8)), remaining)):
            for _ in range(8):
                point = self.space.random_point(self.rng)
                if self._mark(point):
                    batch.append(point)
                    break
        return batch

    def _frontier(self) -> dict:
        return {
            "rung": self._rung,
            "rungs": self._rungs,
            "delay_budget": self._delay_budget(
                min(self._rung, self._rungs - 1)
            ),
            "queued": len(self._queue),
        }

    def _state_extra(self) -> dict:
        return {
            "rungs": self._rungs,
            "rung": self._rung,
            "queue": [point_to_json(p) for p in self._queue],
            "rung_results": [
                [point_to_json(p), v] for p, v in self._rung_results
            ],
            "pending": self._pending,
        }

    def _load_extra(self, extra: dict) -> None:
        self._rungs = int(extra["rungs"])
        self._rung = int(extra["rung"])
        self._queue = [point_from_json(p) for p in extra["queue"]]
        self._rung_results = [
            (point_from_json(p), v) for p, v in extra["rung_results"]
        ]
        self._pending = int(extra["pending"])


class BisectStrategy(_Strategy):
    """Cyclic coordinate bisection over placement/schedule space."""

    name = "bisect"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.passes = int(self.options.get("passes", 2))
        if self.passes < 1:
            raise SpecError("bisect needs passes >= 1")
        self._current: ScenarioPoint | None = None
        self._pass = 0
        self._coords: list[tuple[str, int]] = []
        self._coord_i = 0
        self._interval: tuple[int, int] | None = None
        self._trio: list[ScenarioPoint] = []
        self._trio_values: dict[str, Any] = {}
        self._awaiting_start = False

    def _prime(self, point, value) -> None:
        if value is not None:
            self._current = point

    def _start_pass(self) -> None:
        self._coords = []
        assert self._current is not None
        if self.space.search_wake:
            for agent, delay in enumerate(self._current.wake or ()):
                if delay is not None:  # dormancy is not bisectable
                    self._coords.append(("wake", agent))
        if self.space.search_placement:
            for agent in range(self.space.team):
                self._coords.append(("node", agent))
        self._coord_i = 0
        self._interval = None

    def _coord_range(self, coord: tuple[str, int]) -> tuple[int, int]:
        if coord[0] == "wake":
            return 0, self.space.max_delay
        return 0, self.space.n - 1

    def _apply(
        self, coord: tuple[str, int], position: int
    ) -> ScenarioPoint:
        assert self._current is not None
        kind, agent = coord
        if kind == "wake":
            return self.space.with_delay(self._current, agent, position)
        return self.space.with_node(self._current, agent, position)

    def propose(self, remaining: int) -> list[ScenarioPoint]:
        while True:
            if self._current is None:
                point = self._next_stream_point()
                if point is None:
                    return []
                self._awaiting_start = True
                return [point]
            if not self._coords:
                if self._pass >= self.passes:
                    return []
                self._start_pass()
                if not self._coords:
                    return []
            coord = self._coords[self._coord_i]
            if self._interval is None:
                self._interval = self._coord_range(coord)
            lo, hi = self._interval
            if hi - lo <= 1 and not self._trio:
                self._next_coordinate()
                continue
            if not self._trio:
                mid = (lo + hi) // 2
                self._trio = []
                self._trio_values = {}
                fresh = []
                for position in (lo, mid, hi):
                    candidate = self._apply(coord, position)
                    sig = self._sig(candidate)
                    self._trio.append(candidate)
                    if sig in self._values:
                        self._trio_values[sig] = self._values[sig]
                    elif self._mark(candidate):
                        fresh.append(candidate)
                    else:
                        # Proposed earlier but its value never came
                        # back (a failed trial): treat as known-bad.
                        self._trio_values[sig] = None
                if fresh:
                    return fresh[:remaining]
            if not self._narrow():
                self._next_coordinate()

    def _narrow(self) -> bool:
        """Shrink the interval toward the best trio value.

        Returns ``False`` when every trio value is known-bad (the
        coordinate is abandoned for this pass).
        """
        lo_pt, mid_pt, hi_pt = self._trio
        self._trio = []
        lo, hi = self._interval  # type: ignore[misc]
        mid = (lo + hi) // 2
        values = [
            self._trio_values.get(self._sig(p), self._values.get(
                self._sig(p)
            ))
            for p in (lo_pt, mid_pt, hi_pt)
        ]
        best_i = None
        best_v: Any = None
        for i, v in enumerate(values):
            if v is not None and improved(v, best_v, self.maximize):
                best_i, best_v = i, v
        if best_i is None:
            return False
        if improved(best_v, self._values.get(
            self._sig(self._current)  # type: ignore[arg-type]
        ), self.maximize):
            self._current = (lo_pt, mid_pt, hi_pt)[best_i]
        if best_i == 0:
            self._interval = (lo, mid)
        elif best_i == 2:
            self._interval = (mid, hi)
        else:
            self._interval = ((lo + mid) // 2, (mid + hi + 1) // 2)
        lo2, hi2 = self._interval
        return hi2 - lo2 > 1

    def _next_coordinate(self) -> None:
        self._trio = []
        self._trio_values = {}
        self._interval = None
        self._coord_i += 1
        if self._coord_i >= len(self._coords):
            self._coords = []
            self._pass += 1

    def _observe(self, results) -> None:
        if self._awaiting_start:
            self._awaiting_start = False
            point, value = results[0]
            if value is None:
                self._current = None
                return
            self._current = point
            self._pass = 0
            return
        for point, value in results:
            self._trio_values[self._sig(point)] = value

    def _frontier(self) -> dict:
        return {
            "pass": self._pass,
            "passes": self.passes,
            "coordinate": (
                list(self._coords[self._coord_i])
                if self._coords and self._coord_i < len(self._coords)
                else None
            ),
            "interval": (
                None if self._interval is None else list(self._interval)
            ),
        }

    def _state_extra(self) -> dict:
        return {
            "current": point_to_json(self._current),
            "pass": self._pass,
            "coords": [list(c) for c in self._coords],
            "coord_i": self._coord_i,
            "interval": (
                None if self._interval is None else list(self._interval)
            ),
            "trio": [point_to_json(p) for p in self._trio],
            "trio_values": [
                [sig, self._trio_values[sig]]
                for sig in sorted(self._trio_values)
            ],
            "awaiting_start": self._awaiting_start,
        }

    def _load_extra(self, extra: dict) -> None:
        self._current = point_from_json(extra["current"])
        self._pass = int(extra["pass"])
        self._coords = [
            (str(kind), int(agent)) for kind, agent in extra["coords"]
        ]
        self._coord_i = int(extra["coord_i"])
        interval = extra["interval"]
        self._interval = (
            None if interval is None else (int(interval[0]), int(interval[1]))
        )
        self._trio = [point_from_json(p) for p in extra["trio"]]
        self._trio_values = {
            sig: value for sig, value in extra["trio_values"]
        }
        self._awaiting_start = bool(extra["awaiting_start"])


STRATEGIES: dict[str, type[_Strategy]] = {
    "sample": SampleStrategy,
    "hill_climb": HillClimbStrategy,
    "halving": HalvingStrategy,
    "bisect": BisectStrategy,
}


def make_strategy(
    name: str,
    space: ScenarioSpace,
    seed: int,
    budget: int,
    maximize: bool = True,
    stream: Stream | None = None,
    options: dict | None = None,
) -> _Strategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise SpecError(
            f"unknown search strategy {name!r}; "
            f"known: {sorted(STRATEGIES)}"
        ) from None
    return cls(
        space, seed, budget, maximize=maximize, stream=stream,
        options=options,
    )


def drive_search(
    strategy: _Strategy,
    evaluate_batch: Callable[[list[ScenarioPoint]], list],
    budget: int,
    maximize: bool = True,
    on_round: Callable | None = None,
    start: dict | None = None,
    max_rounds: int | None = None,
) -> SearchOutcome:
    """The generic search loop: propose, evaluate, observe, repeat.

    ``evaluate_batch`` returns one objective value per point, aligned
    with the batch (``None`` for a failed evaluation).  Budget counts
    every proposed point — including failures — so a search always
    terminates.  ``on_round(round_index, results, best_point,
    best_value, attempts)`` fires after each observed batch (the
    engine's persistence/progress hook).

    ``start`` resumes mid-trajectory from a checkpoint: a dict with
    ``attempts``, ``rounds``, ``best_point``, ``best_value`` — the
    loop continues exactly where those counters stopped (the caller
    restores the *strategy's* state separately).  ``max_rounds`` stops
    after that many *total* rounds — a deterministic interruption
    point (preemption drills, incremental deep searches); the search
    is simply unfinished, and a resumed run continues it.
    """
    best_point: ScenarioPoint | None = None
    best_value: Any = None
    attempts = 0
    rounds = 0
    if start is not None:
        best_point = start.get("best_point")
        best_value = start.get("best_value")
        attempts = int(start.get("attempts", 0))
        rounds = int(start.get("rounds", 0))
    while attempts < budget:
        if max_rounds is not None and rounds >= max_rounds:
            break
        batch = strategy.propose(budget - attempts)
        batch = batch[: budget - attempts]
        if not batch:
            break
        values = evaluate_batch(batch)
        attempts += len(batch)
        results = list(zip(batch, values))
        strategy.observe(results)
        for point, value in results:
            if value is not None and improved(value, best_value, maximize):
                best_point, best_value = point, value
        rounds += 1
        if on_round is not None:
            on_round(rounds, results, best_point, best_value, attempts)
    return SearchOutcome(best_point, best_value, attempts, rounds)
