"""Adaptive adversary search over the scenario space.

The ``worst_of:<k>`` adversary (scenario-matrix engine) *samples* the
scenario space; this package *searches* it.  A declarative
:class:`SearchSpec` names a grid point, a strategy, an objective and a
trial budget; :func:`run_search` drives the strategy's
propose/evaluate/observe loop through any registered execution
backend, persisting evaluations and per-round incumbents as
first-class records in the v2 result store so searches resume
incrementally and ``python -m repro query`` can aggregate them.  The
same strategies power the in-trial ``adaptive:<strategy>:<budget>``
adversary axis, which makes any existing experiment grid adaptive
with one token.

Quickstart::

    from repro.runner.search import SearchSpec, run_search

    spec = SearchSpec(
        algorithm="gather_known", family="ring", n=6,
        labels=(1, 2), strategy="hill_climb", budget=32,
        max_delay=20,
    )
    result = run_search(spec, workers=2, store=".repro-cache")
    print(result.best_value, result.best["key"])

The CLI front-end is ``python -m repro search`` (see
:mod:`repro.runner.cli`).
"""

from .engine import SearchResult, run_search
from .space import ScenarioPoint, ScenarioSpace
from .spec import OBJECTIVES, SearchSpec
from .strategies import (
    STRATEGIES,
    SearchOutcome,
    drive_search,
    make_strategy,
)

__all__ = [
    "OBJECTIVES",
    "STRATEGIES",
    "ScenarioPoint",
    "ScenarioSpace",
    "SearchOutcome",
    "SearchResult",
    "SearchSpec",
    "drive_search",
    "make_strategy",
    "run_search",
]
