"""The scenario space an adaptive adversary searches.

A *scenario point* is a concrete assignment of the components the
adversary controls: where each agent starts (``nodes``) and when it
wakes (``wake`` — a delay per agent, or ``None`` for dormant).  The
:class:`ScenarioSpace` knows which components are actually searchable
(mirroring the ``worst_of``/``best_of`` convention, only *randomized*
components are the adversary's to vary), bounds the wake delays, and
provides the deterministic operators the search strategies are built
from: seeded sampling, single-coordinate mutation, delay scaling, and
coordinate substitution.

Points encode to the declarative axis strings the rest of the engine
already understands — ``nodes:<v0>-<v1>-...`` placements and
``explicit:<d0>-<d1>-...`` wake schedules — so a candidate scenario
becomes an ordinary :class:`~repro.runner.spec.TrialSpec` whose record
is a pure function of the spec: cacheable, queryable, and
byte-identical across execution backends.

Wake schedules are *normalized*: the smallest awake delay is shifted
to round 0.  The adversary only controls relative offsets — without
normalization every search would trivially saturate its delay budget
by delaying everyone, which measures nothing about the algorithm.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..spec import SpecError, format_placement_nodes
from ...sim.adversary import format_explicit_wake
from ...sim.faults import format_crash_faults


class ScenarioPoint:
    """One concrete scenario: start nodes + wake delays + crash faults.

    Immutable plain data.  A component the space does not search is
    ``None`` here and resolves to the trial's own (fixed) component at
    evaluation time.  ``faults`` — concrete ``(label, round)`` crash
    pairs — exists only in fault-searching spaces; elsewhere it stays
    ``None`` and every serialized form is unchanged from before fault
    injection existed.
    """

    __slots__ = ("nodes", "wake", "faults")

    def __init__(
        self,
        nodes: tuple[int, ...] | None,
        wake: tuple[int | None, ...] | None,
        faults: tuple[tuple[int, int], ...] | None = None,
    ) -> None:
        self.nodes = nodes
        self.wake = wake
        self.faults = faults

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ScenarioPoint)
            and self.nodes == other.nodes
            and self.wake == other.wake
            and self.faults == other.faults
        )

    def __hash__(self) -> int:
        return hash((self.nodes, self.wake, self.faults))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ScenarioPoint(nodes={self.nodes}, wake={self.wake}, "
            f"faults={self.faults})"
        )

    def to_json(self) -> dict:
        """JSON-safe form (checkpoint sidecars round-trip points).

        ``faults`` is emitted only when present, so sidecars of
        fault-free searches keep their historical bytes.
        """
        out = {
            "nodes": None if self.nodes is None else list(self.nodes),
            "wake": None if self.wake is None else list(self.wake),
        }
        if self.faults is not None:
            out["faults"] = [list(pair) for pair in self.faults]
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "ScenarioPoint":
        nodes = payload.get("nodes")
        wake = payload.get("wake")
        faults = payload.get("faults")
        return cls(
            None if nodes is None else tuple(int(v) for v in nodes),
            None if wake is None else tuple(
                None if d is None else int(d) for d in wake
            ),
            None if faults is None else tuple(
                (int(label), int(round_)) for label, round_ in faults
            ),
        )


def point_to_json(point: "ScenarioPoint | None") -> dict | None:
    """``None``-tolerant :meth:`ScenarioPoint.to_json`."""
    return None if point is None else point.to_json()


def point_from_json(payload: dict | None) -> "ScenarioPoint | None":
    """``None``-tolerant :meth:`ScenarioPoint.from_json`."""
    return None if payload is None else ScenarioPoint.from_json(payload)


class ScenarioSpace:
    """Bounds and operators for one search's scenario points.

    Parameters
    ----------
    n:
        Number of graph nodes (placement range).
    team:
        Number of agents.
    max_delay:
        Largest wake delay the adversary may assign.
    dormant_pct:
        Percentage chance a sampled agent is dormant (0 disables
        dormancy everywhere, including mutations).
    search_placement / search_wake / search_faults:
        Whether the adversary controls that component.  At least one
        must be searchable.
    fault_labels / fault_k / max_fault_round:
        The crash-fault sub-space (``search_faults`` only): the team's
        labels, how many victims each schedule crashes, and the latest
        allowed crash round — matching a ``crash-random:<k>:<max>``
        trial axis.
    """

    def __init__(
        self,
        n: int,
        team: int,
        max_delay: int = 16,
        dormant_pct: int = 25,
        search_placement: bool = True,
        search_wake: bool = True,
        search_faults: bool = False,
        fault_labels: Sequence[int] = (),
        fault_k: int = 0,
        max_fault_round: int = 0,
    ) -> None:
        if team < 1:
            raise SpecError("team must be >= 1")
        if n < team:
            raise SpecError(
                f"cannot place {team} agents on {n} nodes"
            )
        if max_delay < 0:
            raise SpecError("max_delay must be non-negative")
        if not 0 <= dormant_pct <= 100:
            raise SpecError("dormant_pct must be 0..100")
        if not (search_placement or search_wake or search_faults):
            raise SpecError(
                "a scenario space must search at least one component"
            )
        if search_faults:
            fault_labels = tuple(int(v) for v in fault_labels)
            if not 1 <= fault_k <= len(fault_labels):
                raise SpecError(
                    f"fault_k must be 1..{len(fault_labels)} "
                    f"(one victim per label at most), got {fault_k}"
                )
            if max_fault_round < 0:
                raise SpecError("max_fault_round must be non-negative")
        self.n = n
        self.team = team
        self.max_delay = max_delay
        self.dormant_pct = dormant_pct
        self.search_placement = search_placement
        self.search_wake = search_wake
        self.search_faults = search_faults
        self.fault_labels = tuple(fault_labels)
        self.fault_k = fault_k
        self.max_fault_round = max_fault_round

    # ------------------------------------------------------------------
    # Canonical form.
    # ------------------------------------------------------------------

    def normalize_wake(
        self, wake: Sequence[int | None]
    ) -> tuple[int | None, ...]:
        """Clamp delays to the budget and shift the earliest to 0.

        Also guarantees at least one awake agent (agent 0 wakes if a
        mutation made everyone dormant) — an all-dormant schedule
        deadlocks by construction and measures nothing.
        """
        entries: list[int | None] = [
            None if d is None else max(0, min(int(d), self.max_delay))
            for d in wake
        ]
        if all(d is None for d in entries):
            entries[0] = 0
        earliest = min(d for d in entries if d is not None)
        if earliest:
            entries = [
                None if d is None else d - earliest for d in entries
            ]
        return tuple(entries)

    def normalize_faults(
        self, faults: Sequence[Sequence[int]]
    ) -> tuple[tuple[int, int], ...]:
        """Clamp crash rounds to the budget; canonical sort order."""
        pairs = [
            (int(label), max(0, min(int(round_), self.max_fault_round)))
            for label, round_ in faults
        ]
        return tuple(sorted(pairs, key=lambda p: (p[1], p[0])))

    def canonical(self, point: ScenarioPoint) -> ScenarioPoint:
        """Normalize a point into the space (bounds + wake shift)."""
        nodes = point.nodes
        if nodes is not None:
            nodes = tuple(int(v) for v in nodes)
        wake = point.wake
        if wake is not None:
            wake = self.normalize_wake(wake)
        faults = point.faults
        if faults is not None:
            faults = self.normalize_faults(faults)
        return ScenarioPoint(nodes, wake, faults)

    def from_resolved(
        self,
        start_nodes: Sequence[int] | None,
        wake_rounds: Sequence[int | None],
        faults: Sequence[Sequence[int]] | None = None,
    ) -> ScenarioPoint:
        """A point from a ``resolve_scenario`` result.

        Keeps only the searched components, so stream draws (the
        seeded samples matched to the ``worst_of`` adversary's draw
        stream) land inside this space.
        """
        nodes = (
            tuple(start_nodes)
            if self.search_placement and start_nodes is not None
            else None
        )
        wake = (
            self.normalize_wake(wake_rounds)
            if self.search_wake
            else None
        )
        crash = (
            self.normalize_faults(faults)
            if self.search_faults and faults is not None
            else None
        )
        return ScenarioPoint(nodes, wake, crash)

    # ------------------------------------------------------------------
    # Encoding: points -> declarative axis strings.
    # ------------------------------------------------------------------

    def encode(
        self, point: ScenarioPoint
    ) -> tuple[str | None, str | None, str | None]:
        """``(placement_str, wake_str, faults_str)``; ``None`` for
        unsearched parts."""
        placement = (
            None
            if point.nodes is None
            else format_placement_nodes(point.nodes)
        )
        wake = (
            None
            if point.wake is None
            else format_explicit_wake(point.wake)
        )
        faults = (
            None
            if point.faults is None
            else format_crash_faults(point.faults)
        )
        return placement, wake, faults

    def signature(self, point: ScenarioPoint) -> str:
        """Stable identity string (dedup key, frontier/record field).

        The faults segment appears only in fault-searching spaces, so
        signatures of fault-free searches keep their historical form.
        """
        placement, wake, faults = self.encode(point)
        base = f"{placement or '-'}|{wake or '-'}"
        if faults is None:
            return base
        return f"{base}|{faults}"

    # ------------------------------------------------------------------
    # Operators.
    # ------------------------------------------------------------------

    def random_point(
        self, rng: random.Random, delay_budget: int | None = None
    ) -> ScenarioPoint:
        """Sample a fresh point (used by halving's rung populations)."""
        budget = self.max_delay if delay_budget is None else min(
            delay_budget, self.max_delay
        )
        nodes = (
            tuple(rng.sample(range(self.n), self.team))
            if self.search_placement
            else None
        )
        wake: tuple[int | None, ...] | None = None
        if self.search_wake:
            entries: list[int | None] = []
            for _ in range(self.team):
                if rng.random() < self.dormant_pct / 100.0:
                    entries.append(None)
                else:
                    entries.append(rng.randint(0, budget))
            wake = self.normalize_wake(entries)
        faults: tuple[tuple[int, int], ...] | None = None
        if self.search_faults:
            victims = rng.sample(list(self.fault_labels), self.fault_k)
            faults = self.normalize_faults(
                (label, rng.randint(0, self.max_fault_round))
                for label in victims
            )
        return ScenarioPoint(nodes, wake, faults)

    def mutate(
        self, point: ScenarioPoint, rng: random.Random
    ) -> ScenarioPoint:
        """One random single-coordinate move (a hill-climb neighbor)."""
        moves = []
        if self.search_placement:
            moves.append("place")
        if self.search_wake:
            moves.append("wake")
        if self.search_faults:
            moves.append("fault")
        move = moves[0] if len(moves) == 1 else rng.choice(moves)
        if move == "place":
            nodes = list(point.nodes or ())
            agent = rng.randrange(self.team)
            free = [v for v in range(self.n) if v not in nodes]
            if free and (self.team < 2 or rng.random() < 0.5):
                nodes[agent] = rng.choice(free)
            else:
                other = rng.randrange(self.team)
                nodes[agent], nodes[other] = nodes[other], nodes[agent]
            return self.canonical(
                ScenarioPoint(tuple(nodes), point.wake, point.faults)
            )
        if move == "fault":
            pairs = list(point.faults or ())
            i = rng.randrange(len(pairs)) if pairs else 0
            spare = [
                label for label in self.fault_labels
                if label not in {lab for lab, _r in pairs}
            ]
            if pairs and spare and rng.random() < 0.5:
                # Swap one victim for a survivor, keeping its round.
                label, round_ = pairs[i]
                pairs[i] = (rng.choice(spare), round_)
            elif pairs:
                # Nudge one victim's crash round.
                label, round_ = pairs[i]
                step = rng.choice((1, max(1, self.max_fault_round // 4)))
                pairs[i] = (
                    label,
                    round_ + (step if rng.random() < 0.5 else -step),
                )
            return self.canonical(
                ScenarioPoint(point.nodes, point.wake, tuple(pairs))
            )
        wake = list(point.wake or ())
        agent = rng.randrange(self.team)
        if (
            self.dormant_pct
            and rng.random() < self.dormant_pct / 100.0
        ):
            wake[agent] = None if wake[agent] is not None else rng.randint(
                0, self.max_delay
            )
        elif wake[agent] is None:
            wake[agent] = rng.randint(0, self.max_delay)
        else:
            step = rng.choice((1, max(1, self.max_delay // 4)))
            wake[agent] = wake[agent] + (step if rng.random() < 0.5
                                         else -step)
        return self.canonical(
            ScenarioPoint(point.nodes, tuple(wake), point.faults)
        )

    def scale_delays(
        self, point: ScenarioPoint, factor: int, budget: int
    ) -> ScenarioPoint:
        """Stretch a survivor's schedule into a larger delay budget
        (successive halving's rung promotion)."""
        if point.wake is None:
            return point
        wake = tuple(
            None if d is None else min(d * factor, budget, self.max_delay)
            for d in point.wake
        )
        return self.canonical(
            ScenarioPoint(point.nodes, wake, point.faults)
        )

    def with_delay(
        self, point: ScenarioPoint, agent: int, delay: int
    ) -> ScenarioPoint:
        """Set one agent's wake delay (bisection's wake coordinate)."""
        wake = list(point.wake or ())
        wake[agent] = delay
        return self.canonical(
            ScenarioPoint(point.nodes, tuple(wake), point.faults)
        )

    def with_node(
        self, point: ScenarioPoint, agent: int, node: int
    ) -> ScenarioPoint:
        """Move one agent to ``node`` (bisection's placement
        coordinate), swapping with any agent already there so nodes
        stay distinct."""
        nodes = list(point.nodes or ())
        if node in nodes:
            other = nodes.index(node)
            nodes[agent], nodes[other] = nodes[other], nodes[agent]
        else:
            nodes[agent] = node
        return self.canonical(
            ScenarioPoint(tuple(nodes), point.wake, point.faults)
        )
