"""Resumable search checkpoints (the sidecar behind ``--resume``).

A deep search dies with its worker unless its *trajectory state*
survives: the store's eval records alone only enable cache *replay*
(recomputing every round from the start), which is cheap but still
linear in the finished prefix.  The checkpoint sidecar makes
resumption O(1): after every round the engine persists the strategy's
full proposal state (RNG, seen-set, per-strategy private state — see
:meth:`repro.runner.search.strategies._Strategy.state_dict`), the
driver counters and the incumbent to
``<store>/<spec_hash>/search-checkpoint.json``, and a ``--resume`` run
restores all of it and continues the loop mid-trajectory.

Byte-identity is the contract: because strategies are deterministic in
``(seed, observed values)`` and the restored state is exactly the
state the uninterrupted run had at the same round boundary, the
resumed run proposes the identical candidates, persists the identical
records, and leaves a store byte-identical to an uninterrupted run's
(``tests/test_search_checkpoint.py`` asserts this for every
strategy).

The sidecar lives *next to* the shards, outside the shard namespace,
so :meth:`~repro.runner.store.ResultStore.save` and ``compact`` never
touch it.  It names the spec hash it belongs to and the checkpoint
format version; a mismatch on either makes ``load_checkpoint`` return
``None`` — a stale checkpoint silently degrades to plain cache
replay, never to a corrupted trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..store import ResultStore
from .space import point_from_json, point_to_json
from .spec import SearchSpec
from .strategies import _Strategy

CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = "search-checkpoint.json"


def checkpoint_path(store: ResultStore, spec: SearchSpec) -> pathlib.Path:
    """Where the spec's checkpoint sidecar lives in ``store``."""
    return store.sidecar_path(spec, CHECKPOINT_NAME)


def build_checkpoint(
    spec: SearchSpec,
    strategy: _Strategy,
    attempts: int,
    rounds: int,
    best_point,
    best_value,
) -> dict:
    """Assemble one round boundary's full resumable state.

    Deliberately *excludes* execution counters (simulated/cached/
    failed): they describe how an invocation happened to satisfy the
    trajectory (live simulation vs cache hits), not the trajectory
    itself — and the checkpoint must be a pure function of the
    trajectory so that fresh, replayed, interrupted-and-resumed and
    cross-backend runs all leave byte-identical store directories.
    """
    return {
        "version": CHECKPOINT_VERSION,
        "spec_hash": spec.spec_hash(),
        "attempts": int(attempts),
        "rounds": int(rounds),
        "best_point": point_to_json(best_point),
        "best_value": best_value,
        "strategy": strategy.state_dict(),
    }


def write_checkpoint(
    store: ResultStore, spec: SearchSpec, payload: dict
) -> pathlib.Path:
    """Atomically persist a checkpoint (tmp file + ``os.replace``)."""
    path = checkpoint_path(store, spec)
    text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def load_checkpoint(store: ResultStore, spec: SearchSpec) -> dict | None:
    """The spec's checkpoint, or ``None`` if absent/stale/unreadable.

    Validation is deliberately strict-but-silent: a checkpoint with
    the wrong version or spec hash (the package version changed under
    it, or the store directory was moved across specs) is treated as
    absent — resumption then falls back to the store's cache-replay
    path, which is always correct.
    """
    path = store.dir_for(spec) / CHECKPOINT_NAME
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        return None
    if payload.get("spec_hash") != spec.spec_hash():
        return None
    if not isinstance(payload.get("strategy"), dict):
        return None
    return payload


def clear_checkpoint(store: ResultStore, spec: SearchSpec) -> bool:
    """Remove the spec's checkpoint; ``True`` if one existed."""
    path = store.dir_for(spec) / CHECKPOINT_NAME
    try:
        path.unlink()
    except OSError:
        return False
    return True


def restore(checkpoint: dict, strategy: _Strategy) -> dict:
    """Load a checkpoint into ``strategy``.

    Returns the ``start`` dict
    :func:`~repro.runner.search.strategies.drive_search` continues
    from.  Execution counters are *not* part of a checkpoint (see
    :func:`build_checkpoint`): a resumed invocation reports only its
    own simulations, while ``attempts`` continues the trajectory's
    running total.
    """
    strategy.load_state(checkpoint["strategy"])
    return {
        "attempts": checkpoint["attempts"],
        "rounds": checkpoint["rounds"],
        "best_point": point_from_json(checkpoint["best_point"]),
        "best_value": checkpoint["best_value"],
    }
