"""Declarative search specifications (the search analogue of
:class:`~repro.runner.spec.ExperimentSpec`).

A :class:`SearchSpec` names everything that determines a search's
trajectory — the algorithm and graph point under attack, the scenario
space bounds, the strategy, the trial budget and the objective — and
nothing about *how* it executes (workers, backend).  Its canonical
dictionary form carries ``"kind": "search"`` so stores can tell search
sidecars from experiment sidecars, and hashes exactly like an
experiment spec: the hash keys the on-disk store directory where
evaluation records and per-round incumbents persist, which is what
makes searches resumable (a re-run replays the deterministic
trajectory out of cache) and queryable (``python -m repro query``
aggregates the records like any cached study).
"""

from __future__ import annotations

import hashlib

from ...sim.faults import parse_dynamics_strategy, parse_fault_strategy
from ..spec import (
    FAULTABLE_ALGORITHMS,
    SpecError,
    _canonical_json,
    derive_seed,
)

OBJECTIVES = ("worst", "best")


class SearchSpec:
    """Declarative description of one adaptive scenario search.

    Parameters
    ----------
    algorithm, family, n, labels, messages, n_bound:
        The single grid point under attack (same registries as
        :class:`~repro.runner.spec.ExperimentSpec`; the graph seed is
        derived exactly as an experiment with ``graph_seed_mode=
        "derived"`` would derive it, so a search and a sweep of the
        same point run on the identical graph).
    seed:
        Replicate seed; derives the graph seed, the scenario sample
        stream (matched to the ``worst_of`` adversary's draw stream on
        the same point) and the strategy's RNG.
    strategy:
        A :data:`repro.runner.search.strategies.STRATEGIES` name:
        ``sample``, ``hill_climb``, ``halving``, ``bisect``.
    budget:
        Maximum scenario evaluations (trials) the search may spend.
    objective:
        ``worst`` maximizes ``metric`` (the adversary), ``best``
        minimizes it.
    metric:
        Record metric being optimized (default ``rounds``).
    max_delay / dormant_pct:
        Wake-delay bound and dormancy percentage of the scenario
        space.
    faults / dynamics:
        Robustness axes (:mod:`repro.sim.faults`).  A ``crash-random``
        fault strategy makes the crash schedule a *searched* scenario
        coordinate — candidates carry concrete ``crash:<label>@<round>``
        schedules and the strategy mutates them like placements; a
        fixed ``crash:`` schedule or a ``dynamics`` strategy applies
        unchanged to every candidate.
    batch:
        Proposal batch size per round (part of the identity: it
        changes which candidates are evaluated).
    strategy_options:
        Extra strategy knobs (``neighbors``, ``patience``,
        ``population``, ``passes``); part of the identity.
    """

    def __init__(
        self,
        algorithm: str,
        family: str = "ring",
        n: int = 6,
        labels=(1, 2),
        messages=None,
        seed: int = 0,
        n_bound: int | None = None,
        strategy: str = "hill_climb",
        budget: int = 32,
        objective: str = "worst",
        metric: str = "rounds",
        max_delay: int = 16,
        dormant_pct: int = 25,
        faults: str = "none",
        dynamics: str = "none",
        batch: int = 8,
        strategy_options: dict | None = None,
    ) -> None:
        # Imported lazily to keep module load order flexible (the
        # strategies module imports ..spec, which this module shares).
        from .strategies import STRATEGIES

        if strategy not in STRATEGIES:
            raise SpecError(
                f"unknown search strategy {strategy!r}; "
                f"known: {sorted(STRATEGIES)}"
            )
        if objective not in OBJECTIVES:
            raise SpecError(
                f"objective must be one of {OBJECTIVES}: {objective!r}"
            )
        if budget < 1:
            raise SpecError("budget must be >= 1")
        if batch < 1:
            raise SpecError("batch must be >= 1")
        if n < 1:
            raise SpecError("n must be >= 1")
        if max_delay < 0:
            raise SpecError("max_delay must be non-negative")
        if not 0 <= dormant_pct <= 100:
            raise SpecError("dormant_pct must be 0..100")
        labels = tuple(int(v) for v in labels)
        if not labels or len(set(labels)) != len(labels):
            raise SpecError("labels must be non-empty and distinct")
        if len(labels) > n:
            raise SpecError(
                f"cannot place {len(labels)} agents on {n} nodes"
            )
        if messages is not None:
            messages = tuple(str(m) for m in messages)
            if len(messages) != len(labels):
                raise SpecError(
                    "one message per label: "
                    f"{messages!r} vs labels {labels!r}"
                )
            for m in messages:
                if set(m) - {"0", "1"}:
                    raise SpecError(
                        f"messages are binary strings, got {m!r}"
                    )
        self.algorithm = algorithm
        self.family = family
        self.n = int(n)
        self.labels = labels
        self.messages = messages
        self.seed = int(seed)
        self.n_bound = n_bound
        self.strategy = strategy
        self.budget = int(budget)
        self.objective = objective
        self.metric = str(metric)
        self.max_delay = int(max_delay)
        self.dormant_pct = int(dormant_pct)
        faults = str(faults)
        dynamics = str(dynamics)
        try:
            parsed_faults = parse_fault_strategy(faults)
            parse_dynamics_strategy(dynamics)
        except ValueError as exc:
            raise SpecError(str(exc)) from None
        if (faults != "none" or dynamics != "none") and (
            algorithm not in FAULTABLE_ALGORITHMS
        ):
            raise SpecError(
                f"faults/dynamics require one of {FAULTABLE_ALGORITHMS}, "
                f"got algorithm {algorithm!r}"
            )
        if parsed_faults[0] == "crash-random" and (
            parsed_faults[1] >= len(labels)
        ):
            raise SpecError(
                f"crash-random must leave a survivor: k={parsed_faults[1]} "
                f"with a team of {len(labels)}"
            )
        self.faults = faults
        self.dynamics = dynamics
        self.batch = int(batch)
        self.strategy_options = dict(strategy_options or {})

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical declarative form (``spec.json`` sidecar payload)."""
        out = {
            "kind": "search",
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "labels": list(self.labels),
            "messages": (
                None if self.messages is None else list(self.messages)
            ),
            "seed": self.seed,
            "n_bound": self.n_bound,
            "strategy": self.strategy,
            "budget": self.budget,
            "objective": self.objective,
            "metric": self.metric,
            "max_delay": self.max_delay,
            "dormant_pct": self.dormant_pct,
            "batch": self.batch,
            "strategy_options": dict(self.strategy_options),
        }
        # Emitted only when in play, so pre-existing search spec hashes
        # (and their cached trajectories) are untouched.
        if self.faults != "none":
            out["faults"] = self.faults
        if self.dynamics != "none":
            out["dynamics"] = self.dynamics
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchSpec":
        if payload.get("kind") != "search":
            raise SpecError(
                "not a search spec payload (missing kind='search')"
            )
        return cls(
            algorithm=payload["algorithm"],
            family=payload.get("family", "ring"),
            n=payload["n"],
            labels=payload["labels"],
            messages=payload.get("messages"),
            seed=payload.get("seed", 0),
            n_bound=payload.get("n_bound"),
            strategy=payload.get("strategy", "hill_climb"),
            budget=payload.get("budget", 32),
            objective=payload.get("objective", "worst"),
            metric=payload.get("metric", "rounds"),
            max_delay=payload.get("max_delay", 16),
            dormant_pct=payload.get("dormant_pct", 25),
            faults=payload.get("faults", "none"),
            dynamics=payload.get("dynamics", "none"),
            batch=payload.get("batch", 8),
            strategy_options=payload.get("strategy_options"),
        )

    def spec_hash(self) -> str:
        """Stable content hash keying the on-disk store directory.

        Mixes in the package version like
        :meth:`~repro.runner.spec.ExperimentSpec.spec_hash`, so cached
        search trajectories are invalidated when the simulator code
        changes.
        """
        from ... import __version__

        blob = _canonical_json(self.to_dict()).encode()
        blob += f"|repro={__version__}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Derived coordinates.
    # ------------------------------------------------------------------

    @property
    def team(self) -> int:
        return len(self.labels)

    @property
    def effective_n_bound(self) -> int:
        return self.n_bound if self.n_bound is not None else self.n

    def base_key(self) -> str:
        """The trial key of the equivalent single-point experiment.

        Matches :meth:`ExperimentSpec._trial_key` for a grid whose
        scenario axes are single-valued (those segments are omitted
        there), so the derived graph seed — and therefore the graph —
        is identical to what a sweep of the same point uses, and the
        scenario sample stream matches the ``worst_of`` adversary's
        draws on that sweep's trials.
        """
        parts = [
            self.algorithm,
            self.family,
            f"n={self.n}",
            "labels=" + "-".join(str(v) for v in self.labels),
        ]
        if self.messages is not None:
            parts.append("msg=" + ",".join(self.messages))
        parts.append(f"seed={self.seed}")
        return "/".join(parts)

    def graph_seed(self) -> int:
        return derive_seed(self.seed, self.base_key())

    def strategy_seed(self) -> int:
        return derive_seed(
            self.seed, f"{self.base_key()}|search|{self.strategy}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SearchSpec({self.strategy}:{self.budget} over "
            f"{self.algorithm}/{self.family} n={self.n})"
        )
