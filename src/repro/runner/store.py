"""On-disk memoization of completed trials (sharded, queryable).

Version 2 of the result store keeps one *directory* per experiment,
named by the spec hash::

    <root>/<spec_hash>/
        spec.json          canonical spec dict + hash
        index.json         shard -> record count, totals
        shard-0000.json    up to ``shard_size`` records, sorted keys
        shard-0001.json    ...

Records are chunked over the lexicographically sorted trial keys, so
the shard layout is a pure function of the record *set*: a store
produced by a parallel run is byte-identical to one produced serially,
and :meth:`ResultStore.compact` is idempotent.  A corrupt shard is
skipped on load (its trials simply re-run) and healed by the next
``save``/``compact``.

Version 1 stores (one monolithic ``<spec_hash>.json`` per experiment)
are still readable: ``load`` falls back to the legacy file when no v2
directory exists, and the next ``save`` migrates it to the sharded
layout and removes the old file.

All files are written atomically (temp file + ``os.replace``) with
sorted keys, and rewrites are skipped when the content is unchanged.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from typing import Iterator, Sequence

from ..metrics import registry as _metrics_registry
from .spec import ExperimentSpec

_FORMAT_VERSION = 2
_LEGACY_VERSION = 1
_DEFAULT_SHARD_SIZE = 256
# Kept in sync with repro.runner.search.checkpoint.CHECKPOINT_NAME
# (importing it here would invert the store <- search layering).
_CHECKPOINT_NAME = "search-checkpoint.json"


class MergeWarning(UserWarning):
    """A store merge lost information it could not reconcile."""


def _shard_name(index: int) -> str:
    return f"shard-{index:04d}.json"


def _read_shard(path: pathlib.Path, reg) -> dict | None:
    """Read and parse one shard, counting scans/bytes/corruption.

    Returns ``None`` for an unreadable or unparsable shard — the
    caller skips it (its trials simply re-run) and the next
    ``save``/``compact`` heals it.
    """
    try:
        text = path.read_text()
    except OSError:
        if reg is not None:
            reg.counter("store.shards.corrupt").value += 1
        return None
    if reg is not None:
        reg.counter("store.shards.read").value += 1
        reg.counter("store.bytes.read").value += len(text)
    try:
        payload = json.loads(text)
    except ValueError:
        if reg is not None:
            reg.counter("store.shards.corrupt").value += 1
        return None
    if not isinstance(payload, dict):
        if reg is not None:
            reg.counter("store.shards.corrupt").value += 1
        return None
    return payload


def spec_from_payload(payload: dict):
    """Rebuild the spec object a ``spec.json`` sidecar describes.

    Experiment and search stores share one on-disk layout; the search
    sidecar carries ``"kind": "search"`` and rebuilds into a
    :class:`~repro.runner.search.spec.SearchSpec`, everything else
    into an :class:`ExperimentSpec` — so ``compact`` and
    ``merge_from`` treat both kinds of store uniformly.
    """
    if isinstance(payload, dict) and payload.get("kind") == "search":
        # Imported lazily: the search package imports this module.
        from .search.spec import SearchSpec

        return SearchSpec.from_dict(payload)
    return ExperimentSpec.from_dict(payload)


class ResultStore:
    """Directory of per-spec sharded result directories."""

    def __init__(
        self,
        root: str | os.PathLike,
        shard_size: int = _DEFAULT_SHARD_SIZE,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.root = pathlib.Path(root)
        self.shard_size = shard_size

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------

    @staticmethod
    def _hash_of(spec: ExperimentSpec | str) -> str:
        if isinstance(spec, str):
            return spec
        return spec.spec_hash()

    def dir_for(self, spec: ExperimentSpec | str) -> pathlib.Path:
        """The v2 shard directory of ``spec`` (or a spec hash)."""
        return self.root / self._hash_of(spec)

    def legacy_path_for(self, spec: ExperimentSpec | str) -> pathlib.Path:
        """The v1 single-file location of ``spec`` (or a spec hash)."""
        return self.root / f"{self._hash_of(spec)}.json"

    def sidecar_path(
        self, spec: ExperimentSpec | str, name: str
    ) -> pathlib.Path:
        """A named sidecar file inside the spec's store directory.

        Sidecars (e.g. the search engine's resumable checkpoint) live
        next to the shards but outside the shard namespace —
        :meth:`save` only prunes ``shard-*.json`` files and
        :meth:`compact` rewrites shards in place, so sidecars survive
        both.  The directory is created on demand; whether the file
        exists is the caller's business.
        """
        directory = self.dir_for(spec)
        directory.mkdir(parents=True, exist_ok=True)
        return directory / name

    # ------------------------------------------------------------------
    # Load.
    # ------------------------------------------------------------------

    def load(self, spec: ExperimentSpec | str) -> dict[str, dict]:
        """Completed trial records for ``spec``, keyed by trial key.

        Reads the sharded layout when present, otherwise falls back to
        a legacy v1 single-file store.  Missing, unreadable or
        version-mismatched shards are treated as absent (their trials
        simply re-run).
        """
        directory = self.dir_for(spec)
        if directory.is_dir():
            records = self._load_shards(directory)
        else:
            records = self._load_legacy(self.legacy_path_for(spec))
        return self._backfill_scenario_fields(records)

    @staticmethod
    def _backfill_record(record: dict) -> dict:
        """Default the scenario axes on one pre-scenario-matrix record.

        Records cached before the wake/placement/adversary axes
        existed (legacy v1 stores, or shards migrated from them) lack
        those keys; the defaults reproduce what those trials actually
        ran, so the table renderer and ``query`` filters treat old and
        new records uniformly.
        """
        record.setdefault("placement", "default")
        record.setdefault("wake_schedule", "simultaneous")
        record.setdefault("adversary", "fixed")
        return record

    @classmethod
    def _backfill_scenario_fields(
        cls, records: dict[str, dict]
    ) -> dict[str, dict]:
        """Backfill every record of a loaded map (see above)."""
        for record in records.values():
            cls._backfill_record(record)
        return records

    def _load_shards(self, directory: pathlib.Path) -> dict[str, dict]:
        reg = _metrics_registry.current()
        records: dict[str, dict] = {}
        for path in sorted(directory.glob("shard-*.json")):
            payload = _read_shard(path, reg)
            if payload is None:
                continue  # corrupt shard: its trials re-run
            if payload.get("version") != _FORMAT_VERSION:
                continue
            trials = payload.get("trials")
            if isinstance(trials, dict):
                records.update(trials)
        return records

    @staticmethod
    def _load_legacy(path: pathlib.Path) -> dict[str, dict]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        if payload.get("version") != _LEGACY_VERSION:
            return {}
        trials = payload.get("trials")
        return dict(trials) if isinstance(trials, dict) else {}

    # ------------------------------------------------------------------
    # Save.
    # ------------------------------------------------------------------

    def save(
        self,
        spec: ExperimentSpec,
        records: dict[str, dict],
        spec_hash: str | None = None,
    ) -> None:
        """Persist the full record map for ``spec``, sharded.

        Chunks the lexicographically sorted keys into shards of
        ``shard_size``, removes shards that fell out of range, writes
        the index and spec sidecars, and unlinks any legacy v1 file
        (completing the migration).  Only changed files are rewritten.
        ``spec_hash`` overrides the recomputed hash — :meth:`compact`
        uses it to rewrite a store in place even when a package
        version bump has since changed what the spec would hash to.
        """
        if spec_hash is None:
            spec_hash = spec.spec_hash()
        reg = _metrics_registry.current()
        if reg is not None:
            reg.counter("store.saves").value += 1
        directory = self.dir_for(spec_hash)
        directory.mkdir(parents=True, exist_ok=True)
        keys = sorted(records)
        expected: dict[str, int] = {}
        for start in range(0, len(keys), self.shard_size):
            chunk = keys[start:start + self.shard_size]
            index = start // self.shard_size
            name = _shard_name(index)
            expected[name] = len(chunk)
            self._write_json(directory / name, {
                "version": _FORMAT_VERSION,
                "spec_hash": spec_hash,
                "shard": index,
                "trials": {k: records[k] for k in chunk},
            })
        for path in directory.glob("shard-*.json"):
            if path.name not in expected:
                path.unlink()
        self._write_json(directory / "index.json", {
            "version": _FORMAT_VERSION,
            "spec_hash": spec_hash,
            "shard_size": self.shard_size,
            "total": len(keys),
            "shards": expected,
        })
        self._write_json(directory / "spec.json", {
            "version": _FORMAT_VERSION,
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
        })
        legacy = self.legacy_path_for(spec_hash)
        if legacy.exists():
            legacy.unlink()

    @staticmethod
    def _write_json(path: pathlib.Path, payload: dict) -> None:
        text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        try:
            if path.read_text() == text:
                return  # unchanged: keep the old bytes and mtime
        except (OSError, ValueError):
            pass
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def compact(self, spec: ExperimentSpec | None = None) -> dict:
        """Rewrite stores into canonical shards; heal corruption.

        With a ``spec``, compacts that experiment only; without one,
        compacts every v2 directory whose ``spec.json`` is readable.
        Re-chunks records, drops unreadable shards and stale ``.tmp``
        files, and rewrites the index.  Idempotent: a second call is a
        byte-for-byte no-op.  Returns ``{"specs", "records",
        "removed"}`` counters.
        """
        targets: list[tuple[ExperimentSpec, str]]
        if spec is not None:
            spec_hash = spec.spec_hash()
            if (
                not self.dir_for(spec_hash).is_dir()
                and not self.legacy_path_for(spec_hash).exists()
            ):
                # A version bump changes what the spec hashes to; find
                # the store actually on disk via its spec sidecar, the
                # same way the no-arg path does.
                wanted = spec.to_dict()
                for entry in self.list_specs():
                    if entry.get("spec") == wanted:
                        spec_hash = entry["spec_hash"]
                        break
            targets = [(spec, spec_hash)]
        else:
            # Keyed by the *on-disk* hash, not a recomputed one: a
            # package version bump changes what a spec would hash to,
            # and compaction must still rewrite the store it found.
            targets = []
            for entry in self.list_specs():
                payload = entry.get("spec")
                if payload is None:
                    continue
                try:
                    rebuilt = spec_from_payload(payload)
                except (KeyError, ValueError, TypeError):
                    continue
                targets.append((rebuilt, entry["spec_hash"]))
            targets.sort(key=lambda t: t[1])
        removed = 0
        records_total = 0
        compacted = 0
        for item, item_hash in targets:
            directory = self.dir_for(item_hash)
            if (
                not directory.is_dir()
                and not self.legacy_path_for(item_hash).exists()
            ):
                continue  # never swept: don't fabricate an empty store
            compacted += 1
            legacy = self.legacy_path_for(item_hash)
            had_legacy = legacy.exists()
            before: set[str] = set()
            if directory.is_dir():
                before = {p.name for p in directory.iterdir()}
                for path in directory.glob("*.tmp"):
                    path.unlink()
                    removed += 1
            records = self.load(item_hash)
            records_total += len(records)
            self.save(item, records, spec_hash=item_hash)
            after = {p.name for p in directory.iterdir()}
            removed += len(before - after - {
                name for name in before if name.endswith(".tmp")
            })
            if had_legacy and not legacy.exists():
                removed += 1  # the migrated-away v1 single file
        return {
            "specs": compacted,
            "records": records_total,
            "removed": removed,
        }

    # ------------------------------------------------------------------
    # Enumeration (the query API's substrate).
    # ------------------------------------------------------------------

    def list_specs(self) -> list[dict]:
        """Cached experiments: ``{"spec_hash", "spec", "trials"}``.

        ``spec`` is the canonical spec dict (``None`` when the sidecar
        is unreadable); ``trials`` is the stored record count.  Both v2
        directories and legacy v1 files are reported.
        """
        if not self.root.is_dir():
            return []
        out = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir():
                spec_payload = None
                try:
                    sidecar = json.loads((entry / "spec.json").read_text())
                    spec_payload = sidecar.get("spec")
                except (OSError, ValueError):
                    pass
                # The index carries the record count, so listing a
                # million-trial store never parses its shards; fall
                # back to a shard scan when the index is damaged.
                total = None
                try:
                    index = json.loads((entry / "index.json").read_text())
                    if index.get("version") == _FORMAT_VERSION:
                        total = index.get("total")
                except (OSError, ValueError):
                    pass
                if not isinstance(total, int):
                    total = len(self._load_shards(entry))
                if total == 0 and spec_payload is None:
                    continue  # not a store directory
                out.append({
                    "spec_hash": entry.name,
                    "spec": spec_payload,
                    "trials": total,
                })
            elif entry.suffix == ".json":
                if (self.root / entry.stem).is_dir():
                    # Interrupted migration: the v2 directory exists
                    # and takes precedence (matching load()); listing
                    # the leftover legacy file too would double-count
                    # the spec.
                    continue
                try:
                    payload = json.loads(entry.read_text())
                except (OSError, ValueError):
                    continue
                if payload.get("version") != _LEGACY_VERSION:
                    continue
                trials = payload.get("trials")
                if not isinstance(trials, dict) or not trials:
                    continue
                out.append({
                    "spec_hash": entry.stem,
                    "spec": payload.get("spec"),
                    "trials": len(trials),
                })
        return out

    def iter_spec_records(self, spec_hash: str) -> Iterator[dict]:
        """Stream one spec's records shard by shard.

        Unlike :meth:`load`, at most one shard's records are in memory
        at a time — this is what lets ``python -m repro query``
        aggregate million-trial studies without materializing them.
        Canonical stores chunk lexicographically sorted keys into
        shards, so streaming shards in name order with sorted keys
        inside yields the same global order :meth:`load` would.
        Corrupt or version-mismatched shards are skipped, exactly as
        in :meth:`load`.

        Every key is yielded exactly once even when an interrupted
        ``save`` left overlapping shards (only the key set is kept in
        memory, never records).  On such overlap the *first* shard in
        name order wins — the one a completed ``save`` wrote last —
        whereas :meth:`load` lets the stale later shard win; the next
        ``compact`` heals the store and removes the difference.
        """
        directory = self.dir_for(spec_hash)
        if not directory.is_dir():
            legacy = self._load_legacy(self.legacy_path_for(spec_hash))
            for key in sorted(legacy):
                yield self._backfill_record(legacy[key])
            return
        reg = _metrics_registry.current()
        seen: set[str] = set()
        for path in sorted(directory.glob("shard-*.json")):
            payload = _read_shard(path, reg)
            if payload is None:
                continue  # corrupt shard: its trials re-run
            if payload.get("version") != _FORMAT_VERSION:
                continue
            trials = payload.get("trials")
            if not isinstance(trials, dict):
                continue
            for key in sorted(trials):
                if key in seen:
                    continue
                seen.add(key)
                yield self._backfill_record(trials[key])

    def iter_records(
        self, spec_hash: str | None = None
    ) -> Iterator[dict]:
        """Yield stored records, optionally restricted to one spec.

        ``spec_hash`` may be a unique prefix of a stored hash; an
        ambiguous or unmatched prefix raises :class:`ValueError`
        rather than silently merging experiments or reporting an
        empty (typo'd) study as having no data.  Records stream shard
        by shard (see :meth:`iter_spec_records`): iteration never
        holds a whole spec's records in memory.
        """
        entries = self.list_specs()
        if spec_hash is not None:
            entries = [
                e for e in entries if e["spec_hash"].startswith(spec_hash)
            ]
            if len(entries) > 1:
                matches = ", ".join(e["spec_hash"] for e in entries)
                raise ValueError(
                    f"spec prefix {spec_hash!r} is ambiguous: {matches}"
                )
            if not entries:
                raise ValueError(
                    f"no cached spec matches prefix {spec_hash!r}"
                )
        for entry in entries:
            yield from self.iter_spec_records(entry["spec_hash"])

    # ------------------------------------------------------------------
    # Merge (multi-host sweeps).
    # ------------------------------------------------------------------

    def merge_from(
        self, sources: Sequence["ResultStore | str | os.PathLike"]
    ) -> dict:
        """Union sibling stores into this one, spec by spec.

        The multi-host recipe: every ``python -m repro worker`` writes
        ordinary v2 shards into its own store directory, and this
        method unions them (CLI: ``python -m repro merge``).  For each
        spec hash found in any source:

        * records are unioned in source order, **last write wins** on
          duplicate trial keys — a :class:`MergeWarning` reports how
          many duplicates disagreed (identical duplicates are the
          normal overlap of workers that both covered a chunk and stay
          silent);
        * corrupt shards in a source are skipped (their records are
          simply absent, exactly as on load);
        * legacy v1 single-file sources are read and land as v2
          shards — merging *is* the migration;
        * this store's own records participate as the base layer, so
          merging is incremental and idempotent;
        * a search spec's ``search-checkpoint.json`` sidecar rides
          along — the source with the furthest frontier (most rounds,
          then attempts) wins, so a resume from the merged store
          continues from the most-advanced worker's state.

        Specs whose sidecar is unreadable in every source cannot be
        re-saved (no canonical spec dict) and are skipped with a
        :class:`MergeWarning`.  Returns ``{"specs", "records",
        "duplicates", "skipped"}`` counters.
        """
        union: dict[str, dict] = {}

        def ingest(store: "ResultStore", warn_duplicates: bool) -> int:
            disagreements = 0
            for entry in store.list_specs():
                spec_hash = entry["spec_hash"]
                bucket = union.setdefault(
                    spec_hash, {"spec": None, "records": {}, "ckpt": None}
                )
                if bucket["spec"] is None:
                    bucket["spec"] = entry["spec"]
                records = bucket["records"]
                for key, record in sorted(store.load(spec_hash).items()):
                    if (
                        warn_duplicates
                        and key in records
                        and records[key] != record
                    ):
                        disagreements += 1
                    records[key] = record
                # Search checkpoints ride along: keep the furthest
                # frontier so resuming from the merged store continues
                # where the most-advanced source stopped.  (Complete
                # runs write identical bytes, so a merge of finished
                # stores stays byte-canonical.)
                ckpt_path = store.dir_for(spec_hash) / _CHECKPOINT_NAME
                try:
                    raw = ckpt_path.read_bytes()
                    payload = json.loads(raw)
                    rank = (payload["rounds"], payload["attempts"])
                except (OSError, ValueError, KeyError, TypeError):
                    continue
                if bucket["ckpt"] is None or rank > bucket["ckpt"][0]:
                    bucket["ckpt"] = (rank, raw)
            return disagreements

        ingest(self, warn_duplicates=False)  # base layer: own records
        duplicates = 0
        for source in sources:
            if not isinstance(source, ResultStore):
                source = ResultStore(source)
            duplicates += ingest(source, warn_duplicates=True)
        if duplicates:
            warnings.warn(
                f"{duplicates} duplicate trial key(s) disagreed across "
                "sources; kept the last source's records",
                MergeWarning,
                stacklevel=2,
            )
        merged_specs = 0
        merged_records = 0
        skipped = 0
        for spec_hash in sorted(union):
            bucket = union[spec_hash]
            payload = bucket["spec"]
            try:
                spec = spec_from_payload(payload or {})
            except (KeyError, ValueError, TypeError):
                skipped += 1
                warnings.warn(
                    f"spec {spec_hash} has no readable spec.json in any "
                    "source; skipping (its records cannot be re-keyed)",
                    MergeWarning,
                    stacklevel=2,
                )
                continue
            self.save(spec, bucket["records"], spec_hash=spec_hash)
            if bucket["ckpt"] is not None:
                self.sidecar_path(spec_hash, _CHECKPOINT_NAME).write_bytes(
                    bucket["ckpt"][1]
                )
            merged_specs += 1
            merged_records += len(bucket["records"])
        return {
            "specs": merged_specs,
            "records": merged_records,
            "duplicates": duplicates,
            "skipped": skipped,
        }
