"""On-disk memoization of completed trials.

One JSON file per experiment, named by the spec hash: re-running the
same spec loads the file, skips every trial whose key is present and
simulates only the gap.  Any change to the spec changes the hash and
therefore starts a fresh file — cache invalidation is structural, not
timestamp-based.

Files are written atomically (temp file + ``os.replace``) with sorted
keys, so a store produced by a parallel run is byte-identical to one
produced serially.
"""

from __future__ import annotations

import json
import os
import pathlib

from .spec import ExperimentSpec

_FORMAT_VERSION = 1


class ResultStore:
    """Directory of per-spec JSON result files."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, spec: ExperimentSpec) -> pathlib.Path:
        return self.root / f"{spec.spec_hash()}.json"

    def load(self, spec: ExperimentSpec) -> dict[str, dict]:
        """Completed trial records for ``spec``, keyed by trial key.

        A missing, unreadable or version-mismatched file is treated as
        an empty cache (the trials simply re-run).
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        if payload.get("version") != _FORMAT_VERSION:
            return {}
        trials = payload.get("trials")
        return dict(trials) if isinstance(trials, dict) else {}

    def save(self, spec: ExperimentSpec, records: dict[str, dict]) -> None:
        """Atomically persist the full record map for ``spec``."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _FORMAT_VERSION,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "trials": records,
        }
        text = json.dumps(payload, sort_keys=True, indent=1)
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text + "\n")
        os.replace(tmp, path)
