"""The multiprocessing backend: one trial per pool task.

The original ``workers > 1`` path of the engine, extracted behind the
:class:`~repro.runner.backends.base.ExecutionBackend` protocol.  Each
pool worker builds its :class:`~repro.explore.uxs.UXSProvider` once in
the initializer (pre-warmed for every size bound the grid needs) and
receives plain trial dicts, so nothing graph-sized ever crosses the
process boundary (see :mod:`repro.runner.worker`).
"""

from __future__ import annotations

import multiprocessing
from typing import Iterator

from ...metrics import registry as _metrics_registry
from .. import worker as worker_mod
from .base import BackendContext


def pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheapest, fully deterministic), else spawn.

    The workers only use picklable dicts and importable top-level
    functions, so both start methods produce identical records.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessBackend:
    """Fan trials out over a ``multiprocessing`` pool, one per task."""

    name = "process"

    def execute(self, ctx: BackendContext) -> Iterator[dict]:
        reg = _metrics_registry.current()
        mp = pool_context()
        payloads = [t.to_dict() for t in ctx.pending]
        with mp.Pool(
            processes=ctx.workers,
            initializer=worker_mod.init_worker,
            initargs=(ctx.provider_args, ctx.prewarm, reg is not None),
        ) as pool:
            for result in pool.imap_unordered(
                worker_mod.run_trial_payload, payloads, chunksize=1
            ):
                if reg is not None and "__metrics__" in result:
                    # Cumulative worker snapshot: replace-per-worker
                    # fold (see Registry.absorb), then unwrap.
                    envelope = result["__metrics__"]
                    reg.absorb(envelope["worker"], envelope["snapshot"])
                    result = result["record"]
                    reg.counter(
                        "runner.backend.records", backend="process"
                    ).value += 1
                yield result
