"""The manifest backend: multi-host sweeps over a file-based queue.

A *work manifest* turns any shared directory (NFS mount, bind mount,
plain local dir) into a lock-free job queue for one experiment.  It
lives under the spec-hash directory of a result store::

    <root>/<spec_hash>/manifest/
        manifest.json        spec + ordered trial-key chunks
        claims/chunk-0000.claim    created atomically by the claimant
        results/chunk-0000.json    the chunk's records, once executed

Claiming is lock-free: a worker claims chunk ``i`` by creating its
claim file with ``O_CREAT | O_EXCL`` — the filesystem arbitrates, no
daemon, no lock server.  The manifest itself is a pure function of the
spec (full grid, canonical order), so concurrent creators write
identical bytes and the atomic-replace race is benign.

Workers come in two shapes:

* ``python -m repro worker`` (see :mod:`repro.runner.cli`) — claims
  chunks, executes them, writes chunk results into the manifest *and*
  ordinary v2 shards into its own store, then exits when nothing is
  claimable.  ``python -m repro merge`` later unions the sibling
  stores into one canonical store.
* the in-engine :class:`ManifestBackend` — same claim loop, but it
  also polls for chunks claimed by other workers so
  :func:`~repro.runner.engine.run_experiment` can return the complete
  record set (and persist canonical shards) once every chunk lands.

Chunks always cover the *full* trial grid — not one worker's view of
what is uncached — so every participant agrees on chunk identity
regardless of local cache state.  Trials are deterministic, so a
worker re-executing a locally-cached trial produces the identical
record; the only cost is wasted work, never divergence.

A crashed worker leaves a claim without a result.  ``python -m repro
worker --steal`` recovers automatically: a claim older than the steal
TTL is *taken over* by atomically rewriting it with a bumped
*generation* and a fresh claim token.  Results carry the token of the
claim they were executed under, so a revived worker's late write is
detected (its token no longer matches the live claim) and discarded
instead of being double-merged — trials are deterministic, so the only
cost of a takeover race is wasted work, never divergence.  Takeover
decisions use the claim file's mtime as seen by the *observer*; a raw
age below zero means the claimant's clock runs ahead of ours (NFS
between skewed hosts), and such claims are never considered stale —
the same clamp ``detailed_status`` applies to its age report.

Manual recovery still works: deleting a stale ``.claim`` file makes
the chunk claimable again (claim files record worker id and pid to
make that call easy).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Iterator

from ...events import stream as _event_stream
from ...events.types import BackendChunkClaimed as _EvBackendChunkClaimed
from ...explore.uxs import UXSProvider
from ...metrics import registry as _metrics_registry
from ...metrics import snapshot as _metrics_snapshot
from ..spec import ExperimentSpec
from ..trial import execute_trial
from .base import BackendContext, BackendError

MANIFEST_VERSION = 1
_DEFAULT_CHUNK_SIZE = 16

# Stale-claim takeover: a claim this old (seconds) with no result is
# considered abandoned and may be stolen by a ``--steal`` worker.
DEFAULT_CLAIM_TTL = 300.0

# Auto chunk sizing (``chunk_size=None``/"auto"): target work per
# chunk, in the relative units of :func:`estimate_trial_cost` when no
# timing data exists, in wall seconds once metrics sidecars provide a
# measured mean trial time.
_AUTO_CHUNK_TARGET_COST = 1024
_AUTO_CHUNK_TARGET_SECONDS = 30.0
_AUTO_CHUNK_MAX = 128
# Keep at least this many chunks so a preempted fleet redistributes
# work at useful granularity (one giant chunk cannot be stolen until
# its TTL expires — and then all at once).
_AUTO_CHUNK_MIN_CHUNKS = 4

# The zero-knowledge algorithms run astronomically larger clocks than
# the known-bound ones at the same graph size; weight them so mixed
# planning errs toward smaller (steal-responsive) chunks.
_ALGORITHM_COST_WEIGHT = {"gather_unknown": 512, "gossip_unknown": 512}

_TRIAL_SECONDS_SERIES = "runner.trial.wall_seconds"


class ManifestError(RuntimeError):
    """The manifest is missing, stale, or stopped making progress."""


def manifest_dir(root: str | os.PathLike, spec_hash: str) -> pathlib.Path:
    """The manifest directory of ``spec_hash`` under store ``root``."""
    return pathlib.Path(root) / spec_hash / "manifest"


def _chunk_name(chunk_id: int) -> str:
    return f"chunk-{chunk_id:04d}"


def _write_atomic(path: pathlib.Path, payload: dict) -> None:
    # The temp name carries the pid: the manifest dir is shared, and
    # two hosts racing to create the (identical) manifest must not
    # interleave writes into one temp file.
    text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def estimate_trial_cost(trial) -> int:
    """Relative cost of one trial: graph size × a rounds heuristic.

    Known-bound gathering/gossiping round counts grow with both the
    graph and the size bound (the UXS period is a function of the
    bound), so ``n * n_bound`` tracks the *ordering* of trial costs
    without claiming to be a clock model; the zero-knowledge
    algorithms get a large constant weight on top (their hypothesis
    clocks dwarf everything else at equal ``n``).  Only relative
    values matter — :func:`plan_chunk_size` divides a target by the
    grid's mean.
    """
    weight = _ALGORITHM_COST_WEIGHT.get(trial.algorithm, 1)
    return max(1, trial.n * max(1, trial.n_bound)) * weight


def _measured_trial_seconds(root) -> float | None:
    """Mean wall seconds per trial from metrics sidecars under ``root``.

    Workers run with ``--metrics`` leave per-participant snapshots at
    ``<spec-dir>/manifest/metrics/<worker>.json``; folding them
    recovers the fleet-wide ``runner.trial.wall_seconds`` histogram.
    Returns ``None`` when no sidecar (or no timing series) exists —
    the planner then falls back to the pure cost heuristic.
    """
    if root is None:
        return None
    try:
        snapshot, count = _metrics_snapshot.fold_sidecars([root])
    except (OSError, ValueError):
        return None
    if not count:
        return None
    total = 0.0
    trials = 0
    for series in snapshot.get("series", ()):
        if (
            series.get("name") == _TRIAL_SECONDS_SERIES
            and series.get("kind") == "histogram"
        ):
            total += float(series.get("sum", 0.0))
            trials += int(series.get("count", 0))
    if trials <= 0:
        return None
    return total / trials


def plan_chunk_size(
    spec: ExperimentSpec,
    root: str | os.PathLike | None = None,
    target_seconds: float = _AUTO_CHUNK_TARGET_SECONDS,
) -> int:
    """Size manifest chunks from a per-trial cost estimate.

    Heuristic path: chunks aim for ``_AUTO_CHUNK_TARGET_COST`` units
    of :func:`estimate_trial_cost`, so cheap small-graph grids get big
    chunks (low claim overhead) and expensive grids get small ones
    (steal-responsive).  When metrics sidecars under ``root`` carry
    measured trial times, the measured mean refines the estimate:
    chunks aim for ``target_seconds`` of wall time instead.  Either
    way the result is clamped to ``[1, _AUTO_CHUNK_MAX]`` and to at
    most ``total / _AUTO_CHUNK_MIN_CHUNKS`` so a fleet always has
    enough chunks to redistribute after a preemption.
    """
    trials = spec.trials()
    if not trials:
        return _DEFAULT_CHUNK_SIZE
    mean_cost = sum(estimate_trial_cost(t) for t in trials) / len(trials)
    seconds = _measured_trial_seconds(root)
    if seconds is not None and seconds > 0:
        size = int(target_seconds / seconds)
    else:
        size = int(_AUTO_CHUNK_TARGET_COST / mean_cost)
    size = min(size, max(1, len(trials) // _AUTO_CHUNK_MIN_CHUNKS))
    return max(1, min(size, _AUTO_CHUNK_MAX))


def ensure_manifest(
    root: str | os.PathLike,
    spec: ExperimentSpec,
    chunk_size: int | None = _DEFAULT_CHUNK_SIZE,
) -> tuple[pathlib.Path, dict]:
    """Create (or attach to) the spec's manifest; return ``(dir, payload)``.

    Exactly one creator wins: racing workers arbitrate through an
    ``O_CREAT | O_EXCL`` lock file (claim-style), so even workers
    started with *different* ``chunk_size`` arguments end up sharing
    one chunking — ``chunk_size`` only applies for the worker that
    actually creates the manifest; everyone else adopts what is on
    disk.  ``chunk_size=None`` sizes chunks from the spec's cost
    estimate (:func:`plan_chunk_size`), refined by any metrics
    sidecars already under ``root``.  A manifest whose spec hash does
    not match raises :class:`ManifestError` (the directory was moved
    or the package version changed under it).
    """
    if chunk_size is None:
        chunk_size = plan_chunk_size(spec, root)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    spec_hash = spec.spec_hash()
    mdir = manifest_dir(root, spec_hash)
    path = mdir / "manifest.json"
    if not path.exists():
        (mdir / "claims").mkdir(parents=True, exist_ok=True)
        (mdir / "results").mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                mdir / "manifest.lock",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            # Another worker is writing the manifest right now; wait
            # for its atomic replace to land.
            deadline = time.monotonic() + 30.0
            while not path.exists():
                if time.monotonic() > deadline:
                    raise ManifestError(
                        f"{mdir / 'manifest.lock'} exists but "
                        "manifest.json never appeared; its creator "
                        "likely crashed — delete the lock to retry"
                    )
                time.sleep(0.05)
        else:
            os.close(fd)
            keys = [t.key for t in spec.trials()]
            chunks = [
                keys[start:start + chunk_size]
                for start in range(0, len(keys), chunk_size)
            ]
            _write_atomic(path, {
                "version": MANIFEST_VERSION,
                "spec_hash": spec_hash,
                "spec": spec.to_dict(),
                "chunk_size": chunk_size,
                "chunks": chunks,
                "total": len(keys),
            })
    payload = json.loads(path.read_text())
    if payload.get("version") != MANIFEST_VERSION:
        raise ManifestError(
            f"manifest {path} has version {payload.get('version')!r}, "
            f"expected {MANIFEST_VERSION}"
        )
    if payload.get("spec_hash") != spec_hash:
        raise ManifestError(
            f"manifest {path} belongs to spec "
            f"{payload.get('spec_hash')!r}, not {spec_hash!r}"
        )
    return mdir, payload


def _claim_token(worker_id: str, generation: int) -> str:
    """Identity of one claim *generation* (embedded in its results)."""
    return f"{worker_id}#{generation}"


def _claim_path(mdir: pathlib.Path, chunk_id: int) -> pathlib.Path:
    return mdir / "claims" / f"{_chunk_name(chunk_id)}.claim"


def claim_chunk(
    mdir: pathlib.Path, chunk_id: int, worker_id: str
) -> str | None:
    """Atomically claim one chunk.

    Returns the new claim's token (truthy), or ``None`` if someone
    else holds the chunk — the filesystem's ``O_CREAT | O_EXCL``
    arbitrates, no lock server.
    """
    path = _claim_path(mdir, chunk_id)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None
    token = _claim_token(worker_id, 0)
    with os.fdopen(fd, "w") as handle:
        json.dump({
            "worker": worker_id,
            "pid": os.getpid(),
            "generation": 0,
            "token": token,
        }, handle)
    return token


def read_claim(mdir: pathlib.Path, chunk_id: int) -> dict | None:
    """The chunk's claim payload plus its file mtime, or ``None``.

    ``None`` means *no claim file*.  An unreadable or mid-write claim
    (``claim_chunk`` fills the file after the exclusive create) still
    returns a dict — generation 0, token ``None`` — so takeover logic
    treats it as a live first-generation claim rather than ignoring
    it.
    """
    path = _claim_path(mdir, chunk_id)
    try:
        stat = path.stat()
    except OSError:
        return None
    try:
        parsed = json.loads(path.read_text())
    except (OSError, ValueError):
        parsed = None
    if not isinstance(parsed, dict):
        parsed = {}
    return {
        "worker": parsed.get("worker", "?"),
        "pid": parsed.get("pid"),
        "generation": int(parsed.get("generation", 0) or 0),
        "token": parsed.get("token"),
        "mtime": stat.st_mtime,
    }


def claim_age(claim: dict, now: float | None = None) -> tuple[float, bool]:
    """``(age_seconds, skewed)`` of a claim read by :func:`read_claim`.

    The clamp mirrors :func:`detailed_status`: a claim stamped by a
    clock running ahead of ours has a negative raw age; its true age
    is unknowable but >= 0, so it reports as ``0.0`` and is flagged
    ``skewed`` — never as evidence of staleness.
    """
    if now is None:
        now = time.time()
    raw_age = now - claim["mtime"]
    return max(0.0, raw_age), raw_age < 0


def steal_claim(
    mdir: pathlib.Path,
    chunk_id: int,
    worker_id: str,
    ttl: float,
    now: float | None = None,
) -> str | None:
    """Take over a stale claim; returns the new token, or ``None``.

    A claim is stale when its clamped age exceeds ``ttl`` — a skewed
    claim (negative raw age: the claimant's clock runs ahead of ours)
    clamps to age 0 and therefore can never be stolen, so a
    slow-clocked observer cannot steal a live worker's chunk.  The
    takeover atomically replaces the claim file with a bumped
    generation and a fresh token; the dethroned worker's late result
    write then fails token validation (:func:`read_chunk_result`) and
    is discarded rather than double-merged.
    """
    if ttl < 0:
        raise ValueError("claim TTL must be >= 0")
    claim = read_claim(mdir, chunk_id)
    if claim is None:
        return None  # nothing to steal: claim it the ordinary way
    age_s, skewed = claim_age(claim, now)
    if skewed or age_s <= ttl:
        return None
    generation = claim["generation"] + 1
    token = _claim_token(worker_id, generation)
    _write_atomic(_claim_path(mdir, chunk_id), {
        "worker": worker_id,
        "pid": os.getpid(),
        "generation": generation,
        "token": token,
        "stolen_from": claim["worker"],
    })
    return token


def claim_next(
    mdir: pathlib.Path,
    n_chunks: int,
    worker_id: str,
    steal_ttl: float | None = None,
    now: float | None = None,
) -> tuple[int, str, bool] | None:
    """Claim the lowest available chunk: ``(chunk_id, token, stolen)``.

    Unclaimed chunks are taken first; with ``steal_ttl`` set, a second
    pass takes over claims older than the TTL (see
    :func:`steal_claim`).  ``None`` when nothing is claimable — which,
    for a stealing worker, does *not* mean the sweep is finished:
    in-flight foreign claims may still fail and age past the TTL (the
    worker CLI polls for exactly that).
    """
    for chunk_id in range(n_chunks):
        if read_chunk_result(mdir, chunk_id) is not None:
            continue
        if _claim_path(mdir, chunk_id).exists():
            continue
        token = claim_chunk(mdir, chunk_id, worker_id)
        if token:
            return chunk_id, token, False
    if steal_ttl is not None:
        for chunk_id in range(n_chunks):
            if read_chunk_result(mdir, chunk_id) is not None:
                continue
            token = steal_claim(mdir, chunk_id, worker_id, steal_ttl, now)
            if token:
                return chunk_id, token, True
    return None


def chunk_result_path(mdir: pathlib.Path, chunk_id: int) -> pathlib.Path:
    return mdir / "results" / f"{_chunk_name(chunk_id)}.json"


def write_chunk_result(
    mdir: pathlib.Path,
    chunk_id: int,
    spec_hash: str,
    records: list[dict],
    token: str | None = None,
) -> None:
    """Persist one executed chunk's records (atomic, deterministic).

    ``token`` is the claim token the chunk was executed under; results
    whose token no longer matches the live claim were written by a
    worker whose claim was stolen and are discarded on read.
    """
    payload = {
        "version": MANIFEST_VERSION,
        "spec_hash": spec_hash,
        "chunk": chunk_id,
        "records": records,
    }
    if token is not None:
        payload["token"] = token
    _write_atomic(chunk_result_path(mdir, chunk_id), payload)


def read_chunk_result(
    mdir: pathlib.Path, chunk_id: int
) -> list[dict] | None:
    """The chunk's records, or ``None`` while it is missing/in-flight.

    A result carrying a claim token is only valid while that token
    still matches the chunk's live claim: a mismatch means the claim
    was stolen after (or while) the result was written — the writer
    was presumed dead — and the stealer's own result supersedes it.
    Tokenless results (engine-internal execution, pre-takeover
    manifests) are always valid, as are results whose claim file is
    gone (manual recovery deletes claims, never results).
    """
    try:
        payload = json.loads(chunk_result_path(mdir, chunk_id).read_text())
    except (OSError, ValueError):
        return None
    if payload.get("version") != MANIFEST_VERSION:
        return None
    records = payload.get("records")
    if not isinstance(records, list):
        return None
    token = payload.get("token")
    if token is not None:
        claim = read_claim(mdir, chunk_id)
        if (
            claim is not None
            and claim["token"] is not None
            and claim["token"] != token
        ):
            return None  # a dethroned worker's late write
    return records


def reset_failed_chunks(mdir: pathlib.Path, payload: dict) -> int:
    """Make chunks whose stored result captured a failure claimable again.

    The engine deliberately never caches ``ok=False`` records — a
    captured failure may be transient, so it re-runs on the next
    invocation.  Chunk results must honor the same contract: a result
    file containing any failed record is deleted (together with its
    claim) when a new run attaches, so those trials re-execute instead
    of replaying the stale failure forever.  Returns the number of
    chunks reset.

    Only safe while no worker is mid-flight on the chunk, which holds
    at attach time: a chunk with a result file is finished, and the
    worst case of two attaching workers racing here is a benign
    double-execution of a deterministic chunk.
    """
    reset = 0
    for chunk_id in range(len(payload["chunks"])):
        records = read_chunk_result(mdir, chunk_id)
        if records is None:
            continue
        if all(record.get("ok") for record in records):
            continue
        chunk_result_path(mdir, chunk_id).unlink(missing_ok=True)
        claim = mdir / "claims" / f"{_chunk_name(chunk_id)}.claim"
        claim.unlink(missing_ok=True)
        reset += 1
    return reset


def manifest_status(mdir: pathlib.Path, payload: dict) -> dict:
    """Progress counters: total/claimed/done chunk counts."""
    n_chunks = len(payload["chunks"])
    done = sum(
        1 for i in range(n_chunks) if chunk_result_path(mdir, i).exists()
    )
    claimed = sum(
        1 for i in range(n_chunks)
        if (mdir / "claims" / f"{_chunk_name(i)}.claim").exists()
    )
    return {"chunks": n_chunks, "claimed": claimed, "done": done}


def detailed_status(
    mdir: pathlib.Path, payload: dict, now: float | None = None
) -> dict:
    """Per-chunk progress plus the ages of in-flight claims.

    A chunk is *done* when its result landed, *in flight* when it is
    claimed but has no result yet, and *pending* otherwise.  In-flight
    claims report their age (seconds since the claim file's mtime) and
    the claiming worker — an in-flight claim much older than a chunk's
    expected runtime is a crashed worker whose claim file should be
    deleted (``python -m repro manifest status`` prints exactly this).

    On multi-host sweeps over a shared filesystem the claim mtime is
    stamped by the *worker's* clock; a worker running ahead of the
    observer yields a negative raw age.  Such ages are clamped to zero
    and flagged ``skewed`` instead of being reported as-is — a claim
    "-37s old" would poison the oldest-claim stale diagnostics, and
    takeover (:func:`steal_claim`) applies the identical clamp so a
    skewed claim can never be stolen as "stale".
    """
    if now is None:
        now = time.time()
    n_chunks = len(payload["chunks"])
    done = 0
    pending = 0
    in_flight: list[dict] = []
    for chunk_id in range(n_chunks):
        if chunk_result_path(mdir, chunk_id).exists():
            done += 1
            continue
        claim = read_claim(mdir, chunk_id)
        if claim is None:
            pending += 1
            continue
        age_s, skewed = claim_age(claim, now)
        in_flight.append({
            "chunk": chunk_id,
            "worker": claim["worker"],
            "generation": claim["generation"],
            "age_s": age_s,
            "skewed": skewed,
        })
    return {
        "chunks": n_chunks,
        "done": done,
        "in_flight": in_flight,
        "pending": pending,
        "total_trials": payload.get("total"),
    }


def scan_manifests(
    root: str | os.PathLike,
) -> list[tuple[str, pathlib.Path, dict]]:
    """Every readable manifest under a store/manifest root.

    Returns ``(spec_hash, manifest_dir, payload)`` triples in
    spec-hash order; unreadable or version-mismatched manifests are
    skipped (exactly as corrupt shards are on load).
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    out = []
    for entry in sorted(root.iterdir()):
        path = entry / "manifest" / "manifest.json"
        if not path.is_file():
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if payload.get("version") != MANIFEST_VERSION:
            continue
        out.append((entry.name, path.parent, payload))
    return out


def write_metrics_sidecar(
    mdir: pathlib.Path, worker_id: str, snapshot: dict
) -> pathlib.Path:
    """Persist one participant's metrics snapshot next to the manifest.

    Sidecars live under ``<manifest>/metrics/<worker_id>.json`` — the
    layout :func:`repro.metrics.snapshot.find_sidecars` globs for — so
    ``python -m repro merge --metrics`` can fold every participant of
    a multi-host sweep into one fleet-wide snapshot.
    """
    sidecar_dir = mdir / "metrics"
    sidecar_dir.mkdir(parents=True, exist_ok=True)
    path = sidecar_dir / f"{worker_id}.json"
    _metrics_snapshot.write_snapshot(path, snapshot)
    return path


def execute_chunk(
    spec_hash: str,
    keys: list[str],
    by_key: dict,
    provider: UXSProvider,
) -> list[dict]:
    """Execute one chunk's trials in manifest order."""
    records = []
    for key in keys:
        try:
            trial = by_key[key]
        except KeyError:
            raise ManifestError(
                f"manifest for spec {spec_hash} names trial {key!r} "
                "which the spec does not generate; the manifest is "
                "stale — delete it to rebuild"
            ) from None
        records.append(execute_trial(trial, provider=provider).record())
    return records


class ManifestBackend:
    """Claim chunks from the store's manifest; poll for the rest."""

    name = "manifest"

    def execute(self, ctx: BackendContext) -> Iterator[dict]:
        store = ctx.store
        if store is None or not hasattr(store, "root"):
            raise BackendError(
                "the manifest backend coordinates through a result "
                "store directory; pass store=<dir> (and leave caching "
                "enabled)"
            )
        spec = ctx.spec
        chunk_size = ctx.options.get("chunk_size", _DEFAULT_CHUNK_SIZE)
        if chunk_size in (None, "auto"):
            chunk_size = None  # plan from the spec's cost estimate
        else:
            chunk_size = int(chunk_size)
        worker_id = str(
            ctx.options.get("worker_id", f"engine-{os.getpid()}")
        )
        poll_interval = float(ctx.options.get("poll_interval", 0.2))
        timeout = float(ctx.options.get("timeout", 600.0))
        steal_ttl = ctx.options.get("steal_ttl")
        if steal_ttl is not None:
            steal_ttl = float(steal_ttl)
        mdir, payload = ensure_manifest(store.root, spec, chunk_size)
        reset_failed_chunks(mdir, payload)
        chunks: list[list[str]] = payload["chunks"]
        by_key = {t.key: t for t in spec.trials()}
        # The engine only wants records for what it considers pending;
        # chunks may also contain locally-cached trials (the manifest
        # covers the full grid so all hosts agree on chunk identity).
        pending_keys = {t.key for t in ctx.pending}
        provider = UXSProvider(**ctx.provider_args)
        seen: set[int] = set()

        emit = _event_stream.current()
        reg = _metrics_registry.current()
        while True:
            if reg is None:
                claimed = claim_next(
                    mdir, len(chunks), worker_id, steal_ttl=steal_ttl
                )
            else:
                with reg.timer("runner.manifest.claim_seconds"):
                    claimed = claim_next(
                        mdir, len(chunks), worker_id, steal_ttl=steal_ttl
                    )
            if claimed is None:
                break
            chunk_id, token, stolen = claimed
            if reg is not None:
                reg.counter("runner.manifest.chunks.claimed").value += 1
                if stolen:
                    reg.counter(
                        "runner.manifest.chunks.stolen"
                    ).value += 1
            if emit is not None:
                emit.emit(_EvBackendChunkClaimed(
                    chunk=chunk_id,
                    chunks=len(chunks),
                    worker=worker_id,
                    spec_hash=payload["spec_hash"],
                ))
            records = execute_chunk(
                payload["spec_hash"], chunks[chunk_id], by_key, provider
            )
            write_chunk_result(
                mdir, chunk_id, payload["spec_hash"], records, token=token
            )
            seen.add(chunk_id)
            for record in records:
                if record["key"] in pending_keys:
                    if reg is not None:
                        reg.counter(
                            "runner.backend.records", backend="manifest"
                        ).value += 1
                    yield record

        # Every remaining chunk is claimed by another worker: collect
        # its result as it lands (deterministic execution makes the
        # bytes identical to what this process would have produced).
        # With a steal TTL, a claim that ages past it while we wait is
        # taken over and executed here instead of timing the run out.
        deadline = time.monotonic() + timeout
        while len(seen) < len(chunks):
            progressed = False
            for chunk_id in range(len(chunks)):
                if chunk_id in seen:
                    continue
                records = read_chunk_result(mdir, chunk_id)
                if records is None:
                    continue
                seen.add(chunk_id)
                progressed = True
                if reg is not None:
                    reg.counter(
                        "runner.manifest.chunks.collected"
                    ).value += 1
                for record in records:
                    if record["key"] in pending_keys:
                        ctx.collected += 1
                        yield record
            if len(seen) == len(chunks):
                break
            if steal_ttl is not None:
                claimed = claim_next(
                    mdir, len(chunks), worker_id, steal_ttl=steal_ttl
                )
                if claimed is not None:
                    chunk_id, token, stolen = claimed
                    if reg is not None:
                        reg.counter(
                            "runner.manifest.chunks.claimed"
                        ).value += 1
                        if stolen:
                            reg.counter(
                                "runner.manifest.chunks.stolen"
                            ).value += 1
                    records = execute_chunk(
                        payload["spec_hash"], chunks[chunk_id], by_key,
                        provider,
                    )
                    write_chunk_result(
                        mdir, chunk_id, payload["spec_hash"], records,
                        token=token,
                    )
                    seen.add(chunk_id)
                    for record in records:
                        if record["key"] in pending_keys:
                            yield record
                    deadline = time.monotonic() + timeout
                    continue
            if progressed:
                deadline = time.monotonic() + timeout
            elif time.monotonic() > deadline:
                missing = sorted(set(range(len(chunks))) - seen)
                raise ManifestError(
                    f"timed out waiting for {len(missing)} chunk(s) "
                    f"claimed by other workers: {missing}; if a worker "
                    "crashed, re-run with a steal TTL (worker --steal) "
                    "or delete its stale claims/ file(s) under "
                    f"{mdir} and re-run"
                )
            time.sleep(poll_interval)

        if reg is not None:
            # One sidecar per participant; the merge CLI folds them
            # into a single fleet-wide snapshot.
            write_metrics_sidecar(mdir, worker_id, reg.snapshot())
