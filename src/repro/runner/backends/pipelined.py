"""The pipelined backend: graph-grouped batches, prefetched producer.

On scenario-matrix grids many trials share one graph — every
placement/wake/adversary combination of a ``(size, labels, seed)``
grid point runs on the *same* port labeling (the graph seed is derived
from the scenario-free key precisely so scenario comparisons never
conflate the adversary with graph variation).  The ``process`` backend
ships one trial per task, so each worker rebuilds that shared graph
once per trial; on graph-generation-heavy families (``random_regular``
rejection-samples entire pairings) the rebuild dominates wall-clock.

This backend pipelines instead:

* pending trials are grouped by graph identity ``(family, n,
  graph_seed)`` and cut into batches (``batch_size`` option, default
  8), each shipped as a single pool task;
* a producer thread prepares upcoming batch payloads into a bounded
  queue while the pool simulates — production overlaps execution
  instead of alternating with it;
* each worker builds a batch's graph once (:func:`repro.runner.worker
  .run_trial_batch`) and reuses it for every trial in the batch.

Records are byte-identical to the serial backend: graphs are pure
functions of the trial coordinates, and batching changes only *when*
work happens, never what it computes.  ``workers=1`` executes the same
batch plan in-process (no pool), which keeps the batching logic on the
tested serial path.
"""

from __future__ import annotations

import queue
import threading
import time as _time
from typing import Iterator

from ...explore.uxs import UXSProvider
from ...metrics import registry as _metrics_registry
from .. import worker as worker_mod
from ..spec import TrialSpec
from .base import BackendContext
from .process import pool_context

_DEFAULT_BATCH_SIZE = 8


def plan_batches(
    pending: list[TrialSpec], batch_size: int
) -> list[list[TrialSpec]]:
    """Group trials by graph identity, split into ``batch_size`` runs.

    Groups keep first-occurrence order (deterministic given the
    canonical grid order), so the batch plan — like everything else in
    the engine — is a pure function of the spec.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    groups: dict[tuple[str, int, int], list[TrialSpec]] = {}
    for trial in pending:
        key = (trial.family, trial.n, trial.graph_seed)
        groups.setdefault(key, []).append(trial)
    batches = []
    for group in groups.values():
        for start in range(0, len(group), batch_size):
            batches.append(group[start:start + batch_size])
    return batches


class PipelinedBackend:
    """Overlap batch production with pool simulation."""

    name = "pipelined"

    def execute(self, ctx: BackendContext) -> Iterator[dict]:
        batch_size = int(
            ctx.options.get("batch_size", _DEFAULT_BATCH_SIZE)
        )
        batches = plan_batches(ctx.pending, batch_size)
        if ctx.workers == 1:
            yield from self._execute_inline(ctx, batches)
        else:
            yield from self._execute_pool(ctx, batches)

    @staticmethod
    def _execute_inline(
        ctx: BackendContext, batches: list[list[TrialSpec]]
    ) -> Iterator[dict]:
        # Same batch plan, no pool: the graph of each batch is still
        # built exactly once, so the dedup win survives workers=1 —
        # and same-graph cohort-eligible trials run in lockstep.
        reg = _metrics_registry.current()
        provider = UXSProvider(**ctx.provider_args)
        for batch in batches:
            if reg is not None:
                reg.counter(
                    "runner.backend.batches", backend="pipelined"
                ).value += 1
                reg.histogram("runner.backend.batch_size").observe(
                    len(batch)
                )
            graph = worker_mod.shared_graph(batch[0])
            for result in worker_mod.execute_trial_batch(
                batch, provider=provider, graph=graph
            ):
                if reg is not None:
                    reg.counter(
                        "runner.backend.records", backend="pipelined"
                    ).value += 1
                yield result.record()

    @staticmethod
    def _execute_pool(
        ctx: BackendContext, batches: list[list[TrialSpec]]
    ) -> Iterator[dict]:
        # The producer serializes upcoming batches into a bounded
        # queue; the pool's task feeder drains it concurrently with
        # result consumption, so payload preparation overlaps
        # simulation instead of preceding it.
        reg = _metrics_registry.current()
        prefetch = int(ctx.options.get("prefetch", 2 * ctx.workers))
        feed: queue.Queue = queue.Queue(maxsize=max(1, prefetch))
        stop = threading.Event()
        _SENTINEL = None

        def put_guarded(item) -> bool:
            # Never block forever: if the consumer abandoned the
            # generator (an error mid-iteration, KeyboardInterrupt),
            # nothing drains the queue and a plain put() would strand
            # this thread — and its payloads — for the process's life.
            while not stop.is_set():
                try:
                    feed.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def put_timed(item) -> bool:
            # Time spent blocked on a full queue is backpressure: the
            # pool is saturated and prefetching is ahead of it.
            start = _time.perf_counter()
            ok = put_guarded(item)
            reg.histogram("runner.pipeline.queue_wait_seconds").observe(
                _time.perf_counter() - start
            )
            return ok

        put = put_guarded if reg is None else put_timed

        def produce() -> None:
            for batch in batches:
                if reg is not None:
                    reg.counter(
                        "runner.backend.batches", backend="pipelined"
                    ).value += 1
                    reg.histogram("runner.backend.batch_size").observe(
                        len(batch)
                    )
                if not put({"trials": [t.to_dict() for t in batch]}):
                    return
            put_guarded(_SENTINEL)

        def payloads() -> Iterator[dict]:
            while True:
                item = feed.get()
                if item is _SENTINEL:
                    return
                yield item

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        try:
            mp = pool_context()
            with mp.Pool(
                processes=ctx.workers,
                initializer=worker_mod.init_worker,
                initargs=(ctx.provider_args, ctx.prewarm, reg is not None),
            ) as pool:
                for records in pool.imap_unordered(
                    worker_mod.run_trial_batch, payloads(), chunksize=1
                ):
                    if reg is not None and isinstance(records, dict):
                        # Cumulative worker snapshot: replace-per-worker
                        # fold (see Registry.absorb), then unwrap.
                        envelope = records["__metrics__"]
                        reg.absorb(
                            envelope["worker"], envelope["snapshot"]
                        )
                        records = records["records"]
                        reg.counter(
                            "runner.backend.records", backend="pipelined"
                        ).value += len(records)
                    yield from records
        finally:
            stop.set()
            producer.join()
