"""The execution-backend protocol and its shared context object.

An :class:`ExecutionBackend` is the layer between spec resolution and
trial execution: the engine expands the grid, subtracts the cache, and
hands the *pending* trials to a backend, which executes them however
it likes — in-process, over a pool, pipelined, or coordinated across
hosts — and yields one record dict per pending trial, in any order.

The contract every backend must honor:

* **byte-identical records** — for the same spec, every backend
  produces exactly the records the serial reference path produces
  (records carry no timing, ordering or process information);
* **captured failures** — an infeasible trial yields an ``ok=False``
  record, never an exception (``execute_trial`` guarantees this);
* **yield-as-you-go** — records are yielded as trials complete, so
  the engine can report progress and persist incrementally.

Backends are stateless: one instance serves any number of runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spec import ExperimentSpec, TrialSpec
    from ..store import ResultStore


class BackendError(ValueError):
    """The backend cannot run this spec (bad name, missing store, ...)."""


class BackendContext:
    """Everything a backend needs to execute one run's pending trials.

    Plain data, assembled by :func:`repro.runner.engine.run_experiment`
    after grid expansion and cache subtraction.  ``store`` is the
    engine's :class:`~repro.runner.store.ResultStore` (``None`` when
    caching is disabled) — only coordination backends like ``manifest``
    need it; persistence of completed records stays the engine's job.
    """

    __slots__ = (
        "spec", "pending", "workers", "provider_args", "prewarm",
        "store", "options", "collected",
    )

    def __init__(
        self,
        spec: "ExperimentSpec",
        pending: "list[TrialSpec]",
        workers: int = 1,
        provider_args: dict | None = None,
        prewarm: tuple[int, ...] = (),
        store: "ResultStore | None" = None,
        options: dict | None = None,
    ) -> None:
        self.spec = spec
        self.pending = pending
        self.workers = workers
        self.provider_args = dict(provider_args or {})
        self.prewarm = tuple(prewarm)
        self.store = store
        self.options = dict(options or {})
        # Incremented by coordination backends for every pending
        # record they *collected* from another worker rather than
        # executed themselves; the engine subtracts it so
        # ``ExperimentResult.executed`` keeps meaning "simulated by
        # this invocation".
        self.collected = 0


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend implements."""

    name: str

    def execute(self, ctx: BackendContext) -> Iterator[dict]:
        """Yield one record dict per trial in ``ctx.pending``."""
        ...  # pragma: no cover - protocol stub
