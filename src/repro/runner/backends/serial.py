"""The serial reference backend: one process, canonical order.

This is the byte-identical fallback every other backend is measured
against: trials execute in canonical grid order, in-process, sharing a
single :class:`~repro.explore.uxs.UXSProvider` so each exploration
sequence is derived at most once per run.  It is the only backend that
accepts specs with a custom ``graph_factory`` (factories are not
generally picklable).
"""

from __future__ import annotations

from typing import Iterator

from ...explore.uxs import UXSProvider
from ...metrics import registry as _metrics_registry
from ..trial import execute_trial
from .base import BackendContext


class SerialBackend:
    """Execute pending trials in-process, in canonical order."""

    name = "serial"

    def execute(self, ctx: BackendContext) -> Iterator[dict]:
        reg = _metrics_registry.current()
        provider = UXSProvider(**ctx.provider_args)
        for trial in ctx.pending:
            record = execute_trial(trial, provider=provider).record()
            if reg is not None:
                reg.counter(
                    "runner.backend.records", backend="serial"
                ).value += 1
            yield record
