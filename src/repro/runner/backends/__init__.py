"""Pluggable execution backends for the experiment engine.

The engine (:func:`repro.runner.engine.run_experiment`) separates
*what* to run (the spec's pending trials) from *how* to run it (an
:class:`~repro.runner.backends.base.ExecutionBackend`).  Backends are
named, registered here like the adversary/placement strategies, and
selected per run — via the ``backend=`` argument, the spec's
``backend`` attribute, or the ``--backend`` CLI flag:

``serial``
    One process, canonical order; the byte-identical reference path
    every other backend is diffed against.
``process``
    A ``multiprocessing`` pool, one trial per task (the historical
    ``workers > 1`` path).
``pipelined``
    Graph-grouped batches fed to the pool by a prefetching producer;
    each shared graph is built once per batch instead of once per
    trial — measurable wall-clock wins on graph-generation-heavy
    grids.
``manifest``
    Multi-host: workers claim trial chunks from a lock-free file
    manifest under the spec-hash directory (see ``python -m repro
    worker`` / ``merge``).

All four produce byte-identical records for the same spec — execution
strategy is never part of a spec's identity, which is why
``ExperimentSpec.backend`` is excluded from the spec hash.
"""

from __future__ import annotations

from .base import BackendContext, BackendError, ExecutionBackend
from .manifest import ManifestBackend, ManifestError
from .pipelined import PipelinedBackend
from .process import ProcessBackend
from .serial import SerialBackend

BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register a backend instance under its ``name``."""
    if not getattr(backend, "name", None):
        raise BackendError("a backend must carry a non-empty name")
    BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend by name; unknown names list what exists."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown execution backend {name!r}; "
            f"known: {sorted(BACKENDS)}"
        ) from None


register_backend(SerialBackend())
register_backend(ProcessBackend())
register_backend(PipelinedBackend())
register_backend(ManifestBackend())

__all__ = [
    "BACKENDS",
    "BackendContext",
    "BackendError",
    "ExecutionBackend",
    "ManifestBackend",
    "ManifestError",
    "PipelinedBackend",
    "ProcessBackend",
    "SerialBackend",
    "get_backend",
    "register_backend",
]
