"""Single-trial execution: resolve, simulate, record.

Maps a :class:`~repro.runner.spec.TrialSpec` onto the existing
simulation front-ends (:mod:`repro.core.runs`, :mod:`repro.baselines`)
and flattens the validated report into a JSON-safe *record* dict.

Records are the engine's unit of truth: they contain only
deterministic simulation quantities (rounds, moves, events, leader,
...) — never wall-clock times or process ids — so a parallel run is
byte-identical to a serial one.  Failures are captured as records with
``ok=False`` and the exception text, not raised, so one infeasible
grid point cannot crash a thousand-trial sweep.
"""

from __future__ import annotations

from typing import Callable

from ..baselines import run_random_walk_gather, run_talking_gather
from ..core.runs import run_gather_known, run_gossip_known
from ..explore.uxs import UXSProvider
from ..graphs import generators
from ..graphs.port_graph import PortGraph
from .spec import TrialSpec


class TrialError(RuntimeError):
    """Raised only when a trial record itself cannot be produced."""


# ----------------------------------------------------------------------
# Graph-family registry: name -> callable(n, seed) -> PortGraph.
# ----------------------------------------------------------------------

def _edge_family(n: int, seed: int) -> PortGraph:
    if n != 2:
        raise ValueError("the 'edge' family only exists at size 2")
    return generators.single_edge()


FAMILIES: dict[str, Callable[[int, int], PortGraph]] = {
    "edge": _edge_family,
    "ring": lambda n, seed: generators.ring(n, seed=seed),
    "oriented_ring": lambda n, seed: generators.oriented_ring(n),
    "path": lambda n, seed: generators.path_graph(n, seed=seed),
    "star": lambda n, seed: generators.star_graph(n, seed=seed),
    "clique": lambda n, seed: generators.complete_graph(n, seed=seed),
    "tree": lambda n, seed: generators.random_tree(n, seed=seed),
    "random": lambda n, seed: generators.random_connected_graph(n, seed=seed),
    "torus": lambda n, seed: generators.torus_for_size(n, seed=seed),
    "random_regular": lambda n, seed: generators.random_regular(n, seed=seed),
}


class TrialResult:
    """Outcome of one trial, successful or failed.

    ``record()`` is the canonical JSON-safe form stored on disk and
    compared across serial/parallel runs.
    """

    __slots__ = ("trial", "ok", "error", "metrics")

    def __init__(
        self,
        trial: TrialSpec,
        ok: bool,
        metrics: dict | None = None,
        error: str | None = None,
    ) -> None:
        self.trial = trial
        self.ok = ok
        self.metrics = metrics or {}
        self.error = error

    def record(self) -> dict:
        rec = self.trial.to_dict()
        rec["ok"] = self.ok
        rec["error"] = self.error
        rec["metrics"] = self.metrics
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "TrialResult":
        return cls(
            TrialSpec.from_dict(rec),
            ok=rec["ok"],
            metrics=rec.get("metrics") or {},
            error=rec.get("error"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "ok" if self.ok else f"FAILED ({self.error})"
        return f"TrialResult({self.trial.key}: {status})"


def _build_graph(trial: TrialSpec) -> PortGraph:
    if trial.graph_factory is not None:
        return trial.graph_factory(trial.n)
    try:
        family = FAMILIES[trial.family]
    except KeyError:
        raise TrialError(
            f"unknown graph family {trial.family!r}; "
            f"known: {sorted(FAMILIES)}"
        ) from None
    return family(trial.n, trial.graph_seed)


def _placement(trial: TrialSpec, graph: PortGraph) -> list[int] | None:
    if trial.placement == "default":
        return None
    k = len(trial.labels)
    if k == 2:
        return [0, graph.n - 1]
    # Evenly spaced; distinct whenever k <= n.
    return [i * graph.n // k for i in range(k)]


def _run_gather_known(trial: TrialSpec, graph: PortGraph,
                      provider: UXSProvider | None) -> dict:
    report = run_gather_known(
        graph,
        list(trial.labels),
        trial.n_bound,
        start_nodes=_placement(trial, graph),
        provider=provider,
    )
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "phases": report.phases,
        "leader": report.leader,
        "node": report.node,
        "edges": graph.num_edges(),
    }


def _run_gossip_known(trial: TrialSpec, graph: PortGraph,
                      provider: UXSProvider | None) -> dict:
    if trial.messages is None:
        raise ValueError("gossip trials need a message set")
    report = run_gossip_known(
        graph,
        list(trial.labels),
        list(trial.messages),
        trial.n_bound,
        start_nodes=_placement(trial, graph),
        provider=provider,
    )
    return {
        "rounds": report.round,
        "events": report.events,
        "leader": report.leader,
        "messages": dict(report.messages),
        "edges": graph.num_edges(),
    }


def _run_talking(trial: TrialSpec, graph: PortGraph,
                 provider: UXSProvider | None) -> dict:
    report = run_talking_gather(
        graph,
        list(trial.labels),
        trial.n_bound,
        start_nodes=_placement(trial, graph),
        provider=provider,
    )
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "leader": report.leader,
        "node": report.node,
        "edges": graph.num_edges(),
    }


def _run_random_walk(trial: TrialSpec, graph: PortGraph,
                     provider: UXSProvider | None) -> dict:
    # The walk seed defaults to the trial's derived seed (replicates
    # explore different walks) but can be pinned via algorithm_params
    # to reproduce historical fixed-seed runs.
    walk_seed = trial.algorithm_params.get("seed", trial.graph_seed)
    report = run_random_walk_gather(
        graph,
        list(trial.labels),
        trial.n_bound,
        start_nodes=_placement(trial, graph),
        provider=provider,
        seed=walk_seed,
    )
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "leader": report.leader,
        "node": report.node,
        "edges": graph.num_edges(),
    }


ALGORITHMS: dict[str, Callable] = {
    "gather_known": _run_gather_known,
    "gossip_known": _run_gossip_known,
    "talking": _run_talking,
    "random_walk": _run_random_walk,
}


def execute_trial(
    trial: TrialSpec, provider: UXSProvider | None = None
) -> TrialResult:
    """Run one trial, capturing any failure in the result record.

    ``provider`` is the process-local :class:`UXSProvider`; passing one
    lets a worker reuse its sequence cache across every trial it
    executes (sequences are pure functions of ``(N, seed, factor)``, so
    all workers agree without any cross-process traffic).
    """
    try:
        algorithm = ALGORITHMS[trial.algorithm]
    except KeyError:
        return TrialResult(
            trial,
            ok=False,
            error=(
                f"unknown algorithm {trial.algorithm!r}; "
                f"known: {sorted(ALGORITHMS)}"
            ),
        )
    try:
        graph = _build_graph(trial)
        metrics = algorithm(trial, graph, provider)
    except Exception as exc:  # captured, not raised: sweeps must survive
        return TrialResult(
            trial, ok=False, error=f"{type(exc).__name__}: {exc}"
        )
    return TrialResult(trial, ok=True, metrics=metrics)
