"""Single-trial execution: resolve, simulate, record.

Maps a :class:`~repro.runner.spec.TrialSpec` onto the existing
simulation front-ends (:mod:`repro.core.runs`, :mod:`repro.baselines`)
and flattens the validated report into a JSON-safe *record* dict.

A trial's *scenario* — start nodes and wake rounds — is resolved here
from its declarative ``placement``/``wake_schedule`` strategy names
and a seed derived from the trial key, so every worker process
resolves the identical scenario with no coordination.  The
``adversary`` strategy decides how many seed-derived scenario draws
the adversary may evaluate (``worst_of:<k>`` keeps the slowest,
``best_of:<k>`` the fastest).

Records are the engine's unit of truth: they contain only
deterministic simulation quantities (rounds, moves, events, leader,
...) — never wall-clock times or process ids — so a parallel run is
byte-identical to a serial one.  Failures are captured as records with
``ok=False`` and the exception text, not raised, so one infeasible
grid point cannot crash a thousand-trial sweep.
"""

from __future__ import annotations

import random
from typing import Callable

from ..baselines import run_random_walk_gather, run_talking_gather
from ..core.parameters import KnownBoundParameters
from ..core.gather_known import smallest_label_length
from ..core.runs import (
    prepare_gather_known,
    prepare_gather_unknown,
    run_gather_known,
    run_gather_unknown,
    run_gossip_known,
    run_gossip_unknown,
)
from ..explore.uxs import UXSProvider
from ..graphs import generators
from ..graphs.port_graph import PortGraph
from ..events import stream as _event_stream
from ..events.types import TrialEnd as _EvTrialEnd, TrialStart as _EvTrialStart
from ..metrics import registry as _metrics_registry
from ..sim.adversary import parse_wake_strategy, schedule_from_strategy
from ..sim.faults import (
    ensure_round0_survivor,
    format_crash_faults,
    make_dynamics,
    parse_fault_strategy,
    resolve_fault_schedule,
)
from .spec import PLACEMENTS as spec_placement_names
from .spec import TrialSpec, derive_seed, parse_adversary, parse_placement


class TrialError(RuntimeError):
    """Raised only when a trial record itself cannot be produced."""


# ----------------------------------------------------------------------
# Graph-family registry: name -> callable(n, seed) -> PortGraph.
# ----------------------------------------------------------------------

def _edge_family(n: int, seed: int) -> PortGraph:
    if n != 2:
        raise ValueError("the 'edge' family only exists at size 2")
    return generators.single_edge()


FAMILIES: dict[str, Callable[[int, int], PortGraph]] = {
    "edge": _edge_family,
    "ring": lambda n, seed: generators.ring(n, seed=seed),
    "oriented_ring": lambda n, seed: generators.oriented_ring(n),
    "path": lambda n, seed: generators.path_graph(n, seed=seed),
    "star": lambda n, seed: generators.star_graph(n, seed=seed),
    "clique": lambda n, seed: generators.complete_graph(n, seed=seed),
    "tree": lambda n, seed: generators.random_tree(n, seed=seed),
    "random": lambda n, seed: generators.random_connected_graph(n, seed=seed),
    "torus": lambda n, seed: generators.torus_for_size(n, seed=seed),
    "random_regular": lambda n, seed: generators.random_regular(n, seed=seed),
}


class TrialResult:
    """Outcome of one trial, successful or failed.

    ``record()`` is the canonical JSON-safe form stored on disk and
    compared across serial/parallel runs.
    """

    __slots__ = ("trial", "ok", "error", "metrics")

    def __init__(
        self,
        trial: TrialSpec,
        ok: bool,
        metrics: dict | None = None,
        error: str | None = None,
    ) -> None:
        self.trial = trial
        self.ok = ok
        self.metrics = metrics or {}
        self.error = error

    def record(self) -> dict:
        rec = self.trial.to_dict()
        rec["ok"] = self.ok
        rec["error"] = self.error
        rec["metrics"] = self.metrics
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "TrialResult":
        return cls(
            TrialSpec.from_dict(rec),
            ok=rec["ok"],
            metrics=rec.get("metrics") or {},
            error=rec.get("error"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "ok" if self.ok else f"FAILED ({self.error})"
        return f"TrialResult({self.trial.key}: {status})"


def _build_graph(trial: TrialSpec) -> PortGraph:
    if trial.graph_factory is not None:
        return trial.graph_factory(trial.n)
    try:
        family = FAMILIES[trial.family]
    except KeyError:
        raise TrialError(
            f"unknown graph family {trial.family!r}; "
            f"known: {sorted(FAMILIES)}"
        ) from None
    return family(trial.n, trial.graph_seed)


# ----------------------------------------------------------------------
# Placement-strategy registry: name -> callable(graph, k, seed).
# ``None`` means "use the run wrapper's default" (nodes 0..k-1).
# ----------------------------------------------------------------------

def _default_placement(graph: PortGraph, k: int, seed: int) -> None:
    return None


def _spread_placement(graph: PortGraph, k: int, seed: int) -> list[int]:
    if k == 2:
        return [0, graph.n - 1]
    # Evenly spaced; distinct whenever k <= n.
    return [i * graph.n // k for i in range(k)]


def _random_placement(graph: PortGraph, k: int, seed: int) -> list[int]:
    """Distinct start nodes sampled from the derived scenario seed."""
    if k > graph.n:
        raise ValueError("more agents than nodes")
    return random.Random(seed).sample(range(graph.n), k)


def _eccentric_placement(graph: PortGraph, k: int, seed: int) -> list[int]:
    """Farthest-point sampling: greedily maximize pairwise distance.

    The first agent starts at the node most distant from node 0; each
    subsequent agent at the node maximizing the minimum BFS distance
    to the agents placed so far (ties break toward the smallest node
    id, keeping the placement deterministic and seed-free).
    """
    if k > graph.n:
        raise ValueError("more agents than nodes")
    dist = graph.bfs_distances(0)
    chosen = [max(range(graph.n), key=lambda v: (dist[v], -v))]
    nearest = graph.bfs_distances(chosen[0])
    while len(chosen) < k:
        nxt = max(range(graph.n), key=lambda v: (nearest[v], -v))
        chosen.append(nxt)
        nearest = [
            min(a, b) for a, b in zip(nearest, graph.bfs_distances(nxt))
        ]
    return chosen


PLACEMENT_RESOLVERS: dict[
    str, Callable[[PortGraph, int, int], list[int] | None]
] = {
    "default": _default_placement,
    "spread": _spread_placement,
    "random": _random_placement,
    "eccentric": _eccentric_placement,
}

# The spec layer validates placement names against spec.PLACEMENTS
# (it cannot import this module — trial imports spec); fail at import
# if the two ever drift, instead of at the first sweep.
if set(PLACEMENT_RESOLVERS) != set(spec_placement_names):
    raise AssertionError(
        "placement registries out of sync: "
        f"{sorted(PLACEMENT_RESOLVERS)} vs {sorted(spec_placement_names)}"
    )


def _scenario_seed(trial: TrialSpec, component: str, draw: int) -> int:
    """Sub-seed for one scenario component of one adversary draw.

    Derived from the trial key *minus* its ``adv=`` segment, so the
    ``fixed`` adversary and draw 0 of ``worst_of:k``/``best_of:k`` on
    the same grid point resolve the identical scenario — which is what
    makes ``best_of <= fixed <= worst_of`` a guarantee rather than a
    statistical accident.  Placement and wake use distinct components
    so their random strategies draw independent streams.
    """
    base_key = "/".join(
        part for part in trial.key.split("/")
        if not part.startswith("adv=")
    )
    return derive_seed(trial.seed, f"{base_key}|{component}|{draw}")


def resolve_scenario(
    trial: TrialSpec, graph: PortGraph, draw: int = 0
) -> tuple[list[int] | None, list[int | None]]:
    """Resolve a trial's ``(start_nodes, wake_rounds)`` scenario.

    Pure in ``(trial, graph, draw)``: the randomness of the ``random``
    placement and wake strategies comes from seeds derived from the
    replicate seed, the trial coordinates and the adversary draw
    index, so every process resolves the same scenario and records
    stay byte-identical across worker counts.
    """
    k = len(trial.labels)
    if trial.placement.startswith("nodes:"):
        # An explicit assignment (the adaptive search's encoding of a
        # concrete scenario): no seed, no strategy — just range checks
        # against the concrete graph.
        _, nodes = parse_placement(trial.placement)
        if len(nodes) != k:
            raise ValueError(
                f"explicit placement has {len(nodes)} nodes for "
                f"{k} agents: {trial.placement!r}"
            )
        if any(v >= graph.n for v in nodes):
            raise ValueError(
                f"explicit placement node out of range for a "
                f"{graph.n}-node graph: {trial.placement!r}"
            )
        start_nodes: list[int] | None = list(nodes)
    else:
        try:
            place = PLACEMENT_RESOLVERS[trial.placement]
        except KeyError:
            raise TrialError(
                f"unknown placement {trial.placement!r}; "
                f"known: {sorted(PLACEMENT_RESOLVERS)}"
            ) from None
        start_nodes = place(
            graph, k, _scenario_seed(trial, "placement", draw)
        )
    wake_rounds = schedule_from_strategy(
        trial.wake_schedule, k, seed=_scenario_seed(trial, "wake", draw)
    )
    return start_nodes, wake_rounds


def _scenario_is_randomized(trial: TrialSpec) -> bool:
    """Whether any scenario component actually consumes its seed."""
    return (
        trial.placement == "random"
        or trial.wake_schedule.partition(":")[0] == "random"
        or trial.faults.partition(":")[0] == "crash-random"
        or trial.dynamics == "ring-random"
    )


def _gather_known_metrics(report, graph: PortGraph) -> dict:
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "phases": report.phases,
        "leader": report.leader,
        "node": report.node,
        "edges": graph.num_edges(),
    }


def _gather_unknown_metrics(report, graph: PortGraph) -> dict:
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "leader": report.leader,
        "node": report.node,
        "hypothesis": report.hypothesis,
        "size": report.size,
        "edges": graph.num_edges(),
    }


def _run_gather_known(trial: TrialSpec, graph: PortGraph,
                      provider: UXSProvider | None,
                      start_nodes: list[int] | None,
                      wake_rounds: list[int | None]) -> dict:
    report = run_gather_known(
        graph,
        list(trial.labels),
        trial.n_bound,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return _gather_known_metrics(report, graph)


def _run_gather_unknown(trial: TrialSpec, graph: PortGraph,
                        provider: UXSProvider | None,
                        start_nodes: list[int] | None,
                        wake_rounds: list[int | None]) -> dict:
    # No knowledge: n_bound is deliberately unused.  Declaration
    # clocks are astronomical (hundreds of digits) but exact ints,
    # so records remain JSON-safe and byte-stable.
    report = run_gather_unknown(
        graph,
        list(trial.labels),
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return _gather_unknown_metrics(report, graph)


def _run_gossip_known(trial: TrialSpec, graph: PortGraph,
                      provider: UXSProvider | None,
                      start_nodes: list[int] | None,
                      wake_rounds: list[int | None]) -> dict:
    if trial.messages is None:
        raise ValueError("gossip trials need a message set")
    report = run_gossip_known(
        graph,
        list(trial.labels),
        list(trial.messages),
        trial.n_bound,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return {
        "rounds": report.round,
        "events": report.events,
        "leader": report.leader,
        "messages": dict(report.messages),
        "edges": graph.num_edges(),
    }


def _run_gossip_unknown(trial: TrialSpec, graph: PortGraph,
                        provider: UXSProvider | None,
                        start_nodes: list[int] | None,
                        wake_rounds: list[int | None]) -> dict:
    if trial.messages is None:
        raise ValueError("gossip trials need a message set")
    report = run_gossip_unknown(
        graph,
        list(trial.labels),
        list(trial.messages),
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return {
        "rounds": report.round,
        "events": report.events,
        "leader": report.leader,
        "messages": dict(report.messages),
        "edges": graph.num_edges(),
    }


def _run_talking(trial: TrialSpec, graph: PortGraph,
                 provider: UXSProvider | None,
                 start_nodes: list[int] | None,
                 wake_rounds: list[int | None]) -> dict:
    report = run_talking_gather(
        graph,
        list(trial.labels),
        trial.n_bound,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "leader": report.leader,
        "node": report.node,
        "edges": graph.num_edges(),
    }


def _run_random_walk(trial: TrialSpec, graph: PortGraph,
                     provider: UXSProvider | None,
                     start_nodes: list[int] | None,
                     wake_rounds: list[int | None]) -> dict:
    # The walk seed defaults to the trial's derived seed (replicates
    # explore different walks) but can be pinned via algorithm_params
    # to reproduce historical fixed-seed runs.
    walk_seed = trial.algorithm_params.get("seed", trial.graph_seed)
    report = run_random_walk_gather(
        graph,
        list(trial.labels),
        trial.n_bound,
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
        seed=walk_seed,
    )
    return {
        "rounds": report.round,
        "moves": report.total_moves,
        "events": report.events,
        "leader": report.leader,
        "node": report.node,
        "edges": graph.num_edges(),
    }


ALGORITHMS: dict[str, Callable] = {
    "gather_known": _run_gather_known,
    "gather_unknown": _run_gather_unknown,
    "gossip_known": _run_gossip_known,
    "gossip_unknown": _run_gossip_unknown,
    "talking": _run_talking,
    "random_walk": _run_random_walk,
}


# ----------------------------------------------------------------------
# Fault injection (docs/experiments.md, "Faults & dynamics").
#
# A trial with a non-default ``faults`` / ``dynamics`` axis bypasses the
# ``run_*`` front-ends: their reports validate that *everyone* gathered,
# which is exactly what a crashed agent prevents.  Faulted trials build
# through the ``prepare_*`` front-ends instead and read the raw
# :class:`~repro.sim.scheduler.SimulationResult`, recording the
# graceful-degradation quantities (``survivors_gathered``,
# ``partial_groups``, ``crashed_labels``, ``timed_out``).
# ----------------------------------------------------------------------

def _trial_is_faulted(trial: TrialSpec) -> bool:
    return trial.faults != "none" or trial.dynamics != "none"


def _resolve_trial_faults(
    trial: TrialSpec,
    wake_rounds: list[int | None],
    draw: int,
) -> tuple[tuple[int, int], ...]:
    """Resolve the trial's fault axis into concrete ``(label, round)``s.

    ``crash-random`` consumes a seed derived like placement/wake seeds
    (minus the ``adv=`` segment), so draw 0 of every adversary kind
    crashes the same agents.  Resolution always re-establishes the
    round-0 waker guarantee (:func:`ensure_round0_survivor`) so a
    ``random`` wake schedule's contract survives fault injection.
    """
    if trial.faults == "none":
        return ()
    faults = resolve_fault_schedule(
        trial.faults,
        trial.labels,
        seed=_scenario_seed(trial, "faults", draw),
    )
    return ensure_round0_survivor(faults, trial.labels, wake_rounds)


def _fault_horizon(
    trial: TrialSpec,
    wake_rounds: list[int | None],
    provider: UXSProvider | None,
) -> int | None:
    """Graceful-degradation round horizon for a faulted trial.

    ``gather_known`` is time-bounded by Theorem 3.1, so twice that
    envelope (plus the wake offset) cleanly separates "still running"
    from "survivors can never gather".  ``gather_unknown`` has no such
    closed form; it relies on its own budget errors, which the faulted
    runner converts into structured outcomes.  Overridable per trial
    via ``algorithm_params["horizon"]``.
    """
    horizon = trial.algorithm_params.get("horizon")
    if horizon is not None:
        return int(horizon)
    if trial.algorithm != "gather_known":
        return None
    bound = KnownBoundParameters(trial.n_bound, provider).total_time_bound(
        smallest_label_length(list(trial.labels))
    )
    max_wake = max((w for w in wake_rounds if w is not None), default=0)
    return 2 * bound + max_wake


def _faulted_metrics(
    trial: TrialSpec,
    graph: PortGraph,
    result,
    faults_pairs: tuple[tuple[int, int], ...],
    horizon: int | None,
    protocol_error: str | None = None,
) -> dict:
    """Flatten a faulted run's raw result into the robustness record."""
    rounds = result.final_round
    if result.timed_out and horizon is not None:
        rounds = horizon
    metrics = {
        "rounds": rounds,
        "moves": result.total_moves,
        "events": result.events,
        "edges": graph.num_edges(),
        "faults": format_crash_faults(faults_pairs),
        "dynamics": trial.dynamics,
        "crashed_labels": [label for label in result.crashed_labels],
        "survivors_gathered": result.survivors_gathered(),
        "partial_groups": list(result.partial_groups()),
        "timed_out": result.timed_out,
    }
    if protocol_error is not None:
        metrics["protocol_error"] = protocol_error
    return metrics


def _prepare_faulted(
    trial: TrialSpec,
    graph: PortGraph,
    provider: UXSProvider | None,
    start_nodes: list[int] | None,
    wake_rounds: list[int | None],
    faults_pairs: tuple[tuple[int, int], ...],
    draw: int,
) -> "PreparedTrial":
    """Build a faulted trial's simulation, ready to run or cohort."""
    dynamics = None
    if trial.dynamics != "none":
        dynamics = make_dynamics(
            trial.dynamics,
            graph,
            seed=_scenario_seed(trial, "dynamics", draw),
        )
    horizon = _fault_horizon(trial, wake_rounds, provider)
    if trial.algorithm == "gather_known":
        prepared = prepare_gather_known(
            graph,
            list(trial.labels),
            trial.n_bound,
            start_nodes=start_nodes,
            wake_rounds=wake_rounds,
            provider=provider,
            faults=faults_pairs or None,
            dynamics=dynamics,
            horizon=horizon,
        )
    elif trial.algorithm == "gather_unknown":
        prepared = prepare_gather_unknown(
            graph,
            list(trial.labels),
            start_nodes=start_nodes,
            wake_rounds=wake_rounds,
            provider=provider,
            faults=faults_pairs or None,
            dynamics=dynamics,
            horizon=horizon,
        )
    else:
        raise TrialError(
            f"faults/dynamics are not supported for "
            f"{trial.algorithm!r} trials"
        )
    return PreparedTrial(
        trial, graph, prepared, None,
        fault_ctx=(tuple(faults_pairs), horizon),
    )


def _run_faulted(
    trial: TrialSpec,
    graph: PortGraph,
    provider: UXSProvider | None,
    start_nodes: list[int] | None,
    wake_rounds: list[int | None],
    draw: int,
    faults_pairs: tuple[tuple[int, int], ...] | None = None,
) -> dict:
    """Execute one faulted/dynamic scenario into robustness metrics.

    A protocol error (phase-budget overruns under blocked edges, wait
    budgets starved by a crashed teammate, deadlocks past the horizon's
    reach) is a *finding*, not a failure: the run is finalized
    gracefully and recorded ``ok`` with a ``protocol_error`` note, so a
    robustness sweep can query how often the paper's algorithm survives
    its model being broken.
    """
    if faults_pairs is None:
        faults_pairs = _resolve_trial_faults(trial, wake_rounds, draw)
    else:
        faults_pairs = ensure_round0_survivor(
            faults_pairs, trial.labels, wake_rounds
        )
    prepared = _prepare_faulted(
        trial, graph, provider, start_nodes, wake_rounds, faults_pairs, draw
    )
    try:
        result = prepared.simulation.run()
    except Exception as exc:
        metrics = prepared.finalize_error(exc)
        if metrics is None:
            raise
        return metrics
    return prepared.finalize(result)


def _simulate_scenario(
    trial: TrialSpec,
    graph: PortGraph,
    provider: UXSProvider | None,
    algorithm: Callable,
    draw: int,
) -> dict:
    start_nodes, wake_rounds = resolve_scenario(trial, graph, draw)
    if _trial_is_faulted(trial):
        return _run_faulted(
            trial, graph, provider, start_nodes, wake_rounds, draw
        )
    return algorithm(trial, graph, provider, start_nodes, wake_rounds)


def _run_adaptive_adversary(
    trial: TrialSpec,
    graph: PortGraph,
    provider: UXSProvider | None,
    algorithm: Callable,
    budget: int,
) -> dict:
    """Execute an ``adaptive:<strategy>:<budget>`` adversary trial.

    The adversary evaluates the trial's fixed (draw-0) scenario first,
    then spends the remaining budget *searching* the randomized
    scenario components with the named strategy
    (:mod:`repro.runner.search`), keeping the worst outcome.  Priming
    the search with the fixed scenario makes ``adaptive >= fixed`` a
    structural guarantee, exactly as draw-0 sharing makes ``worst_of
    >= fixed`` one.  Everything is derived from the trial's scenario
    seed, so records stay byte-identical across backends and worker
    counts.  Deterministic scenario components are not searched
    (mirroring ``worst_of``): with nothing randomized the budget
    collapses to a single evaluation.
    """
    # Imported lazily: the search package imports this module's
    # sibling spec module at load time.
    from .search.space import ScenarioSpace
    from .search.strategies import drive_search, make_strategy

    strategy_name = trial.adversary.split(":")[1]
    faulted = _trial_is_faulted(trial)
    base_nodes, base_wake = resolve_scenario(trial, graph, 0)
    if faulted:
        base_faults = _resolve_trial_faults(trial, base_wake, 0)
        base_metrics = _run_faulted(
            trial, graph, provider, base_nodes, base_wake, 0,
            faults_pairs=base_faults,
        )
    else:
        base_faults = None
        base_metrics = algorithm(
            trial, graph, provider, base_nodes, base_wake
        )
    evaluated = 1
    chosen = base_metrics
    chosen_scenario: dict[str, str] = {
        "placement": trial.placement,
        "wake": trial.wake_schedule,
    }
    if faulted:
        chosen_scenario["faults"] = trial.faults
    if budget > 1 and _scenario_is_randomized(trial):
        wake_kind, wake_args = parse_wake_strategy(trial.wake_schedule)
        search_wake = wake_kind == "random"
        max_delay = (
            wake_args[0] if search_wake and wake_args else 16
        )
        dormant_pct = (
            wake_args[1] if search_wake and len(wake_args) > 1 else 25
        )
        search_faults = trial.faults.partition(":")[0] == "crash-random"
        fault_k = 0
        max_fault_round = 0
        if search_faults:
            _kind, fault_k, max_fault_round = parse_fault_strategy(
                trial.faults
            )
        space = ScenarioSpace(
            n=graph.n,
            team=len(trial.labels),
            max_delay=max_delay,
            dormant_pct=dormant_pct,
            search_placement=trial.placement == "random",
            search_wake=search_wake,
            search_faults=search_faults,
            fault_labels=trial.labels,
            fault_k=fault_k,
            max_fault_round=max_fault_round,
        )

        def stream(draw: int):
            nodes, wake = resolve_scenario(trial, graph, draw)
            faults = (
                _resolve_trial_faults(trial, wake, draw)
                if search_faults
                else None
            )
            return space.from_resolved(nodes, wake, faults)

        strategy = make_strategy(
            strategy_name,
            space,
            seed=_scenario_seed(trial, "adaptive", 0),
            budget=budget - 1,
            maximize=True,
            stream=stream,
        )
        metrics_by_sig: dict[str, dict] = {}
        base_point = space.from_resolved(
            base_nodes, base_wake,
            base_faults if search_faults else None,
        )
        strategy.prime(base_point, base_metrics["rounds"])
        metrics_by_sig[space.signature(base_point)] = base_metrics

        def evaluate_batch(points) -> list:
            values = []
            for point in points:
                nodes = (
                    list(point.nodes)
                    if point.nodes is not None
                    else base_nodes
                )
                wake = (
                    list(point.wake)
                    if point.wake is not None
                    else base_wake
                )
                if faulted:
                    pairs = (
                        point.faults
                        if point.faults is not None
                        else base_faults
                    )
                    metrics = _run_faulted(
                        trial, graph, provider, nodes, wake, 0,
                        faults_pairs=pairs,
                    )
                else:
                    metrics = algorithm(trial, graph, provider, nodes, wake)
                metrics_by_sig[space.signature(point)] = metrics
                values.append(metrics["rounds"])
            return values

        outcome = drive_search(
            strategy, evaluate_batch, budget - 1, maximize=True
        )
        evaluated += outcome.attempts
        if (
            outcome.best_point is not None
            and outcome.best_value is not None
            and outcome.best_value > base_metrics["rounds"]
        ):
            signature = space.signature(outcome.best_point)
            chosen = metrics_by_sig[signature]
            placement, wake, faults_str = space.encode(outcome.best_point)
            chosen_scenario = {
                "placement": placement or trial.placement,
                "wake": wake or trial.wake_schedule,
            }
            if faulted:
                chosen_scenario["faults"] = faults_str or trial.faults
    metrics = dict(chosen)
    metrics["adversary_draws"] = budget
    metrics["adversary_evaluated"] = evaluated
    metrics["adversary_scenario"] = chosen_scenario
    return metrics


def execute_trial(
    trial: TrialSpec,
    provider: UXSProvider | None = None,
    graph: PortGraph | None = None,
) -> TrialResult:
    """Run one trial, capturing any failure in the result record.

    ``provider`` is the process-local :class:`UXSProvider`; passing one
    lets a worker reuse its sequence cache across every trial it
    executes (sequences are pure functions of ``(N, seed, factor)``, so
    all workers agree without any cross-process traffic).

    ``graph`` optionally skips graph construction: graphs are pure
    functions of ``(family, n, graph_seed)``, so a caller that executes
    many trials on the same graph (the pipelined backend's batches) can
    build it once and share it — records stay byte-identical either
    way.  Passing ``None`` builds (and failure-captures) as usual.

    With a ``worst_of``/``best_of`` adversary the trial simulates every
    scenario draw and records the extremal one, annotating the metrics
    with the chosen draw index (``adversary_draw``) and the draw count.

    When an event dispatcher is attached (docs/observability.md) the
    execution is bracketed by :class:`TrialStart` / :class:`TrialEnd`
    events; records are byte-identical either way.
    """
    reg = _metrics_registry.current()
    if reg is None:
        return _execute_trial_events(trial, provider, graph)
    with reg.timer("runner.trial.wall_seconds"):
        result = _execute_trial_events(trial, provider, graph)
    status = "ok" if result.ok else "failed"
    reg.counter("runner.trials.executed", status=status).value += 1
    return result


def _execute_trial_events(
    trial: TrialSpec,
    provider: UXSProvider | None = None,
    graph: PortGraph | None = None,
) -> TrialResult:
    """The event-bracketing layer under :func:`execute_trial`."""
    emit = _event_stream.current()
    if emit is None:
        return _execute_trial_inner(trial, provider, graph)
    emit.emit(_trial_start_event(trial))
    result = _execute_trial_inner(trial, provider, graph)
    emit.emit(_trial_end_event(result))
    return result


def _trial_start_event(trial: TrialSpec):
    return _EvTrialStart(
        key=trial.key, algorithm=trial.algorithm,
        family=trial.family, n=trial.n, seed=trial.seed,
    )


def _trial_end_event(result: TrialResult):
    metrics = result.metrics
    return _EvTrialEnd(
        key=result.trial.key,
        ok=result.ok,
        error=result.error,
        rounds=metrics.get("rounds"),
        moves=metrics.get("moves"),
        events=metrics.get("events"),
    )


def _execute_trial_inner(
    trial: TrialSpec,
    provider: UXSProvider | None = None,
    graph: PortGraph | None = None,
) -> TrialResult:
    try:
        algorithm = ALGORITHMS[trial.algorithm]
    except KeyError:
        return TrialResult(
            trial,
            ok=False,
            error=(
                f"unknown algorithm {trial.algorithm!r}; "
                f"known: {sorted(ALGORITHMS)}"
            ),
        )
    try:
        kind, draws = parse_adversary(trial.adversary)
        if graph is None:
            graph = _build_graph(trial)
        if kind == "fixed":
            metrics = _simulate_scenario(
                trial, graph, provider, algorithm, 0
            )
        elif kind == "adaptive":
            metrics = _run_adaptive_adversary(
                trial, graph, provider, algorithm, budget=draws
            )
        else:
            # With fully deterministic scenario components every draw
            # is identical, so evaluating one is observationally
            # equivalent (ties keep the first draw) at 1/k the cost.
            evaluate = draws if _scenario_is_randomized(trial) else 1
            chosen: dict | None = None
            chosen_draw = 0
            for draw in range(evaluate):
                candidate = _simulate_scenario(
                    trial, graph, provider, algorithm, draw
                )
                better = chosen is None or (
                    candidate["rounds"] > chosen["rounds"]
                    if kind == "worst_of"
                    else candidate["rounds"] < chosen["rounds"]
                )
                if better:
                    chosen, chosen_draw = candidate, draw
            assert chosen is not None  # evaluate >= 1
            metrics = dict(chosen)
            metrics["adversary_draw"] = chosen_draw
            metrics["adversary_draws"] = draws
    except Exception as exc:  # captured, not raised: sweeps must survive
        return TrialResult(
            trial, ok=False, error=f"{type(exc).__name__}: {exc}"
        )
    return TrialResult(trial, ok=True, metrics=metrics)


class PreparedTrial:
    """A trial resolved down to a ready-to-run :class:`Simulation`.

    Produced by :func:`prepare_trial` for cohort-eligible trials; the
    cohort executor drives :attr:`simulation` (together with its
    same-graph batch-mates) and calls :meth:`finalize` on the raw
    :class:`~repro.sim.scheduler.SimulationResult` to obtain exactly
    the metrics dict :func:`execute_trial` would have recorded.
    """

    __slots__ = ("trial", "graph", "prepared", "_metrics_fn", "_fault_ctx")

    def __init__(self, trial: TrialSpec, graph: PortGraph,
                 prepared, metrics_fn, fault_ctx=None) -> None:
        self.trial = trial
        self.graph = graph
        self.prepared = prepared
        self._metrics_fn = metrics_fn
        # (faults_pairs, horizon) for faulted trials; None otherwise.
        # Faulted trials skip report validation (crashed agents never
        # declare) and flatten the raw result instead.
        self._fault_ctx = fault_ctx

    @property
    def simulation(self):
        return self.prepared.simulation

    def finalize(self, sim_result) -> dict:
        """Validate a result into the trial's canonical metrics dict."""
        if self._fault_ctx is not None:
            faults_pairs, horizon = self._fault_ctx
            return _faulted_metrics(
                self.trial, self.graph, sim_result, faults_pairs, horizon
            )
        report = self.prepared.finalize(sim_result)
        return self._metrics_fn(report, self.graph)

    def finalize_error(self, exc: BaseException) -> dict | None:
        """Convert a faulted trial's protocol error into ``ok`` metrics.

        Returns ``None`` when the error is a genuine failure — an
        unfaulted trial, or anything that is not a ``RuntimeError`` —
        and the caller should record it as one.  Otherwise the
        simulation is finalized gracefully (every live agent ends
        undeclared at its current node) and the metrics carry the
        error text as ``protocol_error``; ``timed_out`` stays false
        because the run ended by the error, not the horizon.
        """
        if self._fault_ctx is None or not isinstance(exc, RuntimeError):
            return None
        faults_pairs, horizon = self._fault_ctx
        sim = self.prepared.simulation
        sim._graceful_stop()
        sim.timed_out = False
        return _faulted_metrics(
            self.trial, self.graph, sim.result(), faults_pairs, horizon,
            protocol_error=f"{type(exc).__name__}: {exc}",
        )


def prepare_trial(
    trial: TrialSpec,
    graph: PortGraph,
    provider: UXSProvider | None = None,
) -> PreparedTrial | None:
    """Resolve a cohort-eligible trial into a :class:`PreparedTrial`.

    Returns ``None`` when the trial cannot run in a lockstep cohort —
    anything but a ``fixed`` adversary (multi-draw adversaries run
    many simulations per trial) or an algorithm without a prepare
    front-end — in which case the caller falls back to
    :func:`execute_trial`.  Exceptions raised here (scenario
    resolution, pre-flight verification, simulation construction) are
    exactly those :func:`execute_trial` captures, so callers convert
    them into identical failure records.
    """
    if trial.algorithm not in ("gather_known", "gather_unknown"):
        return None
    kind, _draws = parse_adversary(trial.adversary)
    if kind != "fixed":
        return None
    start_nodes, wake_rounds = resolve_scenario(trial, graph, 0)
    if _trial_is_faulted(trial):
        # Faulted trials cohort too: the lockstep scheduler ejects a
        # trial at its first crash or blocked edge, and the scalar
        # finish plus ``finalize``/``finalize_error`` reproduce the
        # serial path's records byte-for-byte.
        faults_pairs = _resolve_trial_faults(trial, wake_rounds, 0)
        return _prepare_faulted(
            trial, graph, provider, start_nodes, wake_rounds,
            faults_pairs, 0,
        )
    if trial.algorithm == "gather_known":
        prepared = prepare_gather_known(
            graph,
            list(trial.labels),
            trial.n_bound,
            start_nodes=start_nodes,
            wake_rounds=wake_rounds,
            provider=provider,
        )
        return PreparedTrial(trial, graph, prepared, _gather_known_metrics)
    prepared = prepare_gather_unknown(
        graph,
        list(trial.labels),
        start_nodes=start_nodes,
        wake_rounds=wake_rounds,
        provider=provider,
    )
    return PreparedTrial(trial, graph, prepared, _gather_unknown_metrics)
