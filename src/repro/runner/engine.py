"""The experiment engine: grid fan-out, caching, result collection.

:func:`run_experiment` is the single entry point used by the sweep
drivers (:mod:`repro.analysis.sweeps`), the benchmark suite, the
examples and the ``python -m repro sweep`` CLI:

1. expand the :class:`ExperimentSpec` into its deterministic trial
   grid;
2. subtract the trials already present in the :class:`ResultStore`
   (when caching is enabled);
3. hand the remainder to an execution backend
   (:mod:`repro.runner.backends`) — ``serial`` in-process, ``process``
   over a ``multiprocessing`` pool, ``pipelined`` with graph-grouped
   prefetched batches, or ``manifest`` coordinating multiple hosts
   through a file-based work queue;
4. merge, persist, and return the records in canonical grid order.

Records contain no timing or process information, so every backend
produces byte-identical records for the same spec; wall-clock effort
only appears in the :class:`ExperimentResult` counters, never in
records.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, cast

from ..events import stream as _event_stream
from ..events.types import (
    SweepEnd as _EvSweepEnd,
    SweepProgress as _EvSweepProgress,
    SweepStart as _EvSweepStart,
)
from ..metrics import registry as _metrics_registry
from .backends import BackendContext, get_backend
from .spec import ExperimentSpec, SpecError
from .store import ResultStore

# progress callback: (done, total, record, from_cache) -> None
ProgressFn = Callable[[int, int, dict, bool], None]


def coerce_store(store) -> ResultStore | None:
    """Accept a :class:`ResultStore`, a path, ``None``, or a duck-typed
    store (anything with ``load()``/``save()``) — shared by
    :func:`run_experiment` and :func:`repro.runner.search.run_search`."""
    if store is None or isinstance(store, ResultStore):
        return store
    if isinstance(store, (str, bytes, os.PathLike)):
        return ResultStore(store)
    return cast(ResultStore, store)


class ExperimentResult:
    """All records of an experiment, in canonical grid order."""

    __slots__ = ("spec", "records", "executed", "cached", "failed")

    def __init__(
        self,
        spec: ExperimentSpec,
        records: list[dict],
        executed: int,
        cached: int,
    ) -> None:
        self.spec = spec
        self.records = records
        self.executed = executed
        self.cached = cached
        self.failed = sum(1 for r in records if not r["ok"])

    def ok_records(self) -> list[dict]:
        return [r for r in self.records if r["ok"]]

    def failures(self) -> list[dict]:
        return [r for r in self.records if not r["ok"]]

    def canonical_json(self) -> str:
        """Byte-stable serialization of the record list (for diffing)."""
        return json.dumps(
            self.records, sort_keys=True, separators=(",", ":")
        )

    def raise_on_failure(self) -> None:
        """Re-raise the first captured failure (for strict callers)."""
        for rec in self.records:
            if not rec["ok"]:
                raise RuntimeError(
                    f"trial {rec['key']} failed: {rec['error']}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExperimentResult(trials={len(self.records)}, "
            f"executed={self.executed}, cached={self.cached}, "
            f"failed={self.failed})"
        )


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    store: ResultStore | str | None = None,
    progress: ProgressFn | None = None,
    provider_args: dict | None = None,
    backend: str | None = None,
    backend_options: dict | None = None,
) -> ExperimentResult:
    """Run (or incrementally complete) an experiment grid.

    Parameters
    ----------
    spec:
        The declarative trial grid.
    workers:
        ``1`` executes in-process (serial reference path); ``>1`` fans
        trials out over a process pool.  Every backend and worker
        count produces byte-identical records.
    store:
        A :class:`ResultStore`, a directory path, or ``None`` to
        disable memoization.  Ignored for non-cacheable specs (custom
        ``graph_factory``); required by the ``manifest`` backend.
    progress:
        Optional callback ``(done, total, record, from_cache)`` invoked
        as each trial completes (cached trials first).
    provider_args:
        Keyword arguments for each worker's :class:`UXSProvider`
        (default: the provider's own defaults).
    backend:
        Execution-backend name (see :mod:`repro.runner.backends`).
        Overrides ``spec.backend``; when both are ``None`` the
        historical mapping applies — ``serial`` for ``workers=1``,
        ``process`` otherwise.
    backend_options:
        Backend-specific knobs (e.g. ``batch_size`` for ``pipelined``,
        ``chunk_size``/``worker_id``/``timeout`` for ``manifest``).
        Never part of the spec identity.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    sweep_start = time.perf_counter()
    backend_name = backend or spec.backend
    if backend_name is None:
        backend_name = "serial" if workers == 1 else "process"
    executor = get_backend(backend_name)
    if spec.graph_factory is not None and (
        backend_name != "serial" or workers != 1
    ):
        raise SpecError(
            "a spec with a custom graph_factory must run with workers=1 "
            "on the serial backend (factories are not generally "
            "picklable)"
        )
    trials = spec.trials()
    order = {t.key: i for i, t in enumerate(trials)}
    provider_args = dict(provider_args or {})

    result_store = coerce_store(store)
    use_store = result_store is not None and spec.cacheable

    known: dict[str, dict] = (
        result_store.load(spec) if result_store and use_store else {}
    )
    done_records: dict[str, dict] = {
        t.key: known[t.key] for t in trials if t.key in known
    }
    pending = [t for t in trials if t.key not in done_records]
    total = len(trials)
    cached = len(done_records)

    emit = _event_stream.current()
    if emit is not None:
        emit.emit(_EvSweepStart(
            spec_hash=spec.spec_hash() if spec.cacheable else "uncacheable",
            backend=backend_name,
            total=total,
            cached=cached,
        ))

    done = 0
    for trial in trials:
        if trial.key in done_records:
            done += 1
            record = done_records[trial.key]
            if progress is not None:
                progress(done, total, record, True)
            if emit is not None:
                emit.emit(_EvSweepProgress(
                    done=done, total=total, key=record["key"],
                    ok=record["ok"], cached=True,
                ))

    try:
        if pending:
            context = BackendContext(
                spec=spec,
                pending=pending,
                workers=workers,
                provider_args=provider_args,
                prewarm=tuple(sorted({t.n_bound for t in pending})),
                store=result_store if use_store else None,
                options=backend_options,
            )
            for record in executor.execute(context):
                done_records[record["key"]] = record
                done += 1
                if progress is not None:
                    progress(done, total, record, False)
                if emit is not None:
                    emit.emit(_EvSweepProgress(
                        done=done, total=total, key=record["key"],
                        ok=record["ok"], cached=False,
                    ))
            # Backends yield one record per pending trial; anything
            # short of that (a manifest whose chunking diverged, a
            # buggy third-party backend) must fail loudly, never
            # return a silently incomplete result.
            missing = [
                t.key for t in pending if t.key not in done_records
            ]
            if missing:
                raise RuntimeError(
                    f"backend {backend_name!r} returned no record for "
                    f"{len(missing)} pending trial(s), e.g. "
                    f"{missing[0]!r}"
                )
            executed = len(pending) - context.collected
        else:
            executed = 0
    finally:
        # Persist whatever completed even if the sweep was interrupted
        # mid-grid, so a re-run only simulates the gap.  Failed trials
        # are deliberately *not* persisted: a captured failure may be
        # transient, so it is retried on the next invocation instead
        # of being served from cache forever.  A fully-cached run
        # skips the save entirely (nothing changed), unless the
        # records came from a legacy single-file store that still
        # needs migrating to the sharded layout.
        if result_store and use_store and done_records:
            ok_records = {
                k: r for k, r in done_records.items() if r["ok"]
            }
            migrate = (
                hasattr(result_store, "dir_for")
                and not result_store.dir_for(spec).is_dir()
            )
            # An all-failed sweep has nothing worth persisting; writing
            # would only fabricate an empty store directory.
            if ok_records and (pending or migrate):
                result_store.save(spec, ok_records)

    ordered = sorted(done_records.values(), key=lambda r: order[r["key"]])
    result = ExperimentResult(
        spec, ordered, executed=executed, cached=cached
    )
    if emit is not None:
        emit.emit(_EvSweepEnd(
            total=total, executed=executed, cached=cached,
            failed=result.failed,
        ))
    reg = _metrics_registry.current()
    if reg is not None:
        reg.counter("runner.sweeps", backend=backend_name).value += 1
        reg.counter("runner.trials.cached").value += cached
        reg.histogram(
            "runner.sweep.wall_seconds", backend=backend_name
        ).observe(time.perf_counter() - sweep_start)
    return result
