"""The experiment engine: grid fan-out, caching, result collection.

:func:`run_experiment` is the single entry point used by the sweep
drivers (:mod:`repro.analysis.sweeps`), the benchmark suite, the
examples and the ``python -m repro sweep`` CLI:

1. expand the :class:`ExperimentSpec` into its deterministic trial
   grid;
2. subtract the trials already present in the :class:`ResultStore`
   (when caching is enabled);
3. execute the remainder — serially for ``workers=1`` (bit-for-bit
   reproducible reference path), or over a ``multiprocessing`` pool
   whose workers each build their :class:`UXSProvider` once;
4. merge, persist, and return the records in canonical grid order.

Records contain no timing or process information, so the result of a
parallel run is byte-identical to a serial one; wall-clock effort only
appears in the :class:`ExperimentResult` counters, never in records.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from typing import Callable, cast

from ..explore.uxs import UXSProvider
from . import worker as worker_mod
from .spec import ExperimentSpec, SpecError
from .store import ResultStore
from .trial import execute_trial

# progress callback: (done, total, record, from_cache) -> None
ProgressFn = Callable[[int, int, dict, bool], None]


class ExperimentResult:
    """All records of an experiment, in canonical grid order."""

    __slots__ = ("spec", "records", "executed", "cached", "failed")

    def __init__(
        self,
        spec: ExperimentSpec,
        records: list[dict],
        executed: int,
        cached: int,
    ) -> None:
        self.spec = spec
        self.records = records
        self.executed = executed
        self.cached = cached
        self.failed = sum(1 for r in records if not r["ok"])

    def ok_records(self) -> list[dict]:
        return [r for r in self.records if r["ok"]]

    def failures(self) -> list[dict]:
        return [r for r in self.records if not r["ok"]]

    def canonical_json(self) -> str:
        """Byte-stable serialization of the record list (for diffing)."""
        return json.dumps(
            self.records, sort_keys=True, separators=(",", ":")
        )

    def raise_on_failure(self) -> None:
        """Re-raise the first captured failure (for strict callers)."""
        for rec in self.records:
            if not rec["ok"]:
                raise RuntimeError(
                    f"trial {rec['key']} failed: {rec['error']}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExperimentResult(trials={len(self.records)}, "
            f"executed={self.executed}, cached={self.cached}, "
            f"failed={self.failed})"
        )


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheapest and fully deterministic here; fall back to spawn
    # where fork is unavailable (the workers only use picklable dicts
    # and importable top-level functions, so both methods work).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    store: ResultStore | str | None = None,
    progress: ProgressFn | None = None,
    provider_args: dict | None = None,
) -> ExperimentResult:
    """Run (or incrementally complete) an experiment grid.

    Parameters
    ----------
    spec:
        The declarative trial grid.
    workers:
        ``1`` executes in-process (serial reference path); ``>1`` fans
        trials out over a process pool.  Both produce byte-identical
        records.
    store:
        A :class:`ResultStore`, a directory path, or ``None`` to
        disable memoization.  Ignored for non-cacheable specs (custom
        ``graph_factory``).
    progress:
        Optional callback ``(done, total, record, from_cache)`` invoked
        as each trial completes (cached trials first).
    provider_args:
        Keyword arguments for each worker's :class:`UXSProvider`
        (default: the provider's own defaults).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if spec.graph_factory is not None and workers != 1:
        raise SpecError(
            "a spec with a custom graph_factory must run with workers=1 "
            "(factories are not generally picklable)"
        )
    trials = spec.trials()
    order = {t.key: i for i, t in enumerate(trials)}
    provider_args = dict(provider_args or {})

    result_store: ResultStore | None
    if store is None or isinstance(store, ResultStore):
        result_store = store
    elif isinstance(store, (str, bytes, os.PathLike)):
        result_store = ResultStore(store)
    else:
        # Duck-typed store (e.g. an alternate backend or a test
        # double): anything with load()/save() is accepted as-is.
        result_store = cast(ResultStore, store)
    use_store = result_store is not None and spec.cacheable

    known: dict[str, dict] = (
        result_store.load(spec) if result_store and use_store else {}
    )
    done_records: dict[str, dict] = {
        t.key: known[t.key] for t in trials if t.key in known
    }
    pending = [t for t in trials if t.key not in done_records]
    total = len(trials)
    cached = len(done_records)

    done = 0
    for trial in trials:
        if trial.key in done_records and progress is not None:
            done += 1
            progress(done, total, done_records[trial.key], True)

    try:
        if pending:
            prewarm = tuple(sorted({t.n_bound for t in pending}))
            if workers == 1:
                provider = UXSProvider(**provider_args)
                for rec_trial in pending:
                    record = execute_trial(
                        rec_trial, provider=provider
                    ).record()
                    done_records[record["key"]] = record
                    done += 1
                    if progress is not None:
                        progress(done, total, record, False)
            else:
                ctx = _pool_context()
                payloads = [t.to_dict() for t in pending]
                with ctx.Pool(
                    processes=workers,
                    initializer=worker_mod.init_worker,
                    initargs=(provider_args, prewarm),
                ) as pool:
                    results = pool.imap_unordered(
                        worker_mod.run_trial_payload, payloads, chunksize=1
                    )
                    for record in results:
                        done_records[record["key"]] = record
                        done += 1
                        if progress is not None:
                            progress(done, total, record, False)
    finally:
        # Persist whatever completed even if the sweep was interrupted
        # mid-grid, so a re-run only simulates the gap.  Failed trials
        # are deliberately *not* persisted: a captured failure may be
        # transient, so it is retried on the next invocation instead
        # of being served from cache forever.  A fully-cached run
        # skips the save entirely (nothing changed), unless the
        # records came from a legacy single-file store that still
        # needs migrating to the sharded layout.
        if result_store and use_store and done_records:
            ok_records = {
                k: r for k, r in done_records.items() if r["ok"]
            }
            migrate = (
                hasattr(result_store, "dir_for")
                and not result_store.dir_for(spec).is_dir()
            )
            # An all-failed sweep has nothing worth persisting; writing
            # would only fabricate an empty store directory.
            if ok_records and (pending or migrate):
                result_store.save(spec, ok_records)

    ordered = sorted(done_records.values(), key=lambda r: order[r["key"]])
    return ExperimentResult(
        spec, ordered, executed=len(pending), cached=cached
    )
