"""``python -m repro
sweep|search|query|compact|worker|merge|manifest|metrics|corpus`` —
engine CLI.

``sweep`` runs a declarative trial grid with progress output (trials/s
and ETA), prints a result table, and memoizes completed trials under
``--cache-dir`` so a repeated invocation with the same spec does zero
re-simulation.  ``--backend`` picks the execution strategy (serial,
process, pipelined, manifest) — all byte-identical::

    python -m repro sweep --sizes 4,6,8 --labels 1,2 --workers 4
    python -m repro sweep --algorithm gossip_known --family ring \\
        --sizes 4,6 --labels 1,2 --messages 101,01 --cache-dir .repro-cache
    python -m repro sweep --sizes 6 --wake simultaneous,staggered:2 \\
        --placement spread,eccentric --adversary fixed,worst_of:4
    python -m repro sweep --family random_regular --sizes 20,30 \\
        --workers 4 --backend pipelined

``query`` filters and aggregates the cached records without
re-simulating anything — streamed shard by shard, never holding a
whole study's records in memory (decomposable stats keep running
aggregates per group; exact percentiles keep one number per record)::

    python -m repro query --list
    python -m repro query --where n=6 --where wake_schedule=staggered:2 \\
        --group-by placement --metrics rounds --stats mean,p95,max

``compact`` rewrites the store into canonical shards (healing corrupt
or orphaned shard files).

``search`` replaces blind ``worst_of:k`` sampling with an adaptive
adversary: a strategy (``hill_climb``, ``halving``, ``bisect``,
``sample``) iteratively proposes scenarios, evaluates them through any
execution backend, and refines toward the worst (or best) case under a
trial budget.  Evaluations and per-round incumbents persist in the
result store, so a re-run resumes from the cached frontier with zero
re-simulation::

    python -m repro search --size 6 --labels 1,2 --seed 0 \\
        --strategy hill_climb --budget 32 --max-delay 20 \\
        --workers 2 --backend pipelined

``worker`` and ``merge`` are the multi-host pair: workers with the
same spec arguments claim chunks from a shared file manifest and write
their own stores; merge unions those stores into one canonical store
(see docs/experiments.md for the two-terminal recipe)::

    python -m repro worker --sizes 6,8 --seeds 0,1,2,3 \\
        --manifest-dir shared --cache-dir store-a
    python -m repro merge --into merged store-a store-b

``manifest status`` reports every manifest's chunk progress (done /
in-flight / pending) and the age of each in-flight claim, so a crashed
worker's stale claim is easy to spot — and ``worker --steal`` reclaims
it automatically once it exceeds the claim TTL.

``corpus`` persists search-discovered worst-case scenarios as a
committed regression grid and replays it (see docs/ci.md)::

    python -m repro corpus export --cache-dir .repro-cache \\
        --out benchmarks/corpus/gather-ring.json --top 2
    python -m repro corpus replay --corpus-dir benchmarks/corpus

Sweep, search and worker exit status is 0 when every executed trial
succeeded, 1 otherwise (failed trials are reported, never crash the
run).  Query, compact, merge and manifest exit 0 on success and 2 on a
malformed request; corpus replay exits 1 on any regression and 2 on a
malformed corpus.
"""

from __future__ import annotations

import argparse
import json as _json
import os as _os
import sys as _sys
import time as _time

from ..events import stream as _event_stream
from ..events.processors import (
    ConsoleProgressProcessor,
    JsonlTraceProcessor,
    ProgressMeter as _ProgressMeter,  # noqa: F401 - public via this module
)
from ..events.types import (
    BackendChunkClaimed as _EvBackendChunkClaimed,
    SweepProgress as _EvSweepProgress,
)
from ..metrics import registry as _metrics_registry
from ..metrics import snapshot as _metrics_snapshot
from . import query as query_mod
from .backends import BACKENDS, BackendError, ManifestError
from .engine import run_experiment
from .spec import PLACEMENTS, ExperimentSpec
from .store import ResultStore
from .trial import ALGORITHMS, FAMILIES


def _parse_int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.replace(";", ",").split(",") if part)


def _parse_str_list(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_sets(text: str, caster) -> tuple[tuple, ...]:
    """Parse ``"1,2;3,4"`` into ``((1, 2), (3, 4))``."""
    out = []
    for group in text.split(";"):
        group = group.strip()
        if group:
            out.append(tuple(caster(v) for v in group.split(",")))
    return tuple(out)


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Spec axes shared by ``sweep`` and ``worker`` (same grid, same
    hash — a worker invoked with a sweep's arguments joins its study)."""
    parser.add_argument(
        "--algorithm", default="gather_known", choices=sorted(ALGORITHMS),
        help="algorithm to run (default: gather_known)",
    )
    parser.add_argument(
        "--family", default="ring", choices=sorted(FAMILIES),
        help="graph family (default: ring)",
    )
    parser.add_argument(
        "--sizes", type=_parse_int_list, default=(4, 6, 8),
        metavar="N,N,...", help="graph sizes (default: 4,6,8)",
    )
    parser.add_argument(
        "--labels", default="1,2", metavar="L,L[;L,L]",
        help="agent label sets, ';'-separated (default: 1,2)",
    )
    parser.add_argument(
        "--messages", default=None, metavar="M,M[;M,M]",
        help="message sets for gossip algorithms (binary strings)",
    )
    parser.add_argument(
        "--seeds", type=_parse_int_list, default=(0,),
        metavar="S,S,...", help="replicate seeds (default: 0)",
    )
    parser.add_argument(
        "--n-bound", type=int, default=None,
        help="known size bound (default: each trial's graph size)",
    )
    parser.add_argument(
        "--placement", default="default", metavar="P,P,...",
        help="agent placement strategies, ','-separated: "
             f"{'|'.join(PLACEMENTS)} (default: default)",
    )
    parser.add_argument(
        "--wake", default="simultaneous", metavar="W,W,...",
        help="wake-schedule strategies, ','-separated: simultaneous, "
             "staggered:<gap>, single_awake[:i], "
             "random[:max_delay[:pct]] (default: simultaneous)",
    )
    parser.add_argument(
        "--adversary", default="fixed", metavar="A,A,...",
        help="adversary strategies, ','-separated: fixed, "
             "worst_of:<k>, best_of:<k> (default: fixed)",
    )
    parser.add_argument(
        "--faults", default="none", metavar="F,F,...",
        help="crash-fault strategies, ','-separated: none, "
             "crash:<label>@<round>[+...], crash-random:<k>:<max_round> "
             "(default: none)",
    )
    parser.add_argument(
        "--dynamics", default="none", metavar="D,D,...",
        help="dynamic-edge strategies, ','-separated: none, "
             "ring-sweep[:<period>], ring-random (default: none)",
    )
    parser.add_argument(
        "--fixed-graph-seed", action="store_true",
        help="pass replicate seeds to the generator verbatim instead "
             "of deriving a per-trial seed",
    )


def _spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    """Build the :class:`ExperimentSpec` shared arguments describe."""
    label_sets = _parse_sets(args.labels, int)
    message_sets = (
        None
        if args.messages is None
        else _parse_sets(args.messages, str)
    )
    return ExperimentSpec(
        algorithm=args.algorithm,
        family=args.family,
        sizes=args.sizes,
        label_sets=label_sets,
        message_sets=message_sets,
        seeds=args.seeds,
        n_bound=args.n_bound,
        placements=_parse_str_list(args.placement),
        wake_schedules=_parse_str_list(args.wake),
        adversaries=_parse_str_list(args.adversary),
        faults=_parse_str_list(args.faults),
        dynamics=_parse_str_list(args.dynamics),
        graph_seed_mode="fixed" if args.fixed_graph_seed else "derived",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_spec_arguments(parser)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; default: 1)",
    )
    parser.add_argument(
        "--backend", default=None, choices=sorted(BACKENDS),
        help="execution backend (default: serial for --workers 1, "
             "process otherwise)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result store",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-trial progress lines",
    )
    _add_events_argument(parser)
    _add_metrics_argument(parser)
    return parser


# The meter moved to repro.events.processors (the console processor
# embeds one); the historical name stays importable for tests and any
# external callers.


def _trace_processor(args: argparse.Namespace, source: str):
    """The ``--events`` trace processor, or ``None`` when not asked for."""
    path = getattr(args, "events", None)
    if not path:
        return None
    return JsonlTraceProcessor(path, source=source)


def _add_events_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="capture a typed JSONL event trace to FILE (inspect with "
             "'python -m repro trace validate|replay|summary FILE')",
    )


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="collect low-overhead counters/histograms and write the "
             "snapshot to FILE (inspect with 'python -m repro metrics "
             "summary|export|diff'); never affects records",
    )


def _metrics_registry_for(args: argparse.Namespace, source: str):
    """The ``--metrics`` registry, or ``None`` when not asked for."""
    if not getattr(args, "metrics", None):
        return None
    return _metrics_registry.Registry(source=source)


def _finish_metrics(args: argparse.Namespace, reg) -> None:
    """Write the ``--metrics`` snapshot and print the summary table."""
    if reg is None:
        return
    snapshot = reg.snapshot()
    _metrics_snapshot.write_snapshot(args.metrics, snapshot)
    print(_metrics_snapshot.format_summary(snapshot))
    print(
        f"metrics: {args.metrics} "
        f"({len(snapshot['series'])} series)"
    )


def sweep_main(argv: list[str]) -> int:
    # Imported lazily: repro.analysis.sweeps itself imports this
    # package, and the table renderer is only needed by the CLI.
    from ..analysis.tables import ResultTable

    args = build_parser().parse_args(argv)
    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        spec = _spec_from_args(args)
    except ValueError as exc:  # SpecError is a ValueError
        print(f"error: {exc}")
        return 2

    # Progress rendering goes through the console processor: each line
    # is one atomic locked write to stderr, so concurrent workers
    # sharing the terminal never interleave mid-line, and stdout stays
    # clean for the result table and summary.  The processor is fed
    # from the engine's progress callback rather than the global event
    # stream — attaching to the stream would switch on simulation-level
    # emission (one event per agent move) that the console never
    # renders.  ``--events`` attaches the trace processor globally and
    # captures everything.
    console = ConsoleProgressProcessor(quiet=args.quiet)

    def report_progress(done: int, total: int, rec: dict, cache: bool) -> None:
        console.on_event(_EvSweepProgress(
            done=done, total=total, key=rec["key"], ok=rec["ok"],
            cached=cache,
        ))

    trace = _trace_processor(args, "sweep")
    reg = _metrics_registry_for(args, "sweep")
    try:
        with _event_stream.attached(trace), \
                _metrics_registry.attached(reg):
            result = run_experiment(
                spec,
                workers=args.workers,
                store=None if args.no_cache else args.cache_dir,
                progress=report_progress,
                backend=args.backend,
            )
    except BackendError as exc:
        # e.g. --backend manifest together with --no-cache: a bad
        # request, not a crash.
        print(f"error: {exc}")
        return 2
    except ManifestError as exc:
        # A runtime coordination failure (stale manifest, timed-out
        # foreign claim): report like a failed run, not a traceback.
        print(f"error: {exc}")
        return 1

    table = ResultTable(
        f"sweep: {args.algorithm} on {args.family} "
        f"(spec {spec.spec_hash()})",
        ["n", "labels", "scenario", "seed", "status",
         "rounds", "moves", "events"],
    )
    for rec in result.records:
        metrics = rec["metrics"]
        scenario = f"{rec['placement']}/{rec['wake_schedule']}/{rec['adversary']}"
        # Robustness axes show only when in play, keeping plain sweeps'
        # output unchanged.
        if rec.get("faults", "none") != "none":
            scenario += f"/{rec['faults']}"
        if rec.get("dynamics", "none") != "none":
            scenario += f"/{rec['dynamics']}"
        table.add_row(
            rec["n"],
            "-".join(str(v) for v in rec["labels"]),
            scenario,
            rec["seed"],
            "ok" if rec["ok"] else "FAILED",
            metrics.get("rounds", "-"),
            metrics.get("moves", "-"),
            metrics.get("events", "-"),
        )
    table.emit()
    print(
        f"trials: {len(result.records)}  "
        f"simulated: {result.executed}  cached: {result.cached}  "
        f"failed: {result.failed}{console.summary()}"
    )
    if not args.no_cache:
        print(f"result store: {args.cache_dir} (delete to force re-runs)")
    if trace is not None:
        print(f"event trace: {trace.path} ({trace.lines} events)")
    _finish_metrics(args, reg)
    for rec in result.failures():
        print(f"  FAILED {rec['key']}: {rec['error']}")
    return 0 if result.failed == 0 else 1


# ----------------------------------------------------------------------
# ``python -m repro search`` — adaptive adversary search.
# ----------------------------------------------------------------------

def build_search_parser() -> argparse.ArgumentParser:
    from .search.spec import OBJECTIVES
    from .search.strategies import STRATEGIES

    parser = argparse.ArgumentParser(
        prog="python -m repro search",
        description="Adaptively search the adversary's scenario space "
                    "(wake schedules x placements) for the worst — or "
                    "best — case of one algorithm on one graph, under "
                    "a trial budget.  Evaluations and per-round "
                    "incumbents persist in the result store: re-running "
                    "the same search resumes from the cached frontier "
                    "with zero re-simulation, and 'python -m repro "
                    "query' can aggregate the records.",
    )
    parser.add_argument(
        "--algorithm", default="gather_known", choices=sorted(ALGORITHMS),
        help="algorithm under attack (default: gather_known)",
    )
    parser.add_argument(
        "--family", default="ring", choices=sorted(FAMILIES),
        help="graph family (default: ring)",
    )
    parser.add_argument(
        "--size", type=int, default=6, metavar="N",
        help="graph size (default: 6)",
    )
    parser.add_argument(
        "--labels", default="1,2", metavar="L,L,...",
        help="agent labels (default: 1,2)",
    )
    parser.add_argument(
        "--messages", default=None, metavar="M,M,...",
        help="messages for gossip algorithms (binary strings)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="replicate seed: derives the graph, the sample stream "
             "and the strategy RNG (default: 0)",
    )
    parser.add_argument(
        "--n-bound", type=int, default=None,
        help="known size bound (default: the graph size)",
    )
    parser.add_argument(
        "--strategy", default="hill_climb", choices=sorted(STRATEGIES),
        help="search strategy (default: hill_climb)",
    )
    parser.add_argument(
        "--budget", type=int, default=32, metavar="K",
        help="maximum scenario evaluations (default: 32)",
    )
    parser.add_argument(
        "--objective", default="worst", choices=OBJECTIVES,
        help="maximize ('worst', the adversary) or minimize ('best') "
             "the metric (default: worst)",
    )
    parser.add_argument(
        "--metric", default="rounds",
        help="record metric to optimize (default: rounds)",
    )
    parser.add_argument(
        "--max-delay", type=int, default=16, metavar="D",
        help="wake-delay bound of the scenario space (default: 16)",
    )
    parser.add_argument(
        "--dormant-pct", type=int, default=25, metavar="PCT",
        help="dormancy percentage of sampled scenarios (default: 25)",
    )
    parser.add_argument(
        "--faults", default="none", metavar="STRATEGY",
        help="crash-fault axis: 'crash-random:<k>:<max_round>' makes "
             "the crash schedule a searched scenario coordinate; a "
             "fixed 'crash:<label>@<round>+...' applies to every "
             "candidate (default: none)",
    )
    parser.add_argument(
        "--dynamics", default="none", metavar="STRATEGY",
        help="edge-liveness adversary applied to every candidate: "
             "'ring-sweep[:<period>]' or 'ring-random' "
             "(default: none)",
    )
    parser.add_argument(
        "--batch", type=int, default=8, metavar="B",
        help="candidate evaluations per search round (default: 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for candidate evaluation (default: 1)",
    )
    parser.add_argument(
        "--backend", default=None,
        choices=sorted(set(BACKENDS) - {"manifest"}),
        help="execution backend for candidate batches (default: "
             "serial for --workers 1, process otherwise)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable persistence (the search cannot resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoint sidecar in the store "
             "(falls back to plain cache replay if none exists)",
    )
    parser.add_argument(
        "--stop-after-rounds", type=int, default=None, metavar="R",
        help="stop after R total search rounds (a deterministic "
             "interruption point; resume later with --resume)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="R",
        help="persist the resume checkpoint every R rounds "
             "(default: 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-round progress lines",
    )
    _add_events_argument(parser)
    _add_metrics_argument(parser)
    return parser


def search_main(argv: list[str]) -> int:
    from ..analysis.tables import ResultTable
    from .search import SearchSpec, run_search

    args = build_search_parser().parse_args(argv)
    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        if args.resume and args.no_cache:
            raise ValueError(
                "--resume needs the result store (drop --no-cache)"
            )
        if (
            args.stop_after_rounds is not None
            and args.stop_after_rounds < 1
        ):
            raise ValueError("--stop-after-rounds must be >= 1")
        if args.checkpoint_every < 1:
            raise ValueError("--checkpoint-every must be >= 1")
        spec = SearchSpec(
            algorithm=args.algorithm,
            family=args.family,
            n=args.size,
            labels=_parse_int_list(args.labels),
            messages=(
                None
                if args.messages is None
                else _parse_str_list(args.messages)
            ),
            seed=args.seed,
            n_bound=args.n_bound,
            strategy=args.strategy,
            budget=args.budget,
            objective=args.objective,
            metric=args.metric,
            max_delay=args.max_delay,
            dormant_pct=args.dormant_pct,
            faults=args.faults,
            dynamics=args.dynamics,
            batch=args.batch,
        )
    except ValueError as exc:  # SpecError is a ValueError
        print(f"error: {exc}")
        return 2

    console = ConsoleProgressProcessor(quiet=args.quiet)

    def report_progress(
        round_index, attempts, budget, best_value, simulated, cached
    ) -> None:
        if args.quiet:
            return
        best = "-" if best_value is None else str(best_value)
        console.note(
            f"[round {round_index}] evaluated {attempts}/{budget}  "
            f"best {args.metric}={best}  "
            f"(simulated {simulated}, cached {cached})"
        )

    trace = _trace_processor(args, "search")
    reg = _metrics_registry_for(args, "search")
    started = _time.monotonic()
    try:
        with _event_stream.attached(trace), \
                _metrics_registry.attached(reg):
            result = run_search(
                spec,
                workers=args.workers,
                store=None if args.no_cache else args.cache_dir,
                progress=report_progress,
                backend=args.backend,
                resume=args.resume,
                checkpoint_every=args.checkpoint_every,
                max_rounds=args.stop_after_rounds,
            )
    except ValueError as exc:
        # BackendError (e.g. the manifest backend) and SpecError (e.g.
        # a --metric the algorithm's records don't carry, only
        # detectable once the first record exists) are both malformed
        # requests, not crashes.
        print(f"error: {exc}")
        return 2
    elapsed = _time.monotonic() - started

    table = ResultTable(
        f"search: {args.strategy} ({args.objective} {args.metric}) on "
        f"{args.algorithm}/{args.family} n={args.size} "
        f"(spec {spec.spec_hash()})",
        ["round", f"best {args.metric}", "incumbent scenario"],
    )
    for rec in result.records:
        if rec.get("kind") != "round":
            continue
        scenario = f"{rec['placement']} / {rec['wake_schedule']}"
        if "faults" in rec:
            scenario += f" / {rec['faults']}"
        table.add_row(
            rec["search_round"],
            query_mod.format_value(
                rec["metrics"].get(f"best_{args.metric}")
            ),
            scenario,
        )
    table.emit()
    if result.best is not None:
        best_scenario = (
            f"{result.best['placement']} / "
            f"{result.best['wake_schedule']}"
        )
        if result.best.get("faults", "none") != "none":
            best_scenario += f" / {result.best['faults']}"
        print(
            f"worst case found: {args.metric}="
            f"{query_mod.format_value(result.best_value)}  "
            f"scenario {best_scenario}"
        )
    else:
        print("no successful scenario evaluation")
    print(
        f"evaluated: {result.evaluated}/{spec.budget}  "
        f"simulated: {result.simulated}  cached: {result.cached}  "
        f"failed: {result.failed}  rounds: {result.rounds}  "
        f"({elapsed:.1f}s)"
    )
    if not args.no_cache:
        print(
            f"result store: {args.cache_dir} (re-run resumes from the "
            "cached frontier)"
        )
    if trace is not None:
        print(f"event trace: {trace.path} ({trace.lines} events)")
    _finish_metrics(args, reg)
    # Same contract as sweep/worker: 0 only when every executed
    # candidate evaluation succeeded (and something was found).
    return 0 if result.best is not None and result.failed == 0 else 1


# ----------------------------------------------------------------------
# ``python -m repro manifest`` — work-manifest inspection.
# ----------------------------------------------------------------------

def manifest_main(argv: list[str]) -> int:
    from ..analysis.tables import ResultTable
    from .backends import manifest as manifest_mod

    parser = argparse.ArgumentParser(
        prog="python -m repro manifest",
        description="Inspect the work manifests of multi-host sweeps: "
                    "chunk progress per spec and the age of every "
                    "in-flight claim (a claim far older than a chunk's "
                    "runtime belongs to a crashed worker — delete its "
                    "claims/ file to make the chunk claimable again).",
    )
    parser.add_argument(
        "command", choices=("status",),
        help="'status': chunk counts and stale-claim ages",
    )
    parser.add_argument(
        "--manifest-dir", default=".repro-cache", metavar="DIR",
        help="manifest/store root to scan (default: .repro-cache)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="HASH",
        help="restrict to one spec (hash or unique prefix)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the status as JSON instead of a table",
    )
    args = parser.parse_args(argv)
    manifests = manifest_mod.scan_manifests(args.manifest_dir)
    if args.spec is not None:
        manifests = [
            m for m in manifests if m[0].startswith(args.spec)
        ]
    if not manifests:
        print(
            f"error: no work manifests under {args.manifest_dir!r}"
            + (f" matching {args.spec!r}" if args.spec else "")
        )
        return 2
    now = _time.time()
    statuses = []
    for spec_hash, mdir, payload in manifests:
        status = manifest_mod.detailed_status(mdir, payload, now=now)
        status["spec_hash"] = spec_hash
        statuses.append(status)
    if args.as_json:
        print(_json.dumps(statuses, sort_keys=True, indent=1))
        return 0
    table = ResultTable(
        f"work manifests under {args.manifest_dir}",
        ["spec", "chunks", "done", "in flight", "pending",
         "oldest claim"],
    )
    for status in statuses:
        ages = [c["age_s"] for c in status["in_flight"]]
        table.add_row(
            status["spec_hash"],
            status["chunks"],
            status["done"],
            len(status["in_flight"]),
            status["pending"],
            f"{max(ages):.0f}s" if ages else "-",
        )
    table.emit()
    for status in statuses:
        for claim in status["in_flight"]:
            # A "skewed" claim was stamped by a worker clock running
            # ahead of ours; its true age is unknowable but >= 0, so
            # it is never evidence of staleness.
            note = " [skewed]" if claim.get("skewed") else ""
            print(
                f"  in flight: spec {status['spec_hash']} chunk "
                f"{claim['chunk']} claimed by {claim['worker']} "
                f"({claim['age_s']:.0f}s ago){note}"
            )
    return 0


# ----------------------------------------------------------------------
# ``python -m repro query`` — cached-study analysis.
# ----------------------------------------------------------------------

def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro query",
        description="Filter and aggregate cached sweep records "
                    "without re-running any trials.",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="HASH",
        help="restrict to one cached spec (hash or unique prefix)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_specs",
        help="list cached experiments instead of querying records",
    )
    parser.add_argument(
        "--where", action="append", default=[], metavar="FIELD=VALUE",
        help="filter clause (repeatable); fields are record axes "
             "(n, family, wake_schedule, placement, adversary, "
             "faults, dynamics, seed, ...) or metrics (rounds, moves, "
             "events, survivors_gathered, crashed_labels, ...); "
             "note the store only ever holds successful trials "
             "(failures re-run instead of being cached)",
    )
    parser.add_argument(
        "--group-by", default="", metavar="F1,F2,...",
        help="fields to group by (default: no grouping)",
    )
    parser.add_argument(
        "--metrics", default="rounds", metavar="M1,M2,...",
        help="metrics to aggregate (default: rounds)",
    )
    parser.add_argument(
        "--stats", default="count,mean,p50,p95,max",
        metavar="S1,S2,...",
        help=f"aggregate statistics, from {query_mod.STATS} "
             "(default: count,mean,p50,p95,max)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit rows as JSON instead of a table",
    )
    return parser


def query_main(argv: list[str]) -> int:
    from ..analysis.tables import ResultTable

    args = build_query_parser().parse_args(argv)
    # With --json, stdout carries nothing but JSON (pipeable into
    # jq); errors and the summary line go to stderr in that mode.
    err_stream = _sys.stderr if args.as_json else _sys.stdout
    store = ResultStore(args.cache_dir)
    specs = store.list_specs()
    if not specs:
        print(
            f"error: no cached results under {args.cache_dir!r}",
            file=err_stream,
        )
        return 2

    if args.list_specs:
        if (
            args.where
            or args.group_by
            or args.metrics != "rounds"
            or args.stats != "count,mean,p50,p95,max"
        ):
            print(
                "error: --list only composes with --spec; "
                "--where/--group-by/--metrics/--stats filter and "
                "aggregate records, not the spec listing",
                file=err_stream,
            )
            return 2
        if args.spec is not None:
            specs = [
                e for e in specs
                if e["spec_hash"].startswith(args.spec)
            ]
            if not specs:
                print(
                    "error: no cached spec matches prefix "
                    f"{args.spec!r}",
                    file=err_stream,
                )
                return 2
        if args.as_json:
            print(_json.dumps(specs, sort_keys=True, indent=1))
            return 0
        table = ResultTable(
            f"cached experiments in {args.cache_dir}",
            ["spec", "algorithm", "family", "trials"],
        )
        for entry in specs:
            spec = entry["spec"] or {}
            table.add_row(
                entry["spec_hash"],
                spec.get("algorithm", "?"),
                spec.get("family", "?"),
                entry["trials"],
            )
        table.emit()
        return 0

    try:
        where = query_mod.parse_where(args.where)
        group_by = _parse_str_list(args.group_by)
        metrics = _parse_str_list(args.metrics)
        stats = _parse_str_list(args.stats)
        # One streaming pass, shard by shard: the store never
        # materializes a whole spec's records.  Decomposable stats
        # keep O(groups) running aggregates; exact percentiles keep
        # one numeric value per aggregated record — never full dicts.
        aggregator = query_mod.StreamAggregator(
            where, group_by=group_by, metrics=metrics, stats=stats
        )
        for record in store.iter_records(args.spec):
            aggregator.add(record)
        if not aggregator.records:
            print(
                "error: the matching store entries hold no records "
                "(failed trials are never cached)",
                file=err_stream,
            )
            return 2
        rows = aggregator.rows()
    except ValueError as exc:  # QueryError, ambiguous --spec prefix
        print(f"error: {exc}", file=err_stream)
        return 2

    if args.as_json:
        print(_json.dumps(rows, sort_keys=True, indent=1))
    else:
        header = list(group_by) + ["count"]
        for metric in metrics:
            header.extend(
                f"{metric}.{s}" for s in stats if s != "count"
            )
        clauses = " ".join(f"{k}={v}" for k, v in sorted(where.items()))
        table = ResultTable(
            "query: " + (clauses if clauses else "all records"),
            header,
        )
        for row in rows:
            # Group values go through format_value too: a field can
            # be absent (None) on part of a heterogeneous cache, and
            # unknown-bound round counts overwhelm plain str().
            cells = [
                query_mod.format_value(row["group"][f])
                for f in group_by
            ]
            cells.append(row["count"])
            for metric in metrics:
                cells.extend(
                    query_mod.format_value(row[metric][s])
                    for s in stats if s != "count"
                )
            table.add_row(*cells)
        table.emit()
    print(
        f"records: {aggregator.records}  matched: {aggregator.matched}  "
        f"aggregated: {aggregator.aggregated}  groups: {len(rows)}",
        file=err_stream,
    )
    return 0


# ----------------------------------------------------------------------
# ``python -m repro compact`` — store maintenance.
# ----------------------------------------------------------------------

def compact_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro compact",
        description="Rewrite a result store into canonical shards, "
                    "healing corrupt or orphaned files.",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="records per shard (default: the store's default)",
    )
    args = parser.parse_args(argv)
    kwargs = {}
    if args.shard_size is not None:
        kwargs["shard_size"] = args.shard_size
    try:
        store = ResultStore(args.cache_dir, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if not store.list_specs():
        print(f"error: no cached results under {args.cache_dir!r}")
        return 2
    stats = store.compact()
    print(
        f"compacted {stats['specs']} spec(s), {stats['records']} "
        f"record(s); removed {stats['removed']} stale file(s)"
    )
    return 0


# ----------------------------------------------------------------------
# ``python -m repro worker`` — one participant of a multi-host sweep.
# ----------------------------------------------------------------------

def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Claim and execute trial chunks from a shared "
                    "work manifest.  Start any number of workers with "
                    "identical spec arguments and a shared "
                    "--manifest-dir; each writes ordinary v2 shards "
                    "into its own --cache-dir, which 'python -m repro "
                    "merge' later unions into one canonical store.",
    )
    _add_spec_arguments(parser)
    parser.add_argument(
        "--manifest-dir", default=None, metavar="DIR",
        help="shared manifest root all workers coordinate through "
             "(default: --cache-dir)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="this worker's own result store (default: .repro-cache)",
    )
    parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="name recorded in claim files (default: worker-<pid>)",
    )
    parser.add_argument(
        "--chunk-size", default="auto", metavar="N|auto",
        help="trials per manifest chunk, applied when this worker "
             "creates the manifest; 'auto' sizes chunks from the "
             "spec's per-trial cost estimate, refined by any metrics "
             "sidecars under the manifest root (default: auto)",
    )
    parser.add_argument(
        "--max-chunks", type=int, default=None, metavar="N",
        help="stop after claiming N chunks (default: run until no "
             "chunk is claimable)",
    )
    parser.add_argument(
        "--steal", action="store_true",
        help="take over chunks whose claims are older than "
             "--claim-ttl (a preempted/crashed worker's), and keep "
             "polling until every chunk has a result instead of "
             "exiting while foreign claims are in flight",
    )
    parser.add_argument(
        "--claim-ttl", type=float, default=None, metavar="SECONDS",
        help="age at which an in-flight claim counts as abandoned "
             "(default: 300; only meaningful with --steal)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="how often a --steal worker re-checks in-flight foreign "
             "claims (default: 0.5)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-chunk progress lines",
    )
    _add_events_argument(parser)
    _add_metrics_argument(parser)
    return parser


def worker_main(argv: list[str]) -> int:
    from .backends import manifest as manifest_mod

    args = build_worker_parser().parse_args(argv)
    try:
        if args.chunk_size == "auto":
            chunk_size = None  # plan from the spec's cost estimate
        else:
            try:
                chunk_size = int(args.chunk_size)
            except ValueError:
                raise ValueError(
                    "--chunk-size must be an integer or 'auto': "
                    f"{args.chunk_size!r}"
                ) from None
            if chunk_size < 1:
                raise ValueError("--chunk-size must be >= 1")
        if args.max_chunks is not None and args.max_chunks < 1:
            raise ValueError("--max-chunks must be >= 1")
        if args.claim_ttl is not None and not args.steal:
            raise ValueError("--claim-ttl only applies with --steal")
        if args.claim_ttl is not None and args.claim_ttl < 0:
            raise ValueError("--claim-ttl must be >= 0")
        if args.poll_interval <= 0:
            raise ValueError("--poll-interval must be > 0")
        spec = _spec_from_args(args)
        manifest_root = args.manifest_dir or args.cache_dir
        mdir, payload = manifest_mod.ensure_manifest(
            manifest_root, spec, chunk_size=chunk_size
        )
        # Chunks that previously captured a failure become claimable
        # again: failures are retried, never replayed (the same
        # contract the result store honors).
        manifest_mod.reset_failed_chunks(mdir, payload)
    except (ValueError, manifest_mod.ManifestError) as exc:
        print(f"error: {exc}")
        return 2
    worker_id = args.worker_id or f"worker-{_os.getpid()}"
    trace = _trace_processor(args, "worker")
    reg = _metrics_registry_for(args, worker_id)
    with _event_stream.attached(trace), _metrics_registry.attached(reg):
        code = _worker_run(args, spec, mdir, payload, worker_id)
    if trace is not None:
        print(f"event trace: {trace.path} ({trace.lines} events)")
    _finish_metrics(args, reg)
    return code


def _worker_run(args, spec, mdir, payload, worker_id) -> int:
    """The claim/execute loop of ``worker_main`` (events attached)."""
    from ..explore.uxs import UXSProvider
    from .backends import manifest as manifest_mod

    emit = _event_stream.current()
    reg = _metrics_registry.current()
    chunks: list[list[str]] = payload["chunks"]
    by_key = {t.key: t for t in spec.trials()}
    store = ResultStore(args.cache_dir)
    provider = UXSProvider()
    # Chunk lines go through the console processor: concurrent workers
    # of one study share the terminal's stderr, and ``note`` writes a
    # whole line in one locked call so their output can interleave only
    # at line boundaries, never mid-line.
    console = ConsoleProgressProcessor(quiet=args.quiet)
    meter = console.meter
    ok_records: dict[str, dict] = dict(store.load(spec))
    claimed = 0
    stolen = 0
    executed = 0
    failed = 0
    steal_ttl = None
    if args.steal:
        steal_ttl = (
            manifest_mod.DEFAULT_CLAIM_TTL
            if args.claim_ttl is None
            else args.claim_ttl
        )
    # Saving re-serializes every accumulated shard, so doing it after
    # *every* chunk turns a long sweep quadratic; throttle to one save
    # per interval (a crash re-runs at most a few seconds of chunks,
    # and their manifest results survive for the next worker's exit
    # sweep below).
    save_interval = 5.0
    last_save = _time.monotonic()
    # A --steal worker only gives up when unfinished chunks stop
    # making progress for far longer than any claim could stay both
    # live and un-stealable (claims are stealable once past the TTL,
    # so a healthy fleet always progresses eventually).
    idle_timeout = (steal_ttl or 0.0) + 600.0
    idle_since = _time.monotonic()
    last_unfinished = len(chunks)
    while args.max_chunks is None or claimed < args.max_chunks:
        if reg is None:
            claim = manifest_mod.claim_next(
                mdir, len(chunks), worker_id, steal_ttl=steal_ttl
            )
        else:
            with reg.timer("runner.manifest.claim_seconds"):
                claim = manifest_mod.claim_next(
                    mdir, len(chunks), worker_id, steal_ttl=steal_ttl
                )
        if claim is None:
            if not args.steal:
                break
            # Nothing claimable, but the sweep may not be finished:
            # foreign claims are in flight.  Wait for their results to
            # land — or for their claims to age past the TTL, at which
            # point the next claim_next above steals them.
            unfinished = sum(
                1 for i in range(len(chunks))
                if manifest_mod.read_chunk_result(mdir, i) is None
            )
            if unfinished == 0:
                break
            if unfinished < last_unfinished:
                last_unfinished = unfinished
                idle_since = _time.monotonic()
            elif _time.monotonic() - idle_since > idle_timeout:
                print(
                    f"error: {unfinished} chunk(s) still in flight "
                    f"made no progress for {idle_timeout:.0f}s; "
                    "their claims are being refreshed elsewhere or "
                    "the shared filesystem is stuck"
                )
                return 1
            _time.sleep(args.poll_interval)
            continue
        chunk_id, token, was_stolen = claim
        claimed += 1
        stolen += 1 if was_stolen else 0
        idle_since = _time.monotonic()
        if reg is not None:
            reg.counter("runner.manifest.chunks.claimed").value += 1
            if was_stolen:
                reg.counter("runner.manifest.chunks.stolen").value += 1
        if emit is not None:
            emit.emit(_EvBackendChunkClaimed(
                chunk=chunk_id, chunks=len(chunks), worker=worker_id,
                spec_hash=payload["spec_hash"],
            ))
        try:
            records = manifest_mod.execute_chunk(
                payload["spec_hash"], chunks[chunk_id], by_key, provider
            )
        except manifest_mod.ManifestError as exc:
            print(f"error: {exc}")
            return 2
        manifest_mod.write_chunk_result(
            mdir, chunk_id, payload["spec_hash"], records, token=token
        )
        executed += len(records)
        failed += sum(1 for r in records if not r["ok"])
        for record in records:
            meter.simulated += 1
            if record["ok"]:
                ok_records[record["key"]] = record
        if (
            ok_records
            and _time.monotonic() - last_save >= save_interval
        ):
            store.save(spec, ok_records)
            last_save = _time.monotonic()
        if not args.quiet:
            status = manifest_mod.manifest_status(mdir, payload)
            elapsed = max(_time.monotonic() - meter.started, 1e-9)
            taken = " (stolen)" if was_stolen else ""
            console.note(
                f"[chunk {chunk_id}]{taken} {len(records)} trial(s)  "
                f"done {status['done']}/{status['chunks']} chunks  "
                f"({meter.simulated / elapsed:.1f} trials/s)"
            )
    # Exit sweep: fold in every chunk result that has landed —
    # including chunks executed by workers that crashed before their
    # own (throttled) save — so any one worker exiting normally after
    # the last result is enough for 'merge' to see the whole study.
    # Records are deterministic, so imports never disagree with ours.
    for chunk_id in range(len(chunks)):
        records = manifest_mod.read_chunk_result(mdir, chunk_id)
        for record in records or ():
            if record["ok"]:
                ok_records.setdefault(record["key"], record)
    # Failures are never stored (they re-run), as in the engine.
    if ok_records:
        store.save(spec, ok_records)
    status = manifest_mod.manifest_status(mdir, payload)
    if reg is not None:
        # One sidecar per participant next to the manifest, so
        # 'python -m repro merge --metrics' can fold the fleet.
        sidecar = manifest_mod.write_metrics_sidecar(
            mdir, worker_id, reg.snapshot()
        )
        print(f"metrics sidecar: {sidecar}")
    print(
        f"worker {worker_id}: claimed {claimed} chunk(s) "
        f"({stolen} stolen), executed {executed} trial(s), "
        f"failed {failed}; manifest "
        f"{status['done']}/{status['chunks']} chunks done"
    )
    print(f"result store: {args.cache_dir}")
    return 0 if failed == 0 else 1


# ----------------------------------------------------------------------
# ``python -m repro merge`` — union sibling stores.
# ----------------------------------------------------------------------

def merge_main(argv: list[str]) -> int:
    import warnings as _warnings

    parser = argparse.ArgumentParser(
        prog="python -m repro merge",
        description="Union sibling result stores (e.g. per-worker "
                    "stores of a manifest sweep) into one canonical "
                    "store.  Duplicate trial keys are last-write-wins "
                    "in source order; corrupt shards are skipped; "
                    "legacy v1 sources land as v2 shards.",
    )
    parser.add_argument(
        "--into", required=True, metavar="DIR",
        help="destination store (created if missing; its own records "
             "participate as the base layer)",
    )
    parser.add_argument(
        "sources", nargs="+", metavar="SRC",
        help="source store directories, lowest precedence first",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="records per destination shard (default: the store's "
             "default)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="OUT",
        help="fold every per-worker metrics sidecar found under the "
             "source stores into one fleet-wide snapshot at OUT",
    )
    args = parser.parse_args(argv)
    kwargs = {}
    if args.shard_size is not None:
        kwargs["shard_size"] = args.shard_size
    try:
        dest = ResultStore(args.into, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if not any(ResultStore(src).list_specs() for src in args.sources):
        print("error: no cached results in any source store")
        return 2
    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        stats = dest.merge_from(args.sources)
    for warning in caught:
        print(f"warning: {warning.message}", file=_sys.stderr)
    print(
        f"merged {stats['specs']} spec(s), {stats['records']} "
        f"record(s) into {args.into}; {stats['duplicates']} "
        f"conflicting duplicate(s), {stats['skipped']} spec(s) skipped"
    )
    if args.metrics:
        snapshot, count = _metrics_snapshot.fold_sidecars(
            args.sources, source="merged"
        )
        if count:
            _metrics_snapshot.write_snapshot(args.metrics, snapshot)
            print(
                f"metrics: folded {count} sidecar snapshot(s) into "
                f"{args.metrics}"
            )
        else:
            print(
                "warning: no metrics sidecars found under the source "
                "stores (workers write them when run with --metrics)",
                file=_sys.stderr,
            )
    return 0


# ----------------------------------------------------------------------
# ``python -m repro trace`` — event-trace inspection.
# ----------------------------------------------------------------------

def trace_main(argv: list[str]) -> int:
    """Validate/replay/summarize ``--events`` JSONL traces.

    Thin delegator so ``python -m repro trace`` dispatches like every
    other engine command; the implementation lives with the event
    machinery in :mod:`repro.events.cli`.
    """
    from ..events.cli import trace_main as _trace_main

    return _trace_main(argv)


# ----------------------------------------------------------------------
# ``python -m repro metrics`` — metrics-snapshot inspection.
# ----------------------------------------------------------------------

def metrics_main(argv: list[str]) -> int:
    """Summarize/export/diff ``--metrics`` snapshot files.

    Thin delegator so ``python -m repro metrics`` dispatches like
    every other engine command; the implementation lives with the
    metrics machinery in :mod:`repro.metrics.cli`.
    """
    from ..metrics.cli import metrics_main as _metrics_main

    return _metrics_main(argv)


# ----------------------------------------------------------------------
# ``python -m repro corpus`` — worst-case scenario corpora.
# ----------------------------------------------------------------------

def corpus_main(argv: list[str]) -> int:
    """Export/replay committed worst-case scenario corpora.

    Thin delegator so ``python -m repro corpus`` dispatches like every
    other engine command; the implementation lives in
    :mod:`repro.runner.corpus`.
    """
    from .corpus import corpus_main as _corpus_main

    return _corpus_main(argv)
