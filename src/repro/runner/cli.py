"""``python -m repro sweep|query|compact`` — engine CLI front-ends.

``sweep`` runs a declarative trial grid with progress output, prints a
result table, and memoizes completed trials under ``--cache-dir`` so a
repeated invocation with the same spec does zero re-simulation::

    python -m repro sweep --sizes 4,6,8 --labels 1,2 --workers 4
    python -m repro sweep --algorithm gossip_known --family ring \\
        --sizes 4,6 --labels 1,2 --messages 101,01 --cache-dir .repro-cache
    python -m repro sweep --sizes 6 --wake simultaneous,staggered:2 \\
        --placement spread,eccentric --adversary fixed,worst_of:4

``query`` filters and aggregates the cached records without
re-simulating anything::

    python -m repro query --list
    python -m repro query --where n=6 --where wake_schedule=staggered:2 \\
        --group-by placement --metrics rounds --stats mean,p95,max

``compact`` rewrites the store into canonical shards (healing corrupt
or orphaned shard files).

Sweep exit status is 0 when every trial succeeded, 1 otherwise (failed
trials are reported in the table, never crash the sweep).  Query and
compact exit 0 on success and 2 on a malformed request.
"""

from __future__ import annotations

import argparse
import json as _json
import sys as _sys

from . import query as query_mod
from .engine import run_experiment
from .spec import PLACEMENTS, ExperimentSpec
from .store import ResultStore
from .trial import ALGORITHMS, FAMILIES


def _parse_int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.replace(";", ",").split(",") if part)


def _parse_str_list(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_sets(text: str, caster) -> tuple[tuple, ...]:
    """Parse ``"1,2;3,4"`` into ``((1, 2), (3, 4))``."""
    out = []
    for group in text.split(";"):
        group = group.strip()
        if group:
            out.append(tuple(caster(v) for v in group.split(",")))
    return tuple(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--algorithm", default="gather_known", choices=sorted(ALGORITHMS),
        help="algorithm to run (default: gather_known)",
    )
    parser.add_argument(
        "--family", default="ring", choices=sorted(FAMILIES),
        help="graph family (default: ring)",
    )
    parser.add_argument(
        "--sizes", type=_parse_int_list, default=(4, 6, 8),
        metavar="N,N,...", help="graph sizes (default: 4,6,8)",
    )
    parser.add_argument(
        "--labels", default="1,2", metavar="L,L[;L,L]",
        help="agent label sets, ';'-separated (default: 1,2)",
    )
    parser.add_argument(
        "--messages", default=None, metavar="M,M[;M,M]",
        help="message sets for gossip algorithms (binary strings)",
    )
    parser.add_argument(
        "--seeds", type=_parse_int_list, default=(0,),
        metavar="S,S,...", help="replicate seeds (default: 0)",
    )
    parser.add_argument(
        "--n-bound", type=int, default=None,
        help="known size bound (default: each trial's graph size)",
    )
    parser.add_argument(
        "--placement", default="default", metavar="P,P,...",
        help="agent placement strategies, ','-separated: "
             f"{'|'.join(PLACEMENTS)} (default: default)",
    )
    parser.add_argument(
        "--wake", default="simultaneous", metavar="W,W,...",
        help="wake-schedule strategies, ','-separated: simultaneous, "
             "staggered:<gap>, single_awake[:i], "
             "random[:max_delay[:pct]] (default: simultaneous)",
    )
    parser.add_argument(
        "--adversary", default="fixed", metavar="A,A,...",
        help="adversary strategies, ','-separated: fixed, "
             "worst_of:<k>, best_of:<k> (default: fixed)",
    )
    parser.add_argument(
        "--fixed-graph-seed", action="store_true",
        help="pass replicate seeds to the generator verbatim instead "
             "of deriving a per-trial seed",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result store",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-trial progress lines",
    )
    return parser


def sweep_main(argv: list[str]) -> int:
    # Imported lazily: repro.analysis.sweeps itself imports this
    # package, and the table renderer is only needed by the CLI.
    from ..analysis.tables import ResultTable

    args = build_parser().parse_args(argv)
    try:
        label_sets = _parse_sets(args.labels, int)
        message_sets = (
            None
            if args.messages is None
            else _parse_sets(args.messages, str)
        )
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        spec = ExperimentSpec(
            algorithm=args.algorithm,
            family=args.family,
            sizes=args.sizes,
            label_sets=label_sets,
            message_sets=message_sets,
            seeds=args.seeds,
            n_bound=args.n_bound,
            placements=_parse_str_list(args.placement),
            wake_schedules=_parse_str_list(args.wake),
            adversaries=_parse_str_list(args.adversary),
            graph_seed_mode="fixed" if args.fixed_graph_seed else "derived",
        )
    except ValueError as exc:  # SpecError is a ValueError
        print(f"error: {exc}")
        return 2

    def report_progress(done: int, total: int, rec: dict, cache: bool) -> None:
        if args.quiet:
            return
        status = "cached" if cache else (
            "ok" if rec["ok"] else "FAILED"
        )
        print(f"[{done}/{total}] {rec['key']}  {status}")

    result = run_experiment(
        spec,
        workers=args.workers,
        store=None if args.no_cache else args.cache_dir,
        progress=report_progress,
    )

    table = ResultTable(
        f"sweep: {args.algorithm} on {args.family} "
        f"(spec {spec.spec_hash()})",
        ["n", "labels", "scenario", "seed", "status",
         "rounds", "moves", "events"],
    )
    for rec in result.records:
        metrics = rec["metrics"]
        table.add_row(
            rec["n"],
            "-".join(str(v) for v in rec["labels"]),
            f"{rec['placement']}/{rec['wake_schedule']}/{rec['adversary']}",
            rec["seed"],
            "ok" if rec["ok"] else "FAILED",
            metrics.get("rounds", "-"),
            metrics.get("moves", "-"),
            metrics.get("events", "-"),
        )
    table.emit()
    print(
        f"trials: {len(result.records)}  "
        f"simulated: {result.executed}  cached: {result.cached}  "
        f"failed: {result.failed}"
    )
    if not args.no_cache:
        print(f"result store: {args.cache_dir} (delete to force re-runs)")
    for rec in result.failures():
        print(f"  FAILED {rec['key']}: {rec['error']}")
    return 0 if result.failed == 0 else 1


# ----------------------------------------------------------------------
# ``python -m repro query`` — cached-study analysis.
# ----------------------------------------------------------------------

def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro query",
        description="Filter and aggregate cached sweep records "
                    "without re-running any trials.",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="HASH",
        help="restrict to one cached spec (hash or unique prefix)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_specs",
        help="list cached experiments instead of querying records",
    )
    parser.add_argument(
        "--where", action="append", default=[], metavar="FIELD=VALUE",
        help="filter clause (repeatable); fields are record axes "
             "(n, family, wake_schedule, placement, adversary, "
             "seed, ...) or metrics (rounds, moves, events, ...); "
             "note the store only ever holds successful trials "
             "(failures re-run instead of being cached)",
    )
    parser.add_argument(
        "--group-by", default="", metavar="F1,F2,...",
        help="fields to group by (default: no grouping)",
    )
    parser.add_argument(
        "--metrics", default="rounds", metavar="M1,M2,...",
        help="metrics to aggregate (default: rounds)",
    )
    parser.add_argument(
        "--stats", default="count,mean,p50,p95,max",
        metavar="S1,S2,...",
        help=f"aggregate statistics, from {query_mod.STATS} "
             "(default: count,mean,p50,p95,max)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit rows as JSON instead of a table",
    )
    return parser


def query_main(argv: list[str]) -> int:
    from ..analysis.tables import ResultTable

    args = build_query_parser().parse_args(argv)
    # With --json, stdout carries nothing but JSON (pipeable into
    # jq); errors and the summary line go to stderr in that mode.
    err_stream = _sys.stderr if args.as_json else _sys.stdout
    store = ResultStore(args.cache_dir)
    specs = store.list_specs()
    if not specs:
        print(
            f"error: no cached results under {args.cache_dir!r}",
            file=err_stream,
        )
        return 2

    if args.list_specs:
        if (
            args.where
            or args.group_by
            or args.metrics != "rounds"
            or args.stats != "count,mean,p50,p95,max"
        ):
            print(
                "error: --list only composes with --spec; "
                "--where/--group-by/--metrics/--stats filter and "
                "aggregate records, not the spec listing",
                file=err_stream,
            )
            return 2
        if args.spec is not None:
            specs = [
                e for e in specs
                if e["spec_hash"].startswith(args.spec)
            ]
            if not specs:
                print(
                    "error: no cached spec matches prefix "
                    f"{args.spec!r}",
                    file=err_stream,
                )
                return 2
        if args.as_json:
            print(_json.dumps(specs, sort_keys=True, indent=1))
            return 0
        table = ResultTable(
            f"cached experiments in {args.cache_dir}",
            ["spec", "algorithm", "family", "trials"],
        )
        for entry in specs:
            spec = entry["spec"] or {}
            table.add_row(
                entry["spec_hash"],
                spec.get("algorithm", "?"),
                spec.get("family", "?"),
                entry["trials"],
            )
        table.emit()
        return 0

    try:
        where = query_mod.parse_where(args.where)
        records = list(store.iter_records(args.spec))
        if not records:
            print(
                "error: the matching store entries hold no records "
                "(failed trials are never cached)",
                file=err_stream,
            )
            return 2
        group_by = _parse_str_list(args.group_by)
        metrics = _parse_str_list(args.metrics)
        query_mod.require_known_fields(
            records, list(where) + list(group_by) + list(metrics)
        )
        matched = query_mod.filter_records(records, where)
        # The store only ever persists ok records (failures are
        # retried, not cached), but guard anyway for other backends.
        aggregated = [r for r in matched if r.get("ok")]
        stats = _parse_str_list(args.stats)
        rows = query_mod.aggregate(
            aggregated, group_by=group_by, metrics=metrics, stats=stats
        )
    except ValueError as exc:  # QueryError, ambiguous --spec prefix
        print(f"error: {exc}", file=err_stream)
        return 2

    if args.as_json:
        print(_json.dumps(rows, sort_keys=True, indent=1))
    else:
        header = list(group_by) + ["count"]
        for metric in metrics:
            header.extend(
                f"{metric}.{s}" for s in stats if s != "count"
            )
        clauses = " ".join(f"{k}={v}" for k, v in sorted(where.items()))
        table = ResultTable(
            "query: " + (clauses if clauses else "all records"),
            header,
        )
        for row in rows:
            # Group values go through format_value too: a field can
            # be absent (None) on part of a heterogeneous cache, and
            # unknown-bound round counts overwhelm plain str().
            cells = [
                query_mod.format_value(row["group"][f])
                for f in group_by
            ]
            cells.append(row["count"])
            for metric in metrics:
                cells.extend(
                    query_mod.format_value(row[metric][s])
                    for s in stats if s != "count"
                )
            table.add_row(*cells)
        table.emit()
    print(
        f"records: {len(records)}  matched: {len(matched)}  "
        f"aggregated: {len(aggregated)}  groups: {len(rows)}",
        file=err_stream,
    )
    return 0


# ----------------------------------------------------------------------
# ``python -m repro compact`` — store maintenance.
# ----------------------------------------------------------------------

def compact_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro compact",
        description="Rewrite a result store into canonical shards, "
                    "healing corrupt or orphaned files.",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="records per shard (default: the store's default)",
    )
    args = parser.parse_args(argv)
    kwargs = {}
    if args.shard_size is not None:
        kwargs["shard_size"] = args.shard_size
    try:
        store = ResultStore(args.cache_dir, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if not store.list_specs():
        print(f"error: no cached results under {args.cache_dir!r}")
        return 2
    stats = store.compact()
    print(
        f"compacted {stats['specs']} spec(s), {stats['records']} "
        f"record(s); removed {stats['removed']} stale file(s)"
    )
    return 0
