"""``python -m repro sweep`` — the experiment engine's CLI front-end.

Runs a declarative trial grid with progress output, prints a result
table, and memoizes completed trials under ``--cache-dir`` so a
repeated invocation with the same spec does zero re-simulation::

    python -m repro sweep --sizes 4,6,8 --labels 1,2 --workers 4
    python -m repro sweep --algorithm gossip_known --family ring \\
        --sizes 4,6 --labels 1,2 --messages 101,01 --cache-dir .repro-cache

Exit status is 0 when every trial succeeded, 1 otherwise (failed
trials are reported in the table, never crash the sweep).
"""

from __future__ import annotations

import argparse

from .engine import run_experiment
from .spec import ExperimentSpec
from .trial import ALGORITHMS, FAMILIES


def _parse_int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.replace(";", ",").split(",") if part)


def _parse_sets(text: str, caster) -> tuple[tuple, ...]:
    """Parse ``"1,2;3,4"`` into ``((1, 2), (3, 4))``."""
    out = []
    for group in text.split(";"):
        group = group.strip()
        if group:
            out.append(tuple(caster(v) for v in group.split(",")))
    return tuple(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--algorithm", default="gather_known", choices=sorted(ALGORITHMS),
        help="algorithm to run (default: gather_known)",
    )
    parser.add_argument(
        "--family", default="ring", choices=sorted(FAMILIES),
        help="graph family (default: ring)",
    )
    parser.add_argument(
        "--sizes", type=_parse_int_list, default=(4, 6, 8),
        metavar="N,N,...", help="graph sizes (default: 4,6,8)",
    )
    parser.add_argument(
        "--labels", default="1,2", metavar="L,L[;L,L]",
        help="agent label sets, ';'-separated (default: 1,2)",
    )
    parser.add_argument(
        "--messages", default=None, metavar="M,M[;M,M]",
        help="message sets for gossip algorithms (binary strings)",
    )
    parser.add_argument(
        "--seeds", type=_parse_int_list, default=(0,),
        metavar="S,S,...", help="replicate seeds (default: 0)",
    )
    parser.add_argument(
        "--n-bound", type=int, default=None,
        help="known size bound (default: each trial's graph size)",
    )
    parser.add_argument(
        "--placement", default="default", choices=("default", "spread"),
        help="agent placement policy (default: default)",
    )
    parser.add_argument(
        "--fixed-graph-seed", action="store_true",
        help="pass replicate seeds to the generator verbatim instead "
             "of deriving a per-trial seed",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result store",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-trial progress lines",
    )
    return parser


def sweep_main(argv: list[str]) -> int:
    # Imported lazily: repro.analysis.sweeps itself imports this
    # package, and the table renderer is only needed by the CLI.
    from ..analysis.tables import ResultTable

    args = build_parser().parse_args(argv)
    label_sets = _parse_sets(args.labels, int)
    message_sets = (
        None if args.messages is None else _parse_sets(args.messages, str)
    )
    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        spec = ExperimentSpec(
            algorithm=args.algorithm,
            family=args.family,
            sizes=args.sizes,
            label_sets=label_sets,
            message_sets=message_sets,
            seeds=args.seeds,
            n_bound=args.n_bound,
            placement=args.placement,
            graph_seed_mode="fixed" if args.fixed_graph_seed else "derived",
        )
    except ValueError as exc:  # SpecError is a ValueError
        print(f"error: {exc}")
        return 2

    def report_progress(done: int, total: int, rec: dict, cache: bool) -> None:
        if args.quiet:
            return
        status = "cached" if cache else (
            "ok" if rec["ok"] else "FAILED"
        )
        print(f"[{done}/{total}] {rec['key']}  {status}")

    result = run_experiment(
        spec,
        workers=args.workers,
        store=None if args.no_cache else args.cache_dir,
        progress=report_progress,
    )

    table = ResultTable(
        f"sweep: {args.algorithm} on {args.family} "
        f"(spec {spec.spec_hash()})",
        ["n", "labels", "seed", "status", "rounds", "moves", "events"],
    )
    for rec in result.records:
        metrics = rec["metrics"]
        table.add_row(
            rec["n"],
            "-".join(str(v) for v in rec["labels"]),
            rec["seed"],
            "ok" if rec["ok"] else "FAILED",
            metrics.get("rounds", "-"),
            metrics.get("moves", "-"),
            metrics.get("events", "-"),
        )
    table.emit()
    print(
        f"trials: {len(result.records)}  "
        f"simulated: {result.executed}  cached: {result.cached}  "
        f"failed: {result.failed}"
    )
    if not args.no_cache:
        print(f"result store: {args.cache_dir} (delete to force re-runs)")
    for rec in result.failures():
        print(f"  FAILED {rec['key']}: {rec['error']}")
    return 0 if result.failed == 0 else 1
