"""Query and aggregate cached experiment records without re-running.

The sharded :class:`~repro.runner.store.ResultStore` can hold
million-trial studies; this module answers questions about them from
the cache alone — filter by any spec axis (``n``, ``family``,
``wake_schedule``, ``placement``, ``adversary``, ...), group by axes,
and aggregate metrics (``mean``/``p50``/``p95``/``max``/...).  The CLI
front-end is ``python -m repro query`` (see
:mod:`repro.runner.cli`).

Records are flat dicts (see :mod:`repro.runner.trial`); field lookup
falls through to the nested ``metrics`` dict, so ``rounds`` and
``wake_schedule`` are addressed the same way.  Aggregations use
nearest-rank percentiles over exact integers, so query output is as
deterministic as the records themselves.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable, Sequence

from ..metrics import registry as _metrics_registry


class QueryError(ValueError):
    """The query is malformed (unknown field, stat, or value)."""


STATS = ("count", "mean", "p50", "p95", "min", "max", "sum")


def _record_spec_hash(record: dict) -> str:
    """Short content hash naming a record in query error messages.

    Hashes the record's spec coordinates (everything except the
    outcome fields), the same canonical-JSON construction
    :meth:`repro.runner.spec.ExperimentSpec.spec_hash` uses, so the
    offending trial can be located regardless of which store shard it
    sits in.
    """
    spec = {
        k: v for k, v in record.items()
        if k not in ("ok", "error", "metrics")
    }
    blob = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def record_field(record: dict, field: str):
    """Look up ``field`` in a record, falling through to ``metrics``.

    Returns ``None`` when the field is absent (e.g. ``moves`` on a
    gossip record).  List values (``labels``) are joined with ``-``
    and dict values (a search record's ``frontier`` or an adaptive
    trial's ``adversary_scenario``) render as canonical JSON, so both
    can serve as filter and group-by values.

    A dotted ``field`` descends into nested dict values (e.g.
    ``adversary_scenario.wake`` on an adaptive-search record).  A
    missing key or a non-dict intermediate along the dotted path
    raises :class:`QueryError` naming the full field path and the
    offending record's spec hash — never a bare ``KeyError`` /
    ``TypeError`` from deep inside a shard scan.
    """
    head, dotted, rest = field.partition(".")
    if head in record:
        value = record[head]
    else:
        metrics = record.get("metrics") or {}
        value = metrics.get(head)
    if dotted:
        path = head
        for part in rest.split("."):
            if not isinstance(value, dict):
                raise QueryError(
                    f"field {field!r}: {path!r} is not a dict on "
                    f"record {_record_spec_hash(record)}"
                )
            if part not in value:
                raise QueryError(
                    f"field {field!r}: no key {part!r} under {path!r} "
                    f"on record {_record_spec_hash(record)}"
                )
            value = value[part]
            path = f"{path}.{part}"
    if isinstance(value, list):
        return "-".join(str(v) for v in value)
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return value


def _value_matches(actual, wanted: str) -> bool:
    if actual is None:
        return False
    if isinstance(actual, bool):
        return wanted.lower() in (
            ("true", "1") if actual else ("false", "0")
        )
    return str(actual) == wanted


def parse_where(clauses: Sequence[str]) -> dict[str, str]:
    """Parse ``field=value`` clauses into a filter dict.

    A field repeated with different values is an error — clauses are
    conjunctive, so silently keeping the last one would answer a
    different question than the user asked.
    """
    out: dict[str, str] = {}
    for clause in clauses:
        field, sep, value = clause.partition("=")
        if not sep or not field:
            raise QueryError(
                f"filters are 'field=value', got {clause!r}"
            )
        field, value = field.strip(), value.strip()
        if field in out and out[field] != value:
            raise QueryError(
                f"conflicting filters for {field!r}: "
                f"{out[field]!r} vs {value!r}"
            )
        out[field] = value
    return out

def filter_records(
    records: Iterable[dict], where: dict[str, str]
) -> list[dict]:
    """Records matching every ``field=value`` clause (string equality,
    after the same field resolution the aggregator uses)."""
    out = []
    for record in records:
        if all(
            _value_matches(record_field(record, field), wanted)
            for field, wanted in where.items()
        ):
            out.append(record)
    return out


def known_fields(records: Iterable[dict]) -> set[str]:
    """Every field name addressable on at least one record."""
    fields: set[str] = set()
    for record in records:
        fields.update(record)
        fields.update(record.get("metrics") or {})
    fields.discard("metrics")
    return fields


def require_known_fields(
    records: Iterable[dict], fields: Iterable[str]
) -> None:
    """Reject field names absent from *every* record.

    A typo'd ``--where`` field or metric would otherwise silently
    match nothing / aggregate nothing, reading as "no such trials are
    cached".  Fields present on only some records (e.g. ``moves`` on
    gather but not gossip) stay legal.  Dotted paths are validated by
    their head field only — the nested keys are checked per record by
    :func:`record_field`, which names the offender on a miss.
    """
    known = known_fields(records)
    for field in fields:
        if field.partition(".")[0] not in known:
            raise QueryError(
                f"unknown field {field!r}: no cached record has it "
                f"(known fields: {', '.join(sorted(known))})"
            )


def percentile(values: Sequence, pct: float):
    """Nearest-rank percentile (exact element, no interpolation)."""
    ordered = sorted(values)
    if not ordered:
        return None
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _stat(name: str, values: list):
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "mean":
        total = sum(values)
        try:
            return total / len(values)
        except OverflowError:
            # gather/gossip_unknown round counts are exact integers
            # with hundreds of digits; fall back to integer division
            # rather than crashing (the error is < 1 round).
            return total // len(values)
    if name == "p50":
        return percentile(values, 50)
    if name == "p95":
        return percentile(values, 95)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "sum":
        return sum(values)
    raise QueryError(f"unknown stat {name!r}; known: {STATS}")


def _group_sort_key(key: tuple) -> tuple:
    """Sort numeric group values numerically, everything else as text.

    Group values keep their record types (so ``--group-by n`` sorts
    4, 8, 10 — not "10", "4", "8" — and ``--json`` emits real ints);
    the sort key only has to keep mixed types comparable.
    """
    out = []
    for value in key:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            out.append((1, str(value)))
        else:
            out.append((0, value))
    return tuple(out)


def aggregate(
    records: Iterable[dict],
    group_by: Sequence[str] = (),
    metrics: Sequence[str] = ("rounds",),
    stats: Sequence[str] = ("count", "mean", "p50", "p95", "max"),
) -> list[dict]:
    """Group records and aggregate metrics.

    Returns one row dict per group, in sorted group-key order::

        {"group": {field: value, ...},
         "count": <records in group>,
         "<metric>": {"mean": ..., "p50": ..., ...},
         ...}

    Only numeric metric values participate; records where a metric is
    absent or non-numeric are skipped for that metric (their presence
    still counts toward the group's ``count``).
    """
    for stat in stats:
        if stat not in STATS:
            raise QueryError(f"unknown stat {stat!r}; known: {STATS}")
    for metric in metrics:
        if metric in ("count", "group"):
            # Row keys; a metric with these names would clobber them.
            raise QueryError(
                f"{metric!r} is a row key, not a metric; "
                "'count' is always reported per group"
            )
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        key = tuple(record_field(record, field) for field in group_by)
        groups.setdefault(key, []).append(record)
    rows = []
    for key in sorted(groups, key=_group_sort_key):
        members = groups[key]
        row: dict = {
            "group": dict(zip(group_by, key)),
            "count": len(members),
        }
        for metric in metrics:
            values = [
                v for v in (record_field(r, metric) for r in members)
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            row[metric] = {
                stat: _stat(stat, values)
                for stat in stats
                if stat != "count"
            }
        rows.append(row)
    return rows


_PERCENTILE_STATS = frozenset({"p50", "p95"})


class StreamAggregator:
    """One-pass filter/group/aggregate over a record stream.

    The list-based helpers above need every record in memory;
    million-trial stores make that the query CLI's peak footprint.
    This accumulator is fed one record at a time (shard by shard, via
    :meth:`repro.runner.store.ResultStore.iter_spec_records`) and
    never holds record dicts.  With only decomposable stats requested
    (``count``/``mean``/``min``/``max``/``sum``) it keeps four running
    numbers per group and metric — memory scales with the number of
    groups.  Exact nearest-rank percentiles (``p50``/``p95``) are not
    decomposable, so requesting them keeps the per-group numeric
    values (one number per record — still far below whole records).
    The output of :meth:`rows` is exactly what :func:`aggregate`
    returns for the same records, and the counters match the CLI's
    summary line.

    Field validation is deferred to :meth:`rows`: a streaming pass
    cannot know all addressable fields until it has seen every record,
    so unknown-field errors surface after the scan, before any output.
    """

    def __init__(
        self,
        where: dict[str, str],
        group_by: Sequence[str] = (),
        metrics: Sequence[str] = ("rounds",),
        stats: Sequence[str] = ("count", "mean", "p50", "p95", "max"),
    ) -> None:
        for stat in stats:
            if stat not in STATS:
                raise QueryError(f"unknown stat {stat!r}; known: {STATS}")
        for metric in metrics:
            if metric in ("count", "group"):
                raise QueryError(
                    f"{metric!r} is a row key, not a metric; "
                    "'count' is always reported per group"
                )
        self.where = dict(where)
        self.group_by = tuple(group_by)
        self.metrics = tuple(metrics)
        self.stats = tuple(stats)
        self.records = 0
        self.matched = 0
        self.aggregated = 0
        # Resolved once: add() runs per record over million-trial
        # stores, so the hot path pays one attribute check, not a
        # registry lookup.
        reg = _metrics_registry.current()
        self._c_records = (
            None if reg is None else reg.counter("runner.query.records")
        )
        self._keep_values = bool(_PERCENTILE_STATS & set(stats))
        self._known: set[str] = set()
        self._groups: dict[tuple, dict] = {}

    def add(self, record: dict) -> None:
        """Fold one record into the aggregation."""
        self.records += 1
        if self._c_records is not None:
            self._c_records.value += 1
        self._known.update(record)
        self._known.update(record.get("metrics") or {})
        if not all(
            _value_matches(record_field(record, field), wanted)
            for field, wanted in self.where.items()
        ):
            return
        self.matched += 1
        if not record.get("ok"):
            return
        self.aggregated += 1
        key = tuple(
            record_field(record, field) for field in self.group_by
        )
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = {
                "count": 0,
                # values: list of numerics (percentile path) or a
                # running [count, total, min, max] (decomposable path)
                "metrics": {
                    metric: [] if self._keep_values else None
                    for metric in self.metrics
                },
            }
        group["count"] += 1
        for metric in self.metrics:
            value = record_field(record, metric)
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                continue
            if self._keep_values:
                group["metrics"][metric].append(value)
            else:
                running = group["metrics"][metric]
                if running is None:
                    group["metrics"][metric] = [1, value, value, value]
                else:
                    running[0] += 1
                    running[1] += value
                    running[2] = min(running[2], value)
                    running[3] = max(running[3], value)

    def _finalize_metric(self, state) -> dict:
        """One metric's ``{stat: value}`` cell from its group state."""
        if self._keep_values:
            return {
                stat: _stat(stat, state)
                for stat in self.stats
                if stat != "count"
            }
        # Running-aggregate path: reproduce _stat's semantics exactly,
        # including the big-integer mean fallback and None for stats
        # over zero numeric values.
        if state is None:
            return {
                stat: None for stat in self.stats if stat != "count"
            }
        n, total, lowest, highest = state
        try:
            mean = total / n
        except OverflowError:
            mean = total // n
        lookup = {
            "mean": mean, "min": lowest, "max": highest, "sum": total,
        }
        return {
            stat: lookup[stat] for stat in self.stats if stat != "count"
        }

    def rows(self) -> list[dict]:
        """Finalize: validate fields, return :func:`aggregate`-shaped rows."""
        self._known.discard("metrics")
        for field in (
            list(self.where) + list(self.group_by) + list(self.metrics)
        ):
            if field.partition(".")[0] not in self._known:
                raise QueryError(
                    f"unknown field {field!r}: no cached record has it "
                    f"(known fields: {', '.join(sorted(self._known))})"
                )
        rows = []
        for key in sorted(self._groups, key=_group_sort_key):
            group = self._groups[key]
            row: dict = {
                "group": dict(zip(self.group_by, key)),
                "count": group["count"],
            }
            for metric in self.metrics:
                row[metric] = self._finalize_metric(
                    group["metrics"][metric]
                )
            rows.append(row)
        return rows


def format_value(value) -> str:
    """Render a table cell: compact floats, big-int-safe integers.

    Delegates large integers to
    :func:`repro.analysis.tables.format_big`, which stays exact below
    ``10**7`` and switches to ``m.mmm e<exp>`` notation above, so the
    unknown-bound round counts (hundreds of digits) render as narrow
    cells instead of blowing up the table layout.  ``None`` (a field
    absent from this record) renders as ``-``.
    """
    from ..analysis.tables import format_big

    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.2f}" if abs(value) < 10 ** 7 else f"{value:.3g}"
    if isinstance(value, int):
        return format_big(value)
    return str(value)
