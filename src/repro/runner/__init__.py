"""Parallel experiment engine for empirical studies.

The paper's algorithms are deterministic, but reproducing its
empirical claims (gathering time vs. N, label length, graph family)
means running large grids of independent simulations.  This package
turns such a study into data:

* :class:`~repro.runner.spec.ExperimentSpec` — a declarative
  description of a trial grid (algorithm, graph family + sizes, label
  sets, message sets, seeds, and the scenario axes: wake schedules,
  placements, adversary strategies);
* :func:`~repro.runner.engine.run_experiment` — hands the grid to a
  pluggable execution backend (:mod:`repro.runner.backends`: serial,
  process pool, pipelined batches, or a multi-host file manifest),
  captures per-trial failures instead of crashing the sweep, and
  returns canonical, byte-reproducible result records regardless of
  backend or worker count;
* :class:`~repro.runner.store.ResultStore` — an on-disk sharded JSON
  store keyed by the spec hash, so re-running a sweep only simulates
  the trials that are missing;
* :mod:`~repro.runner.query` — filter/group/aggregate cached records
  (CLI: ``python -m repro query``) without re-running anything.

Quickstart::

    from repro.runner import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        algorithm="gather_known",
        family="ring",
        sizes=(4, 6, 8),
        label_sets=((1, 2),),
    )
    result = run_experiment(spec, workers=4, store=".repro-cache")
    for record in result.records:
        print(record["n"], record["metrics"]["rounds"])

The CLI front-end is ``python -m repro sweep`` (see
:mod:`repro.runner.cli`).
"""

from .backends import (
    BACKENDS,
    BackendContext,
    BackendError,
    ExecutionBackend,
    get_backend,
    register_backend,
)
from .engine import ExperimentResult, run_experiment
from .query import QueryError, aggregate, filter_records, record_field
from .search import (
    STRATEGIES as SEARCH_STRATEGIES,
    SearchResult,
    SearchSpec,
    run_search,
)
from .spec import PLACEMENTS, ExperimentSpec, TrialSpec
from .store import MergeWarning, ResultStore
from .trial import TrialError, TrialResult, execute_trial, resolve_scenario
from .trial import ALGORITHMS, FAMILIES, PLACEMENT_RESOLVERS

__all__ = [
    "ExperimentSpec",
    "SearchResult",
    "SearchSpec",
    "SEARCH_STRATEGIES",
    "TrialSpec",
    "TrialResult",
    "TrialError",
    "ExperimentResult",
    "run_search",
    "ExecutionBackend",
    "BackendContext",
    "BackendError",
    "ResultStore",
    "MergeWarning",
    "QueryError",
    "run_experiment",
    "execute_trial",
    "resolve_scenario",
    "aggregate",
    "filter_records",
    "record_field",
    "get_backend",
    "register_backend",
    "ALGORITHMS",
    "BACKENDS",
    "FAMILIES",
    "PLACEMENTS",
    "PLACEMENT_RESOLVERS",
]
