"""The versioned worst-case scenario corpus.

Adaptive searches (``python -m repro search``) spend their budgets
discovering adversarial scenarios — placements and wake schedules
that maximize (or minimize) a metric for one algorithm on one graph.
Those discoveries are too valuable to leave in a scratch result
store: committed as a *corpus*, they become a regression grid that
every future change replays.

``python -m repro corpus export`` distils a result store's search
records into corpus files: for each search spec it ranks the
successful eval records by the search's own metric/objective and
keeps the top scenarios, each as a fully-resolved trial payload
(explicit graph seed, ``nodes:``/``explicit:`` scenario axes) plus
the metrics it produced and the provenance of its discovery.
``python -m repro corpus replay`` re-executes every entry serially —
records are pure functions of their trial specs, so a clean replay
reproduces the committed metrics byte-for-byte — and classifies each:

* ``ok`` — all expected metrics reproduced exactly;
* ``regression`` — the provenance metric moved *in the adversary's
  objective direction* (the committed worst case got worse), or a
  robustness field drifted (``survivors_gathered``,
  ``crashed_labels``, ``partial_groups``, ``timed_out``: a faulted
  entry whose survivors no longer gather, or whose crash schedule
  resolves differently, is a correctness break even when the round
  count looks fine);
* ``changed`` — metrics differ but the primary metric did not worsen
  and no robustness field drifted (e.g. an intended algorithm
  improvement — re-export with ``--update`` after reviewing);
* ``error`` — the trial failed or no longer carries the metric.

Faulted entries carry their ``faults``/``dynamics`` axes inside the
trial payload (``TrialSpec.from_dict`` restores them) and echo the
search's fault strategy in the provenance block.

The committed corpus lives under ``benchmarks/corpus/*.json``; CI
replays it on every push (see ``docs/ci.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib

from .spec import TrialSpec
from .store import ResultStore
from .trial import execute_trial

CORPUS_SCHEMA = "repro.corpus"
CORPUS_VERSION = 1
DEFAULT_CORPUS_DIR = "benchmarks/corpus"

# The trial-identity fields a corpus entry persists — exactly
# TrialSpec.to_dict()'s always-present keys, lifted from the stored
# eval record.
_TRIAL_FIELDS = (
    "key", "algorithm", "family", "n", "n_bound", "labels", "messages",
    "seed", "graph_seed", "placement", "wake_schedule", "adversary",
    "algorithm_params",
)

# Conditionally-emitted trial axes (present in records only when
# non-default); lifted when present, never required by validation.
_OPTIONAL_TRIAL_FIELDS = ("faults", "dynamics")

# Robustness metrics whose drift on replay is a regression outright —
# a survivors-gathered flip or a different resolved crash schedule is
# a correctness break regardless of the primary metric's direction.
_ROBUSTNESS_FIELDS = (
    "survivors_gathered", "crashed_labels", "partial_groups",
    "timed_out",
)


class CorpusError(ValueError):
    """A malformed corpus file or an unexportable store."""


# ----------------------------------------------------------------------
# Files.
# ----------------------------------------------------------------------

def load_corpus(path: pathlib.Path | str) -> dict:
    """Parse and validate one corpus file."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise CorpusError(f"cannot read corpus {path}: {exc}") from exc
    except ValueError as exc:
        raise CorpusError(f"corpus {path} is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CorpusError(f"corpus {path} must be a JSON object")
    if payload.get("schema") != CORPUS_SCHEMA:
        raise CorpusError(
            f"corpus {path} has schema {payload.get('schema')!r}, "
            f"expected {CORPUS_SCHEMA!r}"
        )
    if payload.get("version") != CORPUS_VERSION:
        raise CorpusError(
            f"corpus {path} has version {payload.get('version')!r}, "
            f"expected {CORPUS_VERSION}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise CorpusError(f"corpus {path} has no entry list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise CorpusError(f"corpus {path} entry {i} is not an object")
        for field in ("id", "trial", "expected", "provenance"):
            if field not in entry:
                raise CorpusError(
                    f"corpus {path} entry {i} lacks {field!r}"
                )
        missing = [
            f for f in _TRIAL_FIELDS if f not in entry["trial"]
        ]
        if missing:
            raise CorpusError(
                f"corpus {path} entry {entry['id']!r} trial lacks "
                f"{missing}"
            )
    return payload


def write_corpus(path: pathlib.Path | str, payload: dict) -> None:
    """Atomically persist a corpus file (stable key order)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def corpus_files(directory: pathlib.Path | str) -> list[pathlib.Path]:
    """The corpus files under ``directory``, in stable order."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


# ----------------------------------------------------------------------
# Export: result store -> corpus entries.
# ----------------------------------------------------------------------

def _rankable(record: dict, metric: str) -> bool:
    if record.get("kind") != "eval" or not record.get("ok"):
        return False
    value = (record.get("metrics") or {}).get(metric)
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def export_entries(
    store: ResultStore,
    spec_prefix: str | None = None,
    top: int = 2,
) -> list[dict]:
    """Corpus entries from the store's search specs.

    Scans every cached search (optionally restricted to one spec hash
    or unique prefix), ranks its successful eval records by the
    search's own metric in its objective direction, and keeps the
    ``top`` scenarios per search.
    """
    if top < 1:
        raise CorpusError("--top must be >= 1")
    matched = False
    entries: list[dict] = []
    for item in store.list_specs():
        spec_hash = item["spec_hash"]
        payload = item.get("spec")
        if spec_prefix is not None and not spec_hash.startswith(
            spec_prefix
        ):
            continue
        if not isinstance(payload, dict) or payload.get("kind") != "search":
            continue
        matched = True
        metric = payload["metric"]
        objective = payload.get("objective", "worst")
        records = [
            rec
            for rec in store.load(spec_hash).values()
            if _rankable(rec, metric)
        ]
        records.sort(
            key=lambda rec: (
                rec["metrics"][metric], rec["key"]
            ),
            reverse=(objective == "worst"),
        )
        for rec in records[:top]:
            trial = {f: rec[f] for f in _TRIAL_FIELDS}
            for f in _OPTIONAL_TRIAL_FIELDS:
                if f in rec:
                    trial[f] = rec[f]
            provenance = {
                "spec_hash": spec_hash,
                "strategy": payload["strategy"],
                "budget": payload["budget"],
                "objective": objective,
                "metric": metric,
            }
            for f in _OPTIONAL_TRIAL_FIELDS:
                if payload.get(f, "none") != "none":
                    provenance[f] = payload[f]
            entries.append({
                "id": rec["key"],
                "trial": trial,
                "expected": dict(rec["metrics"]),
                "provenance": provenance,
            })
    if spec_prefix is not None and not matched:
        raise CorpusError(
            f"no cached search spec matches {spec_prefix!r}"
        )
    entries.sort(key=lambda e: e["id"])
    return entries


def build_corpus(name: str, entries: list[dict]) -> dict:
    return {
        "schema": CORPUS_SCHEMA,
        "version": CORPUS_VERSION,
        "name": name,
        "entries": entries,
    }


# ----------------------------------------------------------------------
# Replay: corpus entries -> regression verdicts.
# ----------------------------------------------------------------------

def _worsened(objective: str, expected, actual) -> bool:
    """Did the primary metric move in the adversary's direction?"""
    try:
        if objective == "best":
            return actual < expected
        return actual > expected
    except TypeError:
        return False


def replay_entry(entry: dict) -> dict:
    """Re-execute one corpus entry and classify the outcome.

    Returns ``{"id", "status", "metric", "expected", "actual",
    "detail"}`` with status ``ok`` / ``regression`` / ``changed`` /
    ``error`` (see the module docstring for the classification).
    """
    provenance = entry["provenance"]
    metric = provenance["metric"]
    objective = provenance.get("objective", "worst")
    expected = entry["expected"]
    expected_primary = expected.get(metric)
    base = {
        "id": entry["id"],
        "metric": metric,
        "expected": expected_primary,
        "actual": None,
    }
    try:
        trial = TrialSpec.from_dict(entry["trial"])
    except (KeyError, TypeError, ValueError) as exc:
        return {**base, "status": "error",
                "detail": f"unreadable trial: {exc}"}
    result = execute_trial(trial)
    if not result.ok:
        return {**base, "status": "error",
                "detail": f"trial failed: {result.error}"}
    actual = result.metrics
    base["actual"] = actual.get(metric)
    if metric not in actual:
        return {**base, "status": "error",
                "detail": f"record no longer carries metric {metric!r}"}
    if actual == expected:
        return {**base, "status": "ok", "detail": None}
    if _worsened(objective, expected_primary, actual.get(metric)):
        return {
            **base, "status": "regression",
            "detail": (
                f"{metric} worsened: {expected_primary!r} -> "
                f"{actual.get(metric)!r} (objective {objective})"
            ),
        }
    drifted = [
        f for f in _ROBUSTNESS_FIELDS
        if f in expected and expected.get(f) != actual.get(f)
    ]
    if drifted:
        return {
            **base, "status": "regression",
            "detail": (
                "robustness drift: "
                + ", ".join(
                    f"{f} {expected.get(f)!r} -> {actual.get(f)!r}"
                    for f in drifted
                )
            ),
        }
    diff_keys = sorted(
        k for k in set(expected) | set(actual)
        if expected.get(k) != actual.get(k)
    )
    return {
        **base, "status": "changed",
        "detail": f"metrics differ without worsening: {diff_keys}",
    }


def replay_corpus(payload: dict) -> list[dict]:
    """Replay every entry of one parsed corpus file."""
    return [replay_entry(entry) for entry in payload["entries"]]


def apply_update(payload: dict, results: list[dict]) -> int:
    """Fold replayed metrics back into ``payload``'s expectations.

    Only ``regression``/``changed`` entries are rewritten (their
    replays succeeded with different metrics); returns how many
    entries changed.  The caller decides whether to persist.
    """
    by_id = {res["id"]: res for res in results}
    updated = 0
    for entry in payload["entries"]:
        res = by_id.get(entry["id"])
        if res is None or res["status"] not in ("regression", "changed"):
            continue
        trial = TrialSpec.from_dict(entry["trial"])
        result = execute_trial(trial)
        if result.ok:
            entry["expected"] = dict(result.metrics)
            updated += 1
    return updated


# ----------------------------------------------------------------------
# ``python -m repro corpus`` — the CLI.
# ----------------------------------------------------------------------

def build_corpus_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro corpus",
        description="Persist search-discovered worst-case scenarios as "
                    "a committed regression corpus, and replay them: "
                    "'export' distils a result store's search records "
                    "into corpus JSON, 'replay' re-executes committed "
                    "scenarios and fails on any regression.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export",
        help="distil a result store's searches into a corpus file",
    )
    export.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store directory to scan (default: .repro-cache)",
    )
    export.add_argument(
        "--spec", default=None, metavar="HASH",
        help="restrict to one search spec (hash or unique prefix)",
    )
    export.add_argument(
        "--out", required=True, metavar="FILE",
        help="corpus file to write",
    )
    export.add_argument(
        "--top", type=int, default=2, metavar="K",
        help="scenarios kept per search (default: 2)",
    )
    export.add_argument(
        "--name", default=None,
        help="corpus name (default: the output file stem)",
    )

    replay = sub.add_parser(
        "replay",
        help="re-execute committed scenarios and classify regressions",
    )
    replay.add_argument(
        "files", nargs="*", metavar="FILE",
        help="corpus files (default: every *.json in --corpus-dir)",
    )
    replay.add_argument(
        "--corpus-dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
        help=f"corpus directory to scan when no files are given "
             f"(default: {DEFAULT_CORPUS_DIR})",
    )
    replay.add_argument(
        "--json", action="store_true",
        help="emit one JSON object per corpus file instead of a table",
    )
    replay.add_argument(
        "--update", action="store_true",
        help="rewrite the expectations of changed entries in place",
    )
    return parser


def _export_main(args) -> int:
    store = ResultStore(args.cache_dir)
    try:
        entries = export_entries(store, args.spec, args.top)
    except CorpusError as exc:
        print(f"error: {exc}")
        return 2
    if not entries:
        print(
            f"error: no exportable search records in {args.cache_dir} "
            "(run 'python -m repro search' first)"
        )
        return 2
    out = pathlib.Path(args.out)
    name = args.name if args.name is not None else out.stem
    write_corpus(out, build_corpus(name, entries))
    searches = len({e["provenance"]["spec_hash"] for e in entries})
    print(
        f"corpus {name!r}: wrote {len(entries)} scenario(s) from "
        f"{searches} search(es) to {out}"
    )
    return 0


def _replay_main(args) -> int:
    from ..analysis.tables import ResultTable

    if args.files:
        files = [pathlib.Path(f) for f in args.files]
    else:
        files = corpus_files(args.corpus_dir)
        if not files:
            print(
                f"error: no corpus files under {args.corpus_dir}"
            )
            return 2

    totals = {"ok": 0, "regression": 0, "changed": 0, "error": 0}
    reports = []
    for path in files:
        try:
            payload = load_corpus(path)
        except CorpusError as exc:
            print(f"error: {exc}")
            return 2
        results = replay_corpus(payload)
        updated = 0
        if args.update:
            updated = apply_update(payload, results)
            if updated:
                write_corpus(path, payload)
        for res in results:
            totals[res["status"]] += 1
        reports.append((path, payload, results, updated))

    if args.json:
        for path, payload, results, updated in reports:
            print(json.dumps({
                "corpus": payload.get("name"),
                "file": str(path),
                "entries": results,
                "updated": updated,
            }, sort_keys=True))
    else:
        for path, payload, results, updated in reports:
            table = ResultTable(
                f"corpus {payload.get('name')!r} ({path})",
                ["scenario", "status", "metric", "expected", "actual"],
            )
            for res in results:
                table.add_row(
                    res["id"], res["status"], res["metric"],
                    *(
                        "-" if v is None else v
                        for v in (res["expected"], res["actual"])
                    ),
                )
            table.emit()
            for res in results:
                if res["status"] != "ok" and res.get("detail"):
                    print(f"  {res['id']}: {res['detail']}")
            if updated:
                print(f"  rewrote {updated} expectation(s) in {path}")
    clean = totals["regression"] == totals["changed"] == totals["error"] == 0
    print(
        f"replayed {sum(totals.values())} scenario(s): "
        f"{totals['ok']} ok, {totals['regression']} regression(s), "
        f"{totals['changed']} changed, {totals['error']} error(s)"
    )
    if args.update:
        # Post-update the corpus matches reality by construction; the
        # caller asked for new expectations, not a verdict on old ones.
        return 0
    return 0 if clean else 1


def corpus_main(argv: list[str]) -> int:
    args = build_corpus_parser().parse_args(argv)
    if args.command == "export":
        return _export_main(args)
    return _replay_main(args)
