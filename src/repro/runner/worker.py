"""Pool-worker side of the experiment engine.

A worker process builds its :class:`UXSProvider` exactly once, in the
pool initializer, and pre-warms it for every size bound the grid will
need.  Exploration sequences are pure functions of ``(N, seed,
factor)``, so each worker rebuilds them cheaply and *identically* —
nothing graph-sized ever crosses the process boundary, and no trial
re-derives a sequence (``tests/test_runner.py`` asserts both).

Only plain dicts travel through the pool: :func:`run_trial_payload`
takes a ``TrialSpec`` dict and returns a record dict, which keeps the
pickled task tiny and version-skew-proof.  The pipelined backend ships
*batches* of trials sharing one graph instead
(:func:`run_trial_batch`); the worker builds that graph once — graphs
are pure functions of ``(family, n, graph_seed)``, so this is a pure
wall-clock optimization with byte-identical records.
"""

from __future__ import annotations

import os

from ..events import stream as _event_stream
from ..explore.uxs import UXSProvider
from ..metrics import registry as _metrics_registry
from ..graphs.port_graph import PortGraph
from .spec import TrialSpec
from .trial import (
    PreparedTrial,
    TrialResult,
    _build_graph,
    _trial_end_event,
    _trial_start_event,
    execute_trial,
    prepare_trial,
)

try:
    from ..sim.cohort import HAVE_NUMPY as _COHORTS_AVAILABLE
except ImportError:  # pragma: no cover - cohort ships with sim
    _COHORTS_AVAILABLE = False

# Process-global state, set once per worker by :func:`init_worker`.
_PROVIDER: UXSProvider | None = None
_INIT_COUNT = 0  # instrumentation for the reuse property tests

# Most-recent graphs, keyed by (family, n, graph_seed).  Batches
# arrive grouped by graph, so a tiny cache already removes all
# redundant construction; the cap only guards against pathological
# interleavings keeping graph-sized objects alive.
_GRAPH_CACHE: dict[tuple[str, int, int], PortGraph] = {}
_GRAPH_CACHE_CAP = 4


def init_worker(
    provider_args: dict,
    prewarm_sizes: tuple[int, ...],
    enable_metrics: bool = False,
) -> None:
    """Pool initializer: build and pre-warm the per-process provider.

    ``enable_metrics`` attaches a process-local metrics registry (the
    parent's registry is not inherited across the pool boundary); task
    results then carry the worker's *cumulative* snapshot back for the
    parent to fold in with replace-per-worker semantics.
    """
    global _PROVIDER, _INIT_COUNT
    if enable_metrics:
        # Always a fresh registry: under the fork start method the
        # child inherits the parent's attached registry (same source,
        # pre-fork counts), which would alias every worker onto one
        # absorb key and double-count the parent's own series.  The
        # collector tallies are module globals the fork copied too, so
        # zero them — this worker reports its own totals only.
        from ..explore import uxs as _uxs
        from ..sim import agent as _agent

        _agent.reset_intern_stats()
        _uxs.reset_cache_stats()
        _metrics_registry.attach(
            _metrics_registry.Registry(source=f"pool-worker-{os.getpid()}")
        )
    _PROVIDER = UXSProvider(**provider_args)
    _INIT_COUNT += 1
    for n in prewarm_sizes:
        _PROVIDER.sequence(n)


def _metrics_envelope() -> dict | None:
    """The attached registry's cumulative snapshot, or ``None``."""
    reg = _metrics_registry.current()
    if reg is None:
        return None
    return {"worker": reg.source, "snapshot": reg.snapshot()}


def current_provider() -> UXSProvider | None:
    """The worker's provider (``None`` before :func:`init_worker`)."""
    return _PROVIDER


def shared_graph(trial: TrialSpec) -> PortGraph | None:
    """Build (or fetch) the trial's graph for batch-mates to share.

    Returns ``None`` when construction fails — the per-trial execution
    path then rebuilds and captures the identical error, so a batch of
    infeasible trials records exactly what the serial path records.
    """
    key = (trial.family, trial.n, trial.graph_seed)
    if key in _GRAPH_CACHE:
        return _GRAPH_CACHE[key]
    try:
        graph = _build_graph(trial)
    except Exception:
        return None
    if len(_GRAPH_CACHE) >= _GRAPH_CACHE_CAP:
        _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
    _GRAPH_CACHE[key] = graph
    return graph


def run_trial_payload(payload: dict) -> dict:
    """Execute one trial dict and return its record dict.

    Never raises: :func:`repro.runner.trial.execute_trial` captures
    simulation failures, and this wrapper catches even record-building
    errors so a worker cannot poison the pool.
    """
    trial = TrialSpec.from_dict(payload)
    try:
        record = execute_trial(trial, provider=_PROVIDER).record()
    except Exception as exc:  # pragma: no cover - defense in depth
        record = trial.to_dict()
        record["ok"] = False
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["metrics"] = {}
    envelope = _metrics_envelope()
    if envelope is None:
        return record
    # Metrics-enabled pool: wrap the record with the worker's running
    # snapshot.  The default path returns the bare record dict, so the
    # pool protocol is unchanged when metrics are off.
    return {"__metrics__": envelope, "record": record}


def _error_result(trial: TrialSpec, exc: BaseException) -> TrialResult:
    """The exact failure record :func:`execute_trial` would produce."""
    return TrialResult(
        trial, ok=False, error=f"{type(exc).__name__}: {exc}"
    )


def _finish_prepared(prepared: PreparedTrial) -> TrialResult:
    """Run a prepared trial's simulation scalar and record it."""
    try:
        metrics = prepared.finalize(prepared.simulation.run())
    except Exception as exc:
        # Faulted trials convert protocol errors into graceful-stop
        # metrics (exactly as the serial path does); anything else is
        # a genuine failure record.
        metrics = prepared.finalize_error(exc)
        if metrics is None:
            return _error_result(prepared.trial, exc)
    return TrialResult(prepared.trial, ok=True, metrics=metrics)


def execute_trial_batch(
    trials: list[TrialSpec],
    provider: UXSProvider | None = None,
    graph: PortGraph | None = None,
) -> list[TrialResult]:
    """Execute trials sharing one graph, cohorting where possible.

    Cohort-eligible trials (see :func:`repro.runner.trial
    .prepare_trial`) are prepared into same-graph simulations and run
    in lockstep by :class:`repro.sim.cohort.CohortScheduler`; the rest
    take the ordinary per-trial path.  Results are byte-identical to
    serial execution in either case — preparation failures are
    captured in the same ``"{type}: {message}"`` form as
    :func:`execute_trial`'s, and an ejected or completed cohort trial
    finalizes through the same validation code.
    """
    emit = _event_stream.current()
    results: list[TrialResult | None] = [None] * len(trials)
    cohort: list[tuple[int, PreparedTrial]] = []
    if graph is not None and _COHORTS_AVAILABLE:
        for i, trial in enumerate(trials):
            try:
                prepared = prepare_trial(trial, graph, provider)
            except Exception as exc:
                results[i] = _error_result(trial, exc)
                if emit is not None:
                    emit.emit(_trial_start_event(trial))
                    emit.emit(_trial_end_event(results[i]))
                continue
            if prepared is not None:
                cohort.append((i, prepared))
    if len(cohort) >= 2:
        from ..sim.cohort import CohortScheduler

        # Cohort members interleave at the simulation level; their
        # TrialStart events bracket the lockstep run as a block (the
        # per-trial SimulationStart was emitted at prepare time).
        if emit is not None:
            for _i, prepared in cohort:
                emit.emit(_trial_start_event(prepared.trial))
        outcomes = CohortScheduler(
            graph, [p.simulation for _i, p in cohort]
        ).run()
        for (i, prepared), outcome in zip(cohort, outcomes):
            if outcome.error is not None:
                metrics = prepared.finalize_error(outcome.error)
                if metrics is None:
                    results[i] = _error_result(
                        prepared.trial, outcome.error
                    )
                else:
                    results[i] = TrialResult(
                        prepared.trial, ok=True, metrics=metrics
                    )
            else:
                try:
                    metrics = prepared.finalize(outcome.result)
                except Exception as exc:
                    results[i] = _error_result(prepared.trial, exc)
                else:
                    results[i] = TrialResult(
                        prepared.trial, ok=True, metrics=metrics
                    )
            if emit is not None:
                emit.emit(_trial_end_event(results[i]))
    else:
        # A cohort of one gains nothing from lockstep; run it scalar
        # (the simulation is already built).
        for i, prepared in cohort:
            if emit is not None:
                emit.emit(_trial_start_event(prepared.trial))
            results[i] = _finish_prepared(prepared)
            if emit is not None:
                emit.emit(_trial_end_event(results[i]))
    reg = _metrics_registry.current()
    if reg is not None:
        # Cohort members (and prepare failures) bypass execute_trial,
        # which counts its own; count them here so the trial counters
        # agree with serial execution regardless of the path taken.
        for result in results:
            if result is not None:
                status = "ok" if result.ok else "failed"
                reg.counter(
                    "runner.trials.executed", status=status
                ).value += 1
    return [
        result
        if result is not None
        else execute_trial(trials[i], provider=provider, graph=graph)
        for i, result in enumerate(results)
    ]


def run_trial_batch(payload: dict) -> list[dict] | dict:
    """Execute a batch of trial dicts sharing one graph; never raises.

    With a worker-local metrics registry attached (``init_worker``'s
    ``enable_metrics``), the record list is wrapped as
    ``{"__metrics__": ..., "records": [...]}``; the bare list is
    returned otherwise, keeping the default pool protocol unchanged.

    The pipelined backend groups trials by ``(family, n, graph_seed)``
    and ships each group as one task, so the graph is built once per
    batch instead of once per trial — and same-graph cohort-eligible
    trials run in lockstep (:func:`execute_trial_batch`).  Records are
    byte-identical to the per-trial path: the shared graph is the same
    pure function of the trial coordinates the serial path computes,
    and the cohort ejects to scalar execution on any divergence.
    """
    records = _run_trial_batch_records(payload)
    envelope = _metrics_envelope()
    if envelope is None:
        return records
    return {"__metrics__": envelope, "records": records}


def _run_trial_batch_records(payload: dict) -> list[dict]:
    records: list[dict] = []
    trials = [TrialSpec.from_dict(p) for p in payload["trials"]]
    graph = shared_graph(trials[0]) if trials else None
    try:
        results = execute_trial_batch(trials, provider=_PROVIDER, graph=graph)
    except Exception:  # pragma: no cover - defense in depth
        results = None
    if results is not None:
        for trial, result in zip(trials, results):
            try:
                records.append(result.record())
            except Exception as exc:  # pragma: no cover - defense in depth
                rec = trial.to_dict()
                rec["ok"] = False
                rec["error"] = f"{type(exc).__name__}: {exc}"
                rec["metrics"] = {}
                records.append(rec)
        return records
    for trial in trials:
        try:
            records.append(
                execute_trial(trial, provider=_PROVIDER, graph=graph)
                .record()
            )
        except Exception as exc:  # pragma: no cover - defense in depth
            rec = trial.to_dict()
            rec["ok"] = False
            rec["error"] = f"{type(exc).__name__}: {exc}"
            rec["metrics"] = {}
            records.append(rec)
    return records
