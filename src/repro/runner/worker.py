"""Pool-worker side of the experiment engine.

A worker process builds its :class:`UXSProvider` exactly once, in the
pool initializer, and pre-warms it for every size bound the grid will
need.  Exploration sequences are pure functions of ``(N, seed,
factor)``, so each worker rebuilds them cheaply and *identically* —
nothing graph-sized ever crosses the process boundary, and no trial
re-derives a sequence (``tests/test_runner.py`` asserts both).

Only plain dicts travel through the pool: :func:`run_trial_payload`
takes a ``TrialSpec`` dict and returns a record dict, which keeps the
pickled task tiny and version-skew-proof.
"""

from __future__ import annotations

from ..explore.uxs import UXSProvider
from .spec import TrialSpec
from .trial import execute_trial

# Process-global state, set once per worker by :func:`init_worker`.
_PROVIDER: UXSProvider | None = None
_INIT_COUNT = 0  # instrumentation for the reuse property tests


def init_worker(provider_args: dict, prewarm_sizes: tuple[int, ...]) -> None:
    """Pool initializer: build and pre-warm the per-process provider."""
    global _PROVIDER, _INIT_COUNT
    _PROVIDER = UXSProvider(**provider_args)
    _INIT_COUNT += 1
    for n in prewarm_sizes:
        _PROVIDER.sequence(n)


def current_provider() -> UXSProvider | None:
    """The worker's provider (``None`` before :func:`init_worker`)."""
    return _PROVIDER


def run_trial_payload(payload: dict) -> dict:
    """Execute one trial dict and return its record dict.

    Never raises: :func:`repro.runner.trial.execute_trial` captures
    simulation failures, and this wrapper catches even record-building
    errors so a worker cannot poison the pool.
    """
    trial = TrialSpec.from_dict(payload)
    try:
        return execute_trial(trial, provider=_PROVIDER).record()
    except Exception as exc:  # pragma: no cover - defense in depth
        rec = trial.to_dict()
        rec["ok"] = False
        rec["error"] = f"{type(exc).__name__}: {exc}"
        rec["metrics"] = {}
        return rec
