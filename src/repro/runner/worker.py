"""Pool-worker side of the experiment engine.

A worker process builds its :class:`UXSProvider` exactly once, in the
pool initializer, and pre-warms it for every size bound the grid will
need.  Exploration sequences are pure functions of ``(N, seed,
factor)``, so each worker rebuilds them cheaply and *identically* —
nothing graph-sized ever crosses the process boundary, and no trial
re-derives a sequence (``tests/test_runner.py`` asserts both).

Only plain dicts travel through the pool: :func:`run_trial_payload`
takes a ``TrialSpec`` dict and returns a record dict, which keeps the
pickled task tiny and version-skew-proof.  The pipelined backend ships
*batches* of trials sharing one graph instead
(:func:`run_trial_batch`); the worker builds that graph once — graphs
are pure functions of ``(family, n, graph_seed)``, so this is a pure
wall-clock optimization with byte-identical records.
"""

from __future__ import annotations

from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from .spec import TrialSpec
from .trial import _build_graph, execute_trial

# Process-global state, set once per worker by :func:`init_worker`.
_PROVIDER: UXSProvider | None = None
_INIT_COUNT = 0  # instrumentation for the reuse property tests

# Most-recent graphs, keyed by (family, n, graph_seed).  Batches
# arrive grouped by graph, so a tiny cache already removes all
# redundant construction; the cap only guards against pathological
# interleavings keeping graph-sized objects alive.
_GRAPH_CACHE: dict[tuple[str, int, int], PortGraph] = {}
_GRAPH_CACHE_CAP = 4


def init_worker(provider_args: dict, prewarm_sizes: tuple[int, ...]) -> None:
    """Pool initializer: build and pre-warm the per-process provider."""
    global _PROVIDER, _INIT_COUNT
    _PROVIDER = UXSProvider(**provider_args)
    _INIT_COUNT += 1
    for n in prewarm_sizes:
        _PROVIDER.sequence(n)


def current_provider() -> UXSProvider | None:
    """The worker's provider (``None`` before :func:`init_worker`)."""
    return _PROVIDER


def shared_graph(trial: TrialSpec) -> PortGraph | None:
    """Build (or fetch) the trial's graph for batch-mates to share.

    Returns ``None`` when construction fails — the per-trial execution
    path then rebuilds and captures the identical error, so a batch of
    infeasible trials records exactly what the serial path records.
    """
    key = (trial.family, trial.n, trial.graph_seed)
    if key in _GRAPH_CACHE:
        return _GRAPH_CACHE[key]
    try:
        graph = _build_graph(trial)
    except Exception:
        return None
    if len(_GRAPH_CACHE) >= _GRAPH_CACHE_CAP:
        _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
    _GRAPH_CACHE[key] = graph
    return graph


def run_trial_payload(payload: dict) -> dict:
    """Execute one trial dict and return its record dict.

    Never raises: :func:`repro.runner.trial.execute_trial` captures
    simulation failures, and this wrapper catches even record-building
    errors so a worker cannot poison the pool.
    """
    trial = TrialSpec.from_dict(payload)
    try:
        return execute_trial(trial, provider=_PROVIDER).record()
    except Exception as exc:  # pragma: no cover - defense in depth
        rec = trial.to_dict()
        rec["ok"] = False
        rec["error"] = f"{type(exc).__name__}: {exc}"
        rec["metrics"] = {}
        return rec


def run_trial_batch(payload: dict) -> list[dict]:
    """Execute a batch of trial dicts sharing one graph; never raises.

    The pipelined backend groups trials by ``(family, n, graph_seed)``
    and ships each group as one task, so the graph is built once per
    batch instead of once per trial.  Records are byte-identical to
    the per-trial path: the shared graph is the same pure function of
    the trial coordinates the serial path computes.
    """
    records: list[dict] = []
    trials = [TrialSpec.from_dict(p) for p in payload["trials"]]
    graph = shared_graph(trials[0]) if trials else None
    for trial in trials:
        try:
            records.append(
                execute_trial(trial, provider=_PROVIDER, graph=graph)
                .record()
            )
        except Exception as exc:  # pragma: no cover - defense in depth
            rec = trial.to_dict()
            rec["ok"] = False
            rec["error"] = f"{type(exc).__name__}: {exc}"
            rec["metrics"] = {}
            records.append(rec)
    return records
