"""Reusable parameter-sweep drivers for complexity studies.

The benchmark modules and the ``scaling_study`` example share these
drivers: each returns a list of :class:`SweepPoint` records, ready for
:func:`repro.analysis.fitting.fit_power_law` and
:class:`repro.analysis.tables.ResultTable`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.gather_known import smallest_label_length
from ..core.runs import run_gather_known, run_gossip_known
from ..graphs.generators import ring
from ..graphs.port_graph import PortGraph


class SweepPoint:
    """One measurement of a sweep."""

    __slots__ = ("x", "round", "moves", "events", "detail")

    def __init__(
        self, x: int, round_: int, moves: int, events: int, detail: str
    ) -> None:
        self.x = x
        self.round = round_
        self.moves = moves
        self.events = events
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SweepPoint(x={self.x}, round={self.round})"


def size_sweep(
    sizes: Sequence[int],
    labels: list[int] | None = None,
    graph_factory: Callable[[int], PortGraph] | None = None,
) -> list[SweepPoint]:
    """Gathering time vs. the size bound N (Theorem 3.1, E2).

    ``graph_factory(n)`` builds the size-``n`` instance (default ring).
    """
    labels = labels if labels is not None else [1, 2]
    factory = graph_factory if graph_factory is not None else (
        lambda n: ring(n, seed=1)
    )
    points = []
    for n in sizes:
        graph = factory(n)
        if len(labels) == 2:
            starts = [0, graph.n - 1]
        else:
            starts = None  # default placement on nodes 0..k-1
        report = run_gather_known(graph, labels, n, start_nodes=starts)
        points.append(
            SweepPoint(
                n, report.round, report.total_moves, report.events,
                f"labels={labels}",
            )
        )
    return points


def label_length_sweep(
    bit_lengths: Sequence[int],
    n_bound: int = 4,
    graph: PortGraph | None = None,
) -> list[SweepPoint]:
    """Gathering time vs. smallest-label bit length (Theorem 3.1, E3)."""
    graph = graph if graph is not None else ring(4, seed=1)
    points = []
    for bits in bit_lengths:
        small = 1 << (bits - 1)
        labels = [small, small + 1]
        assert smallest_label_length(labels) == bits
        report = run_gather_known(graph, labels, n_bound)
        points.append(
            SweepPoint(
                bits, report.round, report.total_moves, report.events,
                f"labels={labels}",
            )
        )
    return points


def message_length_sweep(
    lengths: Sequence[int],
    graph: PortGraph | None = None,
    n_bound: int = 2,
) -> list[SweepPoint]:
    """Gossip time vs. message length (Theorem 5.1, E8)."""
    from ..graphs.generators import single_edge

    graph = graph if graph is not None else single_edge()
    base = run_gossip_known(graph, [1, 2], ["", ""], n_bound)
    points = []
    for length in lengths:
        m1 = ("10" * ((length + 1) // 2))[:length]
        m2 = ("01" * ((length + 1) // 2))[:length]
        report = run_gossip_known(graph, [1, 2], [m1, m2], n_bound)
        points.append(
            SweepPoint(
                length,
                report.round - base.round,
                0,
                report.events,
                "gossip-phase rounds (gathering prefix subtracted)",
            )
        )
    return points
