"""Reusable parameter-sweep drivers for complexity studies.

The benchmark modules and the ``scaling_study`` example share these
drivers: each returns a list of :class:`SweepPoint` records, ready for
:func:`repro.analysis.fitting.fit_power_law` and
:class:`repro.analysis.tables.ResultTable`.

Since the ``repro.runner`` engine landed, every driver is a thin
declarative wrapper over :func:`repro.runner.run_experiment`: pass
``workers`` to fan a sweep out over a process pool and ``store`` (a
directory path) to memoize completed trials across invocations.  The
default ``workers=1`` path is serial and bit-for-bit reproducible.
"""

from __future__ import annotations

import warnings
from typing import Callable, Sequence

from ..core.gather_known import smallest_label_length
from ..graphs.port_graph import PortGraph


class SweepPoint:
    """One measurement of a sweep.

    ``rounds`` is the canonical attribute name; the historical
    ``round`` alias (which clashed with the builtin and forced a
    ``round_`` constructor parameter) is kept as a read-only property
    that emits a :class:`DeprecationWarning`.
    """

    __slots__ = ("x", "rounds", "moves", "events", "detail")

    def __init__(
        self, x: int, rounds: int, moves: int, events: int, detail: str
    ) -> None:
        self.x = x
        self.rounds = rounds
        self.moves = moves
        self.events = events
        self.detail = detail

    @property
    def round(self) -> int:
        """Deprecated alias for :attr:`rounds`."""
        warnings.warn(
            "SweepPoint.round is deprecated; use SweepPoint.rounds",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.rounds

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SweepPoint(x={self.x}, rounds={self.rounds})"


def _run(spec, workers: int, store, backend: str | None = None) -> list[dict]:
    """Run a spec through the engine and return its ok records.

    Sweeps are strict: a captured trial failure is re-raised here so
    drivers keep their historical loud-error behavior.
    """
    from ..runner import run_experiment

    result = run_experiment(
        spec, workers=workers, store=store, backend=backend
    )
    result.raise_on_failure()
    return result.records


def size_sweep(
    sizes: Sequence[int],
    labels: list[int] | None = None,
    graph_factory: Callable[[int], PortGraph] | None = None,
    workers: int = 1,
    store=None,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Gathering time vs. the size bound N (Theorem 3.1, E2).

    ``graph_factory(n)`` builds the size-``n`` instance (default ring
    with port seed 1).  Custom factories force ``workers=1``.
    """
    from ..runner import ExperimentSpec

    labels = labels if labels is not None else [1, 2]
    spec = ExperimentSpec(
        algorithm="gather_known",
        family="ring",
        sizes=tuple(sizes),
        label_sets=(tuple(labels),),
        seeds=(1,),
        graph_seed_mode="fixed",
        placement="spread" if len(labels) == 2 else "default",
        graph_factory=graph_factory,
    )
    if graph_factory is not None:
        workers = 1
    records = _run(spec, workers, store, backend=backend)
    return [
        SweepPoint(
            rec["n"],
            rec["metrics"]["rounds"],
            rec["metrics"]["moves"],
            rec["metrics"]["events"],
            f"labels={labels}",
        )
        for rec in records
    ]


def label_length_sweep(
    bit_lengths: Sequence[int],
    n_bound: int = 4,
    graph: PortGraph | None = None,
    workers: int = 1,
    store=None,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Gathering time vs. smallest-label bit length (Theorem 3.1, E3)."""
    from ..runner import ExperimentSpec

    label_sets = []
    for bits in bit_lengths:
        small = 1 << (bits - 1)
        labels = (small, small + 1)
        assert smallest_label_length(list(labels)) == bits
        label_sets.append(labels)
    spec = ExperimentSpec(
        algorithm="gather_known",
        family="ring",
        sizes=(4,),
        label_sets=tuple(label_sets),
        seeds=(1,),
        n_bound=n_bound,
        graph_seed_mode="fixed",
        graph_factory=None if graph is None else (lambda n: graph),
    )
    if graph is not None:
        workers = 1
    records = _run(spec, workers, store, backend=backend)
    return [
        SweepPoint(
            smallest_label_length(list(rec["labels"])),
            rec["metrics"]["rounds"],
            rec["metrics"]["moves"],
            rec["metrics"]["events"],
            f"labels={list(rec['labels'])}",
        )
        for rec in records
    ]


def message_length_sweep(
    lengths: Sequence[int],
    graph: PortGraph | None = None,
    n_bound: int = 2,
    workers: int = 1,
    store=None,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Gossip time vs. message length (Theorem 5.1, E8).

    The first (empty-message) trial isolates the gathering prefix; its
    round count is subtracted from every measured point.
    """
    from ..runner import ExperimentSpec

    message_sets: list[tuple[str, str]] = [("", "")]
    for length in lengths:
        m1 = ("10" * ((length + 1) // 2))[:length]
        m2 = ("01" * ((length + 1) // 2))[:length]
        message_sets.append((m1, m2))
    spec = ExperimentSpec(
        algorithm="gossip_known",
        family="edge",
        sizes=(2,),
        label_sets=((1, 2),),
        message_sets=tuple(message_sets),
        seeds=(1,),
        n_bound=n_bound,
        graph_seed_mode="fixed",
        graph_factory=None if graph is None else (lambda n: graph),
    )
    if graph is not None:
        workers = 1
    records = _run(spec, workers, store, backend=backend)
    base = records[0]["metrics"]["rounds"]
    points = []
    for length, rec in zip(lengths, records[1:]):
        points.append(
            SweepPoint(
                length,
                rec["metrics"]["rounds"] - base,
                0,
                rec["metrics"]["events"],
                "gossip-phase rounds (gathering prefix subtracted)",
            )
        )
    return points


def adversary_search_sweep(
    strategy: str = "hill_climb",
    budget: int = 32,
    algorithm: str = "gather_known",
    family: str = "ring",
    n: int = 6,
    labels: list[int] | None = None,
    seed: int = 0,
    max_delay: int = 16,
    workers: int = 1,
    store=None,
    backend: str | None = None,
) -> list[SweepPoint]:
    """The adaptive adversary's progress, round by round.

    Runs a :mod:`repro.runner.search` strategy against one grid point
    and returns one :class:`SweepPoint` per search round: ``x`` is the
    round index, ``rounds`` the worst gathering time found so far,
    ``events`` the cumulative trial attempts spent, and ``detail`` the
    incumbent scenario's ``placement / wake`` encoding.
    Feeding the result to a table shows how quickly the search closes
    in on the worst case a blind ``worst_of:k`` sample would need far
    more trials to stumble upon.
    """
    from ..runner.search import SearchSpec, run_search

    spec = SearchSpec(
        algorithm=algorithm,
        family=family,
        n=n,
        labels=tuple(labels) if labels is not None else (1, 2),
        seed=seed,
        strategy=strategy,
        budget=budget,
        max_delay=max_delay,
    )
    result = run_search(
        spec, workers=workers, store=store, backend=backend
    )
    points = []
    for rec in result.records:
        if rec.get("kind") != "round":
            continue
        best = rec["metrics"].get("best_rounds")
        if best is None:
            continue
        points.append(
            SweepPoint(
                rec["search_round"],
                best,
                0,
                rec["metrics"]["attempts"],
                f"{rec['placement']} / {rec['wake_schedule']}",
            )
        )
    return points


def scenario_sweep(
    wake_schedules: Sequence[str] = ("simultaneous",),
    placements: Sequence[str] = ("default",),
    adversaries: Sequence[str] = ("fixed",),
    algorithm: str = "gather_known",
    family: str = "ring",
    n: int = 5,
    labels: list[int] | None = None,
    seeds: Sequence[int] = (0,),
    workers: int = 1,
    store=None,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Gathering time across an adversarial scenario matrix.

    Sweeps the cross product of wake schedules, placements and
    adversary strategies at a fixed graph size; ``x`` enumerates the
    scenario grid points in canonical order and ``detail`` names the
    scenario (``placement/wake/adversary``).  Replicate seeds are
    averaged into a single point per scenario.
    """
    from ..runner import ExperimentSpec

    labels = labels if labels is not None else [1, 2]
    spec = ExperimentSpec(
        algorithm=algorithm,
        family=family,
        sizes=(n,),
        label_sets=(tuple(labels),),
        seeds=tuple(seeds),
        placements=tuple(placements),
        wake_schedules=tuple(wake_schedules),
        adversaries=tuple(adversaries),
    )
    records = _run(spec, workers, store, backend=backend)
    grouped: dict[tuple[str, str, str], list[dict]] = {}
    order: list[tuple[str, str, str]] = []
    for rec in records:
        scenario = (
            rec["placement"], rec["wake_schedule"], rec["adversary"]
        )
        if scenario not in grouped:
            grouped[scenario] = []
            order.append(scenario)
        grouped[scenario].append(rec["metrics"])
    points = []
    for x, scenario in enumerate(order):
        metrics = grouped[scenario]
        count = len(metrics)
        points.append(
            SweepPoint(
                x,
                sum(m["rounds"] for m in metrics) // count,
                sum(m.get("moves", 0) for m in metrics) // count,
                sum(m["events"] for m in metrics) // count,
                "/".join(scenario),
            )
        )
    return points
