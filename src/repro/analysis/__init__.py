"""Scaling analysis and reporting helpers for the benchmarks."""

from .fitting import (
    FitResult,
    fit_exponential,
    fit_power_law,
    growth_ratios,
    is_polynomial_growth,
)
from .stats import RunStats, summarize_runs
from .sweeps import (
    SweepPoint,
    label_length_sweep,
    message_length_sweep,
    size_sweep,
)
from .tables import ResultTable, format_big

__all__ = [
    "SweepPoint",
    "size_sweep",
    "label_length_sweep",
    "message_length_sweep",
    "RunStats",
    "summarize_runs",
    "FitResult",
    "fit_power_law",
    "fit_exponential",
    "growth_ratios",
    "is_polynomial_growth",
    "ResultTable",
    "format_big",
]
