"""Plain-text result tables for the benchmark harness.

Every experiment in ``benchmarks/`` prints its rows through
:class:`ResultTable` so that the output of ``pytest benchmarks/
--benchmark-only`` can be diffed against the records in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Sequence


def format_big(value: int | float) -> str:
    """Human-readable big integers: exact below 10**7, ~10^e above.

    Works for integers of *any* size (the unknown-bound clocks exceed
    10**2000, beyond CPython's default int-to-str conversion limit),
    using bit-length arithmetic instead of full decimal conversion.
    """
    if isinstance(value, float):
        return f"{value:.3g}"
    if -(10**7) < value < 10**7:
        return str(value)
    magnitude = abs(value)
    # Lower-bound estimate of floor(log10), then correct upwards.
    exponent = (magnitude.bit_length() - 1) * 30103 // 100000
    while magnitude // 10**exponent >= 10:
        exponent += 1
    lead = str(magnitude // 10 ** (exponent - 3))  # 4 leading digits
    mantissa = f"{lead[0]}.{lead[1:]}"
    sign = "-" if value < 0 else ""
    return f"{sign}{mantissa}e{exponent}"


class ResultTable:
    """Fixed-column ASCII table accumulated row by row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values) -> None:
        """Append one row; values are stringified via format_big."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(
            [
                v if isinstance(v, str) else format_big(v)
                for v in values
            ]
        )

    def render(self) -> str:
        """The table as a string."""
        widths = [
            max(len(col), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            col.ljust(widths[i]) for i, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def emit(self) -> None:
        """Print with surrounding blank lines (pytest -s friendly)."""
        print()
        print(self.render())
        print()
