"""Summary statistics for randomized (Las-Vegas) runs.

The deterministic algorithms need a single run; the randomized
baselines and the randomized-silent extension need distributional
summaries over seeds.  Pure-Python implementations keep the core
library dependency-free.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence


class RunStats:
    """Distribution summary of a repeated measurement."""

    __slots__ = ("count", "mean", "median", "minimum", "maximum", "stdev", "p95")

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("need at least one sample")
        ordered = sorted(samples)
        n = len(ordered)
        self.count = n
        self.minimum = ordered[0]
        self.maximum = ordered[-1]
        self.mean = sum(ordered) / n
        mid = n // 2
        if n % 2 == 1:
            self.median = ordered[mid]
        else:
            self.median = (ordered[mid - 1] + ordered[mid]) / 2
        if n > 1:
            variance = sum((x - self.mean) ** 2 for x in ordered) / (n - 1)
            self.stdev = math.sqrt(variance)
        else:
            self.stdev = 0.0
        # Nearest-rank 95th percentile.
        rank = max(0, math.ceil(0.95 * n) - 1)
        self.p95 = ordered[rank]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RunStats(n={self.count}, mean={self.mean:.1f}, "
            f"median={self.median:.1f}, p95={self.p95:.1f})"
        )


def summarize_runs(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> RunStats:
    """Run ``run(seed)`` for every seed and summarize the results.

    Example::

        stats = summarize_runs(
            lambda s: run_randomized_silent_gather(g, [1, 2], seed=s).round,
            range(20),
        )
    """
    return RunStats([run(seed) for seed in seeds])
