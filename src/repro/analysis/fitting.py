"""Scaling-law estimation for the complexity experiments.

The paper's theorems assert polynomial (or exponential) growth of
gathering/gossip time in various parameters.  The benchmark harness
measures a sweep and summarises it with a fitted exponent:

* :func:`fit_power_law` — least-squares slope in log-log space, i.e.
  the empirical exponent of ``y ~ C * x**alpha``;
* :func:`fit_exponential` — slope in semi-log space, i.e. the rate of
  ``y ~ C * base**x``;
* :func:`growth_ratios` — successive ratios, the raw evidence.

Implemented without numpy so the core library stays dependency-free;
closed-form simple linear regression is all that is needed.
"""

from __future__ import annotations

import math
from typing import Sequence


class FitResult:
    """Result of a least-squares line fit in transformed space."""

    __slots__ = ("slope", "intercept", "r_squared")

    def __init__(self, slope: float, intercept: float, r_squared: float) -> None:
        self.slope = slope
        self.intercept = intercept
        self.r_squared = r_squared

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FitResult(slope={self.slope:.3f}, "
            f"intercept={self.intercept:.3f}, r2={self.r_squared:.3f})"
        )


def _linear_fit(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    n = len(xs)
    if n < 2 or len(ys) != n:
        raise ValueError("need at least two aligned samples")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are all equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    if ss_tot == 0:
        r_squared = 1.0
    else:
        ss_res = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
        )
        r_squared = 1.0 - ss_res / ss_tot
    return FitResult(slope, intercept, r_squared)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ~ C * x**alpha``; ``slope`` is the exponent alpha."""
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive samples")
    return _linear_fit(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )


def fit_exponential(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ~ C * e**(r x)``; ``slope`` is the rate ``r``."""
    if any(y <= 0 for y in ys):
        raise ValueError("exponential fit needs positive y samples")
    return _linear_fit(list(xs), [math.log(y) for y in ys])


def growth_ratios(ys: Sequence[float]) -> list[float]:
    """Successive ratios ``y[i+1] / y[i]``."""
    if any(y == 0 for y in ys[:-1]):
        raise ValueError("zero sample in ratio denominator")
    return [ys[i + 1] / ys[i] for i in range(len(ys) - 1)]


def is_polynomial_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    max_exponent: float,
    min_r_squared: float = 0.9,
) -> bool:
    """Heuristic check: does the sweep look like x**alpha with alpha
    below ``max_exponent`` and a credible fit?"""
    fit = fit_power_law(xs, ys)
    return fit.slope <= max_exponent and fit.r_squared >= min_r_squared
