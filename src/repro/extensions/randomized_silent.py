"""Extension: randomized gathering in the weak model (open problem).

The paper's conclusion poses an open question: can randomization buy
polynomial-time gathering *without any a-priori knowledge* in the weak
model?  This module explores the neighbouring point in the design
space that is easy to settle empirically: agents that cannot
communicate (weak model — only ``CurCard``), know nothing about the
graph, but *do* know the team size ``k``.

Algorithm ``RandomizedSilentGather(k)``:

* every agent performs a lazy pseudorandom walk (one step per two
  rounds, seeded by its own label, so the team stays desynchronised);
* after every observation an agent checks ``CurCard == k``; the first
  round in which the whole team coincides, *every* agent sees it
  simultaneously and declares.

This is Las-Vegas: termination is almost-sure but only the observation
of ``CurCard == k`` is used, staying strictly inside the weak model.
The benchmark compares its expected time against the deterministic
algorithms; its exponential degradation in ``k`` (simultaneous
coincidence of independent walks) illustrates why the paper's
deterministic machinery earns its complexity.
"""

from __future__ import annotations

from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from ..sim.agent import AgentContext, WatchTriggered, declare, move, wait
from ..sim.ops import SimulationError
from ..sim.scheduler import AgentSpec, Simulation, SimulationResult


def _pseudo_step(label: int, round_: int, seed: int, degree: int) -> int | None:
    """Lazy step: None = stay; otherwise a port.  Per-agent stream."""
    x = (label * 0x9E3779B1 + round_ * 0x85EBCA77 + seed * 0xC2B2AE3D) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 13
    if x & 1:
        return None
    return (x >> 1) % degree


class RandomizedSilentReport:
    """Validated result of a randomized silent gathering run."""

    __slots__ = ("sim_result", "round", "node", "events", "total_moves")

    def __init__(self, sim_result: SimulationResult) -> None:
        self.sim_result = sim_result
        if not sim_result.gathered():
            raise SimulationError(
                f"randomized gather failed: {sim_result.outcomes}"
            )
        self.round = sim_result.declaration_round()
        self.node = sim_result.meeting_node()
        self.events = sim_result.events
        self.total_moves = sim_result.total_moves


def run_randomized_silent_gather(
    graph: PortGraph,
    labels: list[int],
    start_nodes: list[int] | None = None,
    seed: int = 0,
    max_events: int | None = 30_000_000,
) -> RandomizedSilentReport:
    """Gather with CurCard only, knowing just the team size.

    All agents wake simultaneously (the lazy walk needs no further
    synchronisation).  Termination is almost-sure; ``max_events``
    bounds pathological streaks.
    """
    if start_nodes is None:
        start_nodes = list(range(len(labels)))
    if len(labels) < 2 or len(labels) > graph.n:
        raise ValueError("need 2..n agents")
    team_size = len(labels)

    def program(ctx: AgentContext):
        while True:
            if ctx.curcard() == team_size:
                yield from declare(ctx, team_size)
            port = _pseudo_step(
                ctx.label, ctx.local_time(), seed, ctx.degree()
            )
            try:
                if port is None:
                    yield from wait(ctx, 2, watch=("eq", team_size))
                else:
                    yield from move(ctx, port, watch=("eq", team_size))
                    yield from wait(ctx, 1, watch=("eq", team_size))
            except WatchTriggered:
                yield from declare(ctx, team_size)

    specs = [
        AgentSpec(label, node, program, wake_round=0)
        for label, node in zip(labels, start_nodes)
    ]
    sim = Simulation(graph, specs, max_events=max_events)
    return RandomizedSilentReport(sim.run())
