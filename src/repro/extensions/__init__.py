"""Exploratory extensions beyond the paper (see module docstrings)."""

from .randomized_silent import (
    RandomizedSilentReport,
    run_randomized_silent_gather,
)

__all__ = [
    "run_randomized_silent_gather",
    "RandomizedSilentReport",
]
