"""Gathering baseline in the *traditional* (talking) model.

The paper's Section 1.2 describes the model every previous gathering
algorithm assumed: co-located agents can exchange all currently
available information — in particular they see each other's labels.
This baseline implements the classic merge-and-follow-the-minimum
strategy in that model, as the reference point for the cost-of-silence
experiment (E9 in DESIGN.md):

* phase 0: ``EXPLO(N)`` + wait (wake everybody, as in Algorithm 3);
* every agent runs ``TZ`` parameterised by the smallest label of its
  current *group*; groups with distinct minima meet within ``P(N, l)``
  rounds, merge instantly (talking!), adopt the joint minimum and
  restart;
* an agent declares as soon as its group contains the whole team.

Idealizations (this baseline is a *lower* bound on the talking model,
making the measured silence overhead an upper bound):

* agents are told the team size ``k`` (so termination detection is
  free; the paper's weak model pays for it with whole phases);
* merging, leader adoption and re-synchronization are instantaneous.
"""

from __future__ import annotations

from ..core.labels import transformed_label
from ..core.parameters import KnownBoundParameters
from ..explore.explo import explo
from ..explore.tz import tz
from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from ..sim.agent import AgentContext, WatchTriggered, declare, wait
from ..sim.scheduler import AgentSpec, Simulation, SimulationResult
from ..sim.ops import SimulationError


class TalkingReport:
    """Validated result of a talking-baseline run."""

    __slots__ = ("sim_result", "round", "node", "leader", "events", "total_moves")

    def __init__(self, sim_result: SimulationResult, labels: list[int]) -> None:
        self.sim_result = sim_result
        if not sim_result.gathered():
            raise SimulationError(
                f"baseline failed to gather: {sim_result.outcomes}"
            )
        self.round = sim_result.declaration_round()
        self.node = sim_result.meeting_node()
        leaders = {p for p in sim_result.payloads()}
        if leaders != {min(labels)}:
            raise SimulationError(
                f"baseline leader mismatch: {leaders} vs {min(labels)}"
            )
        self.leader = min(labels)
        self.events = sim_result.events
        self.total_moves = sim_result.total_moves


class _OracleHandle:
    """Late-bound reference to the simulation's talking capability."""

    def __init__(self) -> None:
        self.sim: Simulation | None = None

    def labels_here(self, label: int) -> list[int]:
        return self.sim.colocated_labels(label)


def _talking_program(
    params: KnownBoundParameters,
    team_size: int,
    oracle: _OracleHandle,
    wake: int = 0,
    delay: int = 0,
):
    provider = params.provider
    n_bound = params.n_bound
    t_explo = params.t_explo

    block = 6 * t_explo

    def program(ctx: AgentContext):
        # Staggered wake-up: hold until the last teammate's wake round
        # (``delay = last_wake - wake``), so the protocol proper starts
        # simultaneously for the whole team.  The TZ/walk block grid is
        # anchored at *global* round 0 — ``ctx.local_time() + wake`` —
        # which makes every group compare the same stream position
        # regardless of when its members woke.
        if delay:
            yield from wait(ctx, delay)
        # Wake everyone, then let the late risers finish their tour.
        # The tours here and inside tz() are walk plans: merged groups
        # walk them in lockstep as joint scheduler segments, truncated
        # by the ("gt", c) watch at the exact meeting edge.
        yield from explo(ctx, provider, n_bound)
        yield from wait(ctx, t_explo)
        while True:
            # O(1) per call: the simulation resolves the label through
            # the index built at construction time.
            group = oracle.labels_here(ctx.label)
            if len(group) == team_size:
                yield from declare(ctx, min(group))
            stream = transformed_label(min(group))
            c = ctx.curcard()
            try:
                # Align to the global block grid, then run one TZ
                # block anchored at the global block index: all groups
                # compare the same stream position, so distinct minima
                # force a meeting.
                misaligned = (ctx.local_time() + wake) % block
                if misaligned:
                    yield from wait(ctx, block - misaligned, ("gt", c))
                yield from tz(
                    ctx,
                    provider,
                    n_bound,
                    stream,
                    block,
                    watch=("gt", c),
                    block_offset=(ctx.local_time() + wake) // block,
                )
                # Block over with no meeting: re-read the group (a
                # merge elsewhere may have changed other groups).
            except WatchTriggered:
                # Someone arrived (or we walked into them): merge by
                # falling through to re-read the co-located labels.
                pass

    return program


def resolve_wake_rounds(
    wake_rounds: list[int | None] | None, team_size: int
) -> list[int]:
    """Normalize a wake schedule for the talking baselines.

    The baselines handle arbitrary *concrete* wake rounds — each agent
    idles until the last teammate wakes, then the whole team starts
    the protocol simultaneously (still an idealization: agents are
    told when that is, which the paper's weak model must pay for).
    Only ``None`` entries are rejected: a woken-by-visit agent has no
    concrete wake round to delay to.  Infeasible combinations become
    captured failure records in scenario sweeps.
    """
    if wake_rounds is None:
        return [0] * team_size
    if len(wake_rounds) != team_size:
        raise ValueError("labels and wake_rounds must align")
    resolved: list[int] = []
    for w in wake_rounds:
        if w is None:
            raise ValueError(
                "the talking baselines need concrete wake rounds "
                f"(no dormant/None entries), got {wake_rounds}"
            )
        if w < 0:
            raise ValueError(f"wake rounds must be >= 0, got {w}")
        resolved.append(int(w))
    return resolved


def run_talking_gather(
    graph: PortGraph,
    labels: list[int],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
    max_events: int | None = 100_000_000,
) -> TalkingReport:
    """Run the talking-model baseline.

    Arbitrary concrete wake schedules are supported: each agent idles
    until the last teammate's wake round, then the team runs the
    simultaneous protocol (``None`` entries are rejected — see
    :func:`resolve_wake_rounds`).  Returns a :class:`TalkingReport`;
    the declaration round is the quantity the silence-overhead
    experiment compares against.
    """
    if start_nodes is None:
        start_nodes = list(range(len(labels)))
    if len(labels) < 2 or len(labels) > graph.n:
        raise ValueError("need 2..n agents")
    wakes = resolve_wake_rounds(wake_rounds, len(labels))
    last_wake = max(wakes)
    params = KnownBoundParameters(n_bound, provider)
    params.provider.verify_for_graph(n_bound, graph)
    oracle = _OracleHandle()
    specs = [
        AgentSpec(
            label,
            node,
            _talking_program(
                params, len(labels), oracle,
                wake=wake, delay=last_wake - wake,
            ),
            wake_round=wake,
        )
        for label, node, wake in zip(labels, start_nodes, wakes)
    ]
    sim = Simulation(graph, specs, max_events=max_events)
    oracle.sim = sim
    return TalkingReport(sim.run(), labels)
