"""Gathering baseline in the *traditional* (talking) model.

The paper's Section 1.2 describes the model every previous gathering
algorithm assumed: co-located agents can exchange all currently
available information — in particular they see each other's labels.
This baseline implements the classic merge-and-follow-the-minimum
strategy in that model, as the reference point for the cost-of-silence
experiment (E9 in DESIGN.md):

* phase 0: ``EXPLO(N)`` + wait (wake everybody, as in Algorithm 3);
* every agent runs ``TZ`` parameterised by the smallest label of its
  current *group*; groups with distinct minima meet within ``P(N, l)``
  rounds, merge instantly (talking!), adopt the joint minimum and
  restart;
* an agent declares as soon as its group contains the whole team.

Idealizations (this baseline is a *lower* bound on the talking model,
making the measured silence overhead an upper bound):

* agents are told the team size ``k`` (so termination detection is
  free; the paper's weak model pays for it with whole phases);
* merging, leader adoption and re-synchronization are instantaneous.
"""

from __future__ import annotations

from ..core.labels import transformed_label
from ..core.parameters import KnownBoundParameters
from ..explore.explo import explo
from ..explore.tz import tz
from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from ..sim.agent import AgentContext, WatchTriggered, declare, wait
from ..sim.scheduler import AgentSpec, Simulation, SimulationResult
from ..sim.ops import SimulationError


class TalkingReport:
    """Validated result of a talking-baseline run."""

    __slots__ = ("sim_result", "round", "node", "leader", "events", "total_moves")

    def __init__(self, sim_result: SimulationResult, labels: list[int]) -> None:
        self.sim_result = sim_result
        if not sim_result.gathered():
            raise SimulationError(
                f"baseline failed to gather: {sim_result.outcomes}"
            )
        self.round = sim_result.declaration_round()
        self.node = sim_result.meeting_node()
        leaders = {p for p in sim_result.payloads()}
        if leaders != {min(labels)}:
            raise SimulationError(
                f"baseline leader mismatch: {leaders} vs {min(labels)}"
            )
        self.leader = min(labels)
        self.events = sim_result.events
        self.total_moves = sim_result.total_moves


class _OracleHandle:
    """Late-bound reference to the simulation's talking capability."""

    def __init__(self) -> None:
        self.sim: Simulation | None = None

    def labels_here(self, label: int) -> list[int]:
        return self.sim.colocated_labels(label)


def _talking_program(
    params: KnownBoundParameters,
    team_size: int,
    oracle: _OracleHandle,
):
    provider = params.provider
    n_bound = params.n_bound
    t_explo = params.t_explo

    block = 6 * t_explo

    def program(ctx: AgentContext):
        # Wake everyone, then let the late risers finish their tour.
        # The tours here and inside tz() are walk plans: merged groups
        # walk them in lockstep as joint scheduler segments, truncated
        # by the ("gt", c) watch at the exact meeting edge.
        yield from explo(ctx, provider, n_bound)
        yield from wait(ctx, t_explo)
        while True:
            # O(1) per call: the simulation resolves the label through
            # the index built at construction time.
            group = oracle.labels_here(ctx.label)
            if len(group) == team_size:
                yield from declare(ctx, min(group))
            stream = transformed_label(min(group))
            c = ctx.curcard()
            try:
                # Align to the global block grid (everyone woke in
                # round 0), then run one TZ block anchored at the
                # global block index: all groups compare the same
                # stream position, so distinct minima force a meeting.
                misaligned = ctx.local_time() % block
                if misaligned:
                    yield from wait(ctx, block - misaligned, ("gt", c))
                yield from tz(
                    ctx,
                    provider,
                    n_bound,
                    stream,
                    block,
                    watch=("gt", c),
                    block_offset=ctx.local_time() // block,
                )
                # Block over with no meeting: re-read the group (a
                # merge elsewhere may have changed other groups).
            except WatchTriggered:
                # Someone arrived (or we walked into them): merge by
                # falling through to re-read the co-located labels.
                pass

    return program


def require_simultaneous(
    wake_rounds: list[int | None] | None, team_size: int
) -> None:
    """Reject any non-simultaneous wake schedule.

    The talking baselines align their TZ/walk blocks to a global round
    grid, which is only sound when the whole team wakes in round 0 —
    the idealization that makes them *lower* bounds.  Accepting the
    parameter (and failing loudly) lets the experiment engine sweep
    baselines over the same scenario matrix as the paper's algorithms:
    infeasible combinations become captured failure records.
    """
    if wake_rounds is None:
        return
    if len(wake_rounds) != team_size:
        raise ValueError("labels and wake_rounds must align")
    if any(w != 0 for w in wake_rounds):
        raise ValueError(
            "the talking baselines assume simultaneous wake-up "
            f"(all wake rounds 0), got {wake_rounds}"
        )


def run_talking_gather(
    graph: PortGraph,
    labels: list[int],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
    max_events: int | None = 100_000_000,
) -> TalkingReport:
    """Run the talking-model baseline (simultaneous wake-up).

    Returns a :class:`TalkingReport`; the declaration round is the
    quantity the silence-overhead experiment compares against.
    """
    if start_nodes is None:
        start_nodes = list(range(len(labels)))
    if len(labels) < 2 or len(labels) > graph.n:
        raise ValueError("need 2..n agents")
    require_simultaneous(wake_rounds, len(labels))
    params = KnownBoundParameters(n_bound, provider)
    params.provider.verify_for_graph(n_bound, graph)
    oracle = _OracleHandle()
    program = _talking_program(params, len(labels), oracle)
    specs = [
        AgentSpec(label, node, program, wake_round=0)
        for label, node in zip(labels, start_nodes)
    ]
    sim = Simulation(graph, specs, max_events=max_events)
    oracle.sim = sim
    return TalkingReport(sim.run(), labels)
