"""Baselines in the traditional (talking) model, for comparison."""

from .random_walk import run_random_walk_gather
from .talking import TalkingReport, run_talking_gather

__all__ = [
    "run_talking_gather",
    "run_random_walk_gather",
    "TalkingReport",
]
