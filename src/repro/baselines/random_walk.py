"""Randomized gathering baseline (talking model, coin-flip walks).

A second reference point: groups perform pseudorandom walks (the
classical randomized rendezvous strategy) and merge on meeting, again
with the traditional model's instant information exchange.  Walks are
derived from a deterministic hash of ``(group leader, round, seed)``,
so members of a group compute identical moves without coordination and
runs are reproducible.

Gathering of the *whole* team is declared when a group of size ``k``
forms.  Expected time is polynomial on the benchmark families but, in
contrast to the paper's algorithms, there is no deterministic
guarantee — which is precisely the comparison the benchmark draws.
"""

from __future__ import annotations

from ..explore.explo import explo
from ..explore.uxs import UXSProvider
from ..graphs.port_graph import PortGraph
from ..sim.agent import AgentContext, declare, move, wait
from ..sim.scheduler import AgentSpec, Simulation
from .talking import TalkingReport, _OracleHandle, resolve_wake_rounds


def _pseudo_step(leader: int, round_: int, seed: int, degree: int) -> int | None:
    """Deterministic lazy-walk step shared by all members of a group.

    Returns a port, or ``None`` for "stay put".  Laziness breaks the
    lock-step parity that would otherwise let two groups swap along an
    edge forever on bipartite graphs.
    """
    x = (leader * 0x9E3779B1 + round_ * 0x85EBCA77 + seed * 0xC2B2AE3D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x2545F491) & 0xFFFFFFFF
    x ^= x >> 13
    if x & 1:
        return None
    return (x >> 1) % degree


def run_random_walk_gather(
    graph: PortGraph,
    labels: list[int],
    n_bound: int,
    start_nodes: list[int] | None = None,
    wake_rounds: list[int | None] | None = None,
    provider: UXSProvider | None = None,
    seed: int = 0,
    max_events: int | None = 20_000_000,
) -> TalkingReport:
    """Randomized-walk gathering in the talking model.

    Same idealizations as :func:`repro.baselines.talking.
    run_talking_gather` (known team size; staggered concrete wake
    schedules idle until the last wake round, ``None`` entries are
    rejected).
    """
    if start_nodes is None:
        start_nodes = list(range(len(labels)))
    if len(labels) < 2 or len(labels) > graph.n:
        raise ValueError("need 2..n agents")
    wakes = resolve_wake_rounds(wake_rounds, len(labels))
    last_wake = max(wakes)
    uxs = provider if provider is not None else UXSProvider()
    uxs.verify_for_graph(n_bound, graph)
    team_size = len(labels)
    oracle = _OracleHandle()
    t_explo = uxs.explo_duration(n_bound)

    def make_program(wake: int, delay: int):
        def program(ctx: AgentContext):
            if delay:
                yield from wait(ctx, delay)
            yield from explo(ctx, uxs, n_bound)
            yield from wait(ctx, t_explo)
            # Every agent reaches this point at the same global round
            # (last_wake + 2 * t_explo) and each iteration consumes
            # exactly 2 rounds: all groups step together and stand
            # still together, so a meeting observed at a step round is
            # stable and merges before anyone moves.  The walk hash is
            # keyed by *global* time (local + wake) so merged members
            # with different wake rounds still compute identical moves.
            while True:
                group = oracle.labels_here(ctx.label)
                if len(group) == team_size:
                    yield from declare(ctx, min(group))
                port = _pseudo_step(
                    min(group), ctx.local_time() + wake, seed,
                    ctx.degree(),
                )
                if port is None:
                    yield from wait(ctx, 2)
                else:
                    yield from move(ctx, port)
                    yield from wait(ctx, 1)

        return program

    specs = [
        AgentSpec(
            label, node,
            make_program(wake, last_wake - wake),
            wake_round=wake,
        )
        for label, node, wake in zip(labels, start_nodes, wakes)
    ]
    sim = Simulation(graph, specs, max_events=max_events)
    oracle.sim = sim
    return TalkingReport(sim.run(), labels)
