"""Schema introspection and trace validation.

The schema is derived from the dataclass definitions in ``types.py``
— there is exactly one source of truth.  ``describe()`` renders it as
a JSON-friendly dict (used by ``python -m repro trace`` and by
``tools/check_trace_schema.py`` to pin the contract in CI);
``validate_payload`` checks one event payload and ``validate_trace``
checks a whole JSONL file including its header line.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .types import EVENT_TYPES, SCHEMA_NAME, SCHEMA_VERSION


def _check_int(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


_CHECKERS = {
    "int": _check_int,
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "int | None": lambda v: v is None or _check_int(v),
    "str | None": lambda v: v is None or isinstance(v, str),
    "tuple": lambda v: isinstance(v, (list, tuple)),
    # ``object`` fields carry any JSON scalar (SearchRoundFrontier's
    # best_value may be an int, a float, or None).
    "object": lambda v: v is None or isinstance(v, (int, float, str, bool)),
}


def describe() -> dict:
    """The full schema as a JSON-friendly dict."""
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "events": {
            name: {f.name: f.type for f in fields(cls)}
            for name, cls in sorted(EVENT_TYPES.items())
        },
    }


def validate_payload(payload) -> list[str]:
    """Validate one event payload; returns a list of problems."""
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    name = payload.get("type")
    if not isinstance(name, str):
        return ["payload has no 'type' tag"]
    cls = EVENT_TYPES.get(name)
    if cls is None:
        return [f"unknown event type {name!r}"]
    errors = []
    spec = {f.name: f.type for f in fields(cls)}
    for fname, ftype in spec.items():
        if fname not in payload:
            errors.append(f"{name}: missing field {fname!r}")
            continue
        checker = _CHECKERS.get(ftype)
        if checker is not None and not checker(payload[fname]):
            errors.append(
                f"{name}.{fname}: expected {ftype}, "
                f"got {type(payload[fname]).__name__}"
            )
    for fname in payload:
        if fname != "type" and fname not in spec:
            errors.append(f"{name}: unexpected field {fname!r}")
    return errors


def validate_header(header) -> list[str]:
    """Validate the trace header line."""
    if not isinstance(header, dict):
        return ["header must be an object"]
    errors = []
    if header.get("schema") != SCHEMA_NAME:
        errors.append(
            f"header schema is {header.get('schema')!r}, "
            f"expected {SCHEMA_NAME!r}"
        )
    version = header.get("version")
    if not _check_int(version):
        errors.append("header has no integer 'version'")
    elif version > SCHEMA_VERSION:
        errors.append(
            f"trace version {version} is newer than this reader "
            f"(schema version {SCHEMA_VERSION})"
        )
    elif version < 1:
        errors.append(f"nonsensical trace version {version}")
    return errors


@dataclass
class TraceReport:
    """Outcome of :func:`validate_trace`."""

    path: str
    header: dict | None = None
    events: int = 0
    counts: dict = field(default_factory=dict)
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_trace(path, *, max_errors: int = 20) -> TraceReport:
    """Validate a JSONL trace file line by line.

    Error strings carry 1-based line numbers.  Validation keeps going
    after an invalid line (up to ``max_errors``) so one bad record
    doesn't hide the rest of the report.
    """
    import json

    report = TraceReport(path=str(path))

    def record(lineno: int, problems: list[str]) -> None:
        for problem in problems:
            if len(report.errors) < max_errors:
                report.errors.append(f"line {lineno}: {problem}")

    try:
        fh = open(path, encoding="utf-8")
    except OSError as exc:
        report.errors.append(str(exc))
        return report
    with fh:
        saw_header = False
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except ValueError as exc:
                record(lineno, [f"invalid JSON ({exc})"])
                continue
            if not saw_header:
                saw_header = True
                report.header = payload if isinstance(payload, dict) else None
                record(lineno, validate_header(payload))
                continue
            problems = validate_payload(payload)
            record(lineno, problems)
            if not problems:
                report.events += 1
                name = payload["type"]
                report.counts[name] = report.counts.get(name, 0) + 1
    if not saw_header:
        report.errors.append("empty trace: missing schema header line")
    if len(report.errors) >= max_errors:
        report.errors.append(f"... (stopped after {max_errors} errors)")
    return report
