"""The composite dispatcher and the module-global attachment point.

Emission sites follow one pattern::

    from repro.events import stream as event_stream
    ...
    emit = event_stream.current()        # once, at construction time
    ...
    if emit is not None:                 # per emission: one None check
        emit.emit(SomeEvent(...))

``current()`` returns ``None`` when nothing is attached, so the
no-processor cost at an emission site is a single ``is None`` test —
no event object is even constructed.  Attachment is process-local:
events emitted inside pool worker processes do not reach a dispatcher
attached in the parent (see docs/observability.md for the boundary).

``attached(...)`` composes: attaching inside an already-attached scope
creates a dispatcher over the union of processors, so an outer JSONL
trace still sees events while an inner ``ListProcessor`` collects
them.  On scope exit only the newly added processors are shut down.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager


class EventDispatcher:
    """Fans one event out to every registered processor, in order.

    A processor that raises stops the run — observability code must
    not silently corrupt an experiment, and a broken trace writer
    should be loud.  Processors needing best-effort semantics can
    catch internally.
    """

    __slots__ = ("processors",)

    def __init__(self, processors=()):
        self.processors = tuple(processors)

    def emit(self, event) -> None:
        for proc in self.processors:
            proc.on_event(event)

    async def emit_async(self, event) -> None:
        """Like :meth:`emit`, awaiting async processors."""
        for proc in self.processors:
            handler = getattr(proc, "on_event_async", None)
            if handler is not None:
                await handler(event)
            else:
                proc.on_event(event)

    def close(self) -> None:
        """Shut every processor down (first error wins, all run)."""
        first: Exception | None = None
        for proc in self.processors:
            try:
                outcome = proc.shutdown()
                if inspect.isawaitable(outcome):
                    outcome.close()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if first is None:
                    first = exc
        if first is not None:
            raise first

    def __bool__(self) -> bool:
        return bool(self.processors)

    def __len__(self) -> int:
        return len(self.processors)


_ACTIVE: EventDispatcher | None = None


def current() -> EventDispatcher | None:
    """The dispatcher emission sites should use, or ``None``."""
    return _ACTIVE


def attach(dispatcher: EventDispatcher | None) -> EventDispatcher | None:
    """Set the global dispatcher; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = dispatcher if dispatcher else None
    return previous


@contextmanager
def attached(*processors):
    """Attach processors for the duration of a ``with`` block.

    Yields the active :class:`EventDispatcher`.  Processors already
    attached by an enclosing scope keep receiving events; only the
    processors added here are shut down on exit.  With no processors
    the block is a no-op (nothing attached, nothing to restore).
    """
    processors = tuple(p for p in processors if p is not None)
    if not processors:
        yield _ACTIVE
        return
    previous = _ACTIVE
    combined = previous.processors if previous is not None else ()
    dispatcher = EventDispatcher(combined + processors)
    attach(dispatcher)
    try:
        yield dispatcher
    finally:
        attach(previous)
        EventDispatcher(processors).close()
