"""``python -m repro trace`` — validate, replay and render traces.

Subcommands:

``validate FILE``
    Schema-check every line (header + payloads); print per-type
    counts.  Exit 0 when clean, 1 when invalid.
``replay FILE [--html OUT]``
    Round-trip every payload through the typed-event codec (the
    replay contract) and print a summary; ``--html`` additionally
    writes the self-contained replay viewer.
``summary FILE``
    Per-type counts and trial/simulation tallies, ``--json`` for
    machine consumption.
``schema``
    Print the event schema derived from the dataclass definitions.
"""

from __future__ import annotations

import argparse
import json

from . import replay as replay_mod
from . import schema as schema_mod


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Validate, summarize and replay JSONL event traces "
                    "captured with --events (see docs/observability.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser(
        "validate", help="schema-check a trace file line by line",
    )
    p_validate.add_argument("trace", help="JSONL trace file")
    p_validate.add_argument(
        "--json", action="store_true", help="emit the report as JSON",
    )

    p_replay = sub.add_parser(
        "replay",
        help="round-trip every event through the typed codec; "
             "optionally render the HTML replay viewer",
    )
    p_replay.add_argument("trace", help="JSONL trace file")
    p_replay.add_argument(
        "--html", metavar="OUT", default=None,
        help="write the self-contained HTML replay viewer to OUT",
    )

    p_summary = sub.add_parser(
        "summary", help="per-type event counts and tallies",
    )
    p_summary.add_argument("trace", help="JSONL trace file")
    p_summary.add_argument(
        "--json", action="store_true", help="emit the summary as JSON",
    )

    sub.add_parser("schema", help="print the event schema as JSON")
    return parser


def trace_main(argv: list[str]) -> int:
    args = build_trace_parser().parse_args(argv)

    if args.command == "schema":
        print(json.dumps(schema_mod.describe(), indent=2, sort_keys=True))
        return 0

    if args.command == "validate":
        report = schema_mod.validate_trace(args.trace)
        if args.json:
            print(json.dumps({
                "path": report.path,
                "ok": report.ok,
                "events": report.events,
                "counts": report.counts,
                "errors": report.errors,
            }, indent=2, sort_keys=True))
        else:
            for error in report.errors:
                print(f"INVALID {error}")
            for name, count in sorted(report.counts.items()):
                print(f"  {name}: {count}")
            verdict = "ok" if report.ok else "INVALID"
            print(f"{report.path}: {report.events} events  {verdict}")
        return 0 if report.ok else 1

    try:
        header, payloads = replay_mod.load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 1

    if args.command == "summary":
        summary = replay_mod.summarize(payloads)
        if args.json:
            print(json.dumps(
                {"header": header, **summary}, indent=2, sort_keys=True
            ))
        else:
            for name, count in summary["counts"].items():
                print(f"  {name}: {count}")
            print(
                f"{args.trace}: {summary['events']} events, "
                f"{summary['trials']} trials, "
                f"{summary['simulations']} simulations "
                f"(schema v{header.get('version')})"
            )
        return 0

    # replay
    try:
        checked = replay_mod.round_trip(payloads)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    summary = replay_mod.summarize(payloads)
    print(
        f"{args.trace}: {checked} events round-trip cleanly "
        f"({summary['simulations']} simulations, "
        f"{summary['trials']} trials)"
    )
    if args.html is not None:
        scenes = replay_mod.render_html(payloads, args.html)
        print(f"replay viewer: {args.html} ({scenes} scenes)")
    return 0
