"""Typed event stream for scheduler and runner observability.

The package is deliberately dependency-free: nothing in here imports
from ``repro.sim`` or ``repro.runner``, so the scheduler, the engine
and every backend can import it without cycles.

Layout:

``types``
    Frozen-dataclass event definitions plus the versioned payload
    codec (``to_payload`` / ``from_payload``) and ``SCHEMA_VERSION``.
``stream``
    The ``EventDispatcher`` composite and the module-global attachment
    point (``current()`` / ``attached(...)``).  Emission sites read
    the global once at construction time; when nothing is attached the
    cost is a single ``is None`` check.
``processors``
    The ``EventProcessor`` protocol (sync + async variants) and the
    shipped processors: ``ListProcessor`` (tests),
    ``JsonlTraceProcessor`` (structured capture) and
    ``ConsoleProgressProcessor`` (line-atomic progress rendering).
``schema``
    Introspection + validation of event payloads and JSONL traces.
``replay``
    Trace loading, payload round-tripping, summaries and the
    self-contained HTML replay viewer.
``cli``
    ``python -m repro trace validate|replay|summary``.

See docs/observability.md for the taxonomy and the version policy.
"""

from .processors import (
    AsyncEventProcessor,
    ConsoleProgressProcessor,
    EventProcessor,
    JsonlTraceProcessor,
    ListProcessor,
)
from .stream import EventDispatcher, attached, current
from .types import (
    SCHEMA_VERSION,
    AgentMove,
    BackendChunkClaimed,
    CohortEject,
    Event,
    RoundAdvance,
    SearchRoundFrontier,
    SimulationEnd,
    SimulationStart,
    SweepEnd,
    SweepProgress,
    SweepStart,
    TrialEnd,
    TrialStart,
    WalkSegment,
    WatchFired,
    from_payload,
    to_payload,
)

__all__ = [
    "SCHEMA_VERSION",
    "Event",
    "SimulationStart",
    "SimulationEnd",
    "RoundAdvance",
    "AgentMove",
    "WalkSegment",
    "WatchFired",
    "CohortEject",
    "TrialStart",
    "TrialEnd",
    "SweepStart",
    "SweepProgress",
    "SweepEnd",
    "SearchRoundFrontier",
    "BackendChunkClaimed",
    "to_payload",
    "from_payload",
    "EventDispatcher",
    "attached",
    "current",
    "EventProcessor",
    "AsyncEventProcessor",
    "ListProcessor",
    "JsonlTraceProcessor",
    "ConsoleProgressProcessor",
]
