"""The ``EventProcessor`` protocol and the shipped processors.

``EventProcessor`` is the sync contract; ``AsyncEventProcessor`` adds
awaitable variants for async consumers (the dispatcher awaits
``on_event_async`` when present).  Three concrete processors ship:

``ListProcessor``
    Collects events in order — the test workhorse.
``JsonlTraceProcessor``
    Structured capture: a schema header line followed by one canonical
    JSON payload per event.  Validate and replay the output with
    ``python -m repro trace``.
``ConsoleProgressProcessor``
    Renders runner-level events as progress lines with rate/ETA,
    writing each line atomically (single locked ``write``) so lines
    from concurrent workers sharing a stream never interleave
    mid-line.
"""

from __future__ import annotations

import json
import sys
import threading
import time as _time
from typing import Protocol, runtime_checkable

from .types import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BackendChunkClaimed,
    Event,
    SearchRoundFrontier,
    SweepProgress,
    SweepStart,
    to_payload,
)


@runtime_checkable
class EventProcessor(Protocol):
    """Synchronous event consumer."""

    def on_event(self, event: Event) -> None:
        """Handle one event.  Called in emission order."""

    def shutdown(self) -> None:
        """Flush and release resources.  Called once, on detach."""


@runtime_checkable
class AsyncEventProcessor(Protocol):
    """Asynchronous event consumer.

    The composite dispatcher awaits ``on_event_async`` when emitting
    via ``emit_async``; the sync ``on_event`` must still work (the
    scheduler hot path is synchronous).
    """

    def on_event(self, event: Event) -> None: ...

    async def on_event_async(self, event: Event) -> None: ...

    def shutdown(self) -> None: ...

    async def shutdown_async(self) -> None: ...


class ListProcessor:
    """Collects events into ``self.events`` — the test workhorse."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.shutdown_called = False

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def shutdown(self) -> None:
        self.shutdown_called = True

    def of_type(self, event_type: type) -> list[Event]:
        return [e for e in self.events if isinstance(e, event_type)]

    def event_types(self) -> list[str]:
        return [type(e).__name__ for e in self.events]

    def clear(self) -> None:
        self.events.clear()


class JsonlTraceProcessor:
    """Writes one canonical-JSON payload per line to ``path``.

    The first line is the schema header
    ``{"schema": "repro.events", "version": N, ...}``; every
    subsequent line is one event payload with sorted keys and compact
    separators, so byte-identical traces mean identical event streams.
    Each line is flushed as written — a crashed run leaves a valid
    prefix.  Writes are locked, making the processor safe to share
    across threads (the pipelined backend's producer thread emits).
    """

    def __init__(self, path, *, source: str | None = None) -> None:
        self.path = str(path)
        self.lines = 0
        self._lock = threading.Lock()
        self._fh = open(self.path, "w", encoding="utf-8")
        header = {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "source": source or "repro",
        }
        self._fh.write(self._dumps(header) + "\n")
        self._fh.flush()

    @staticmethod
    def _dumps(payload: dict) -> str:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def on_event(self, event: Event) -> None:
        line = self._dumps(to_payload(event)) + "\n"
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line)
            self._fh.flush()
            self.lines += 1

    def shutdown(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class ProgressMeter:
    """Throughput and ETA for sweep progress lines.

    Cached trials flood in before any simulation starts (the engine
    reports them first); every cached line restarts the clock, so the
    rate covers the simulation phase only — a warm cache skews neither
    trials/s nor the ETA.
    """

    def __init__(self) -> None:
        self.started = _time.monotonic()
        self.simulated = 0

    def reset_clock(self) -> None:
        if not self.simulated:
            self.started = _time.monotonic()

    # Below one coarse timer tick an elapsed of exactly 0.0 is
    # possible (first batch finishing instantly), and any rate built
    # on it is noise — billions of trials/s, ETA 0 — when it isn't an
    # outright ZeroDivisionError.
    _MIN_ELAPSED = 1e-6

    def line(self, done: int, total: int) -> str:
        self.simulated += 1
        elapsed = _time.monotonic() - self.started
        if elapsed < self._MIN_ELAPSED:
            return "-- trials/s, eta --:--"
        rate = self.simulated / elapsed
        eta = (total - done) / rate
        return f"{rate:.1f} trials/s, eta {eta:.0f}s"

    def summary(self) -> str:
        if not self.simulated:
            return ""
        elapsed = max(
            _time.monotonic() - self.started, self._MIN_ELAPSED
        )
        return (
            f"  ({self.simulated / elapsed:.1f} trials/s, "
            f"{elapsed:.1f}s)"
        )


class ConsoleProgressProcessor:
    """Renders runner events as human progress lines, atomically.

    Every line is emitted as a single ``write`` of a complete
    ``\\n``-terminated string under a class-level lock shared by all
    instances in the process, so concurrent workers writing to the
    same stream (the manifest worker's chunk loop, the pipelined
    backend's producer) can never interleave mid-line.

    ``quiet=True`` keeps the meter ticking (so :meth:`summary` still
    reports a rate) but suppresses the per-event lines.
    """

    # One lock for the whole process: two processors pointed at the
    # same fd must serialize against each other, not just themselves.
    _io_lock = threading.Lock()

    def __init__(self, stream=None, *, quiet: bool = False,
                 prefix: str = "") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.prefix = prefix
        self.meter = ProgressMeter()

    # -- line-atomic output ------------------------------------------

    def note(self, text: str) -> None:
        """Write one arbitrary line atomically (for CLI callers that
        have context the events don't carry)."""
        self._write(text)

    def _write(self, text: str) -> None:
        line = f"{self.prefix}{text}\n"
        with self._io_lock:
            self.stream.write(line)
            try:
                self.stream.flush()
            except (AttributeError, ValueError):
                pass

    # -- event rendering ---------------------------------------------

    def on_event(self, event: Event) -> None:
        if isinstance(event, SweepProgress):
            if event.cached:
                self.meter.reset_clock()
                if not self.quiet:
                    self._write(
                        f"[{event.done}/{event.total}] {event.key}  cached"
                    )
                return
            detail = self.meter.line(event.done, event.total)
            if not self.quiet:
                status = "ok" if event.ok else "FAILED"
                self._write(
                    f"[{event.done}/{event.total}] {event.key}  {status}"
                    f"  ({detail})"
                )
        elif isinstance(event, SweepStart):
            if not self.quiet:
                self._write(
                    f"sweep {event.spec_hash}: {event.total} trials "
                    f"({event.cached} cached) via {event.backend}"
                )
        elif isinstance(event, SearchRoundFrontier):
            if not self.quiet:
                best = "-" if event.best_value is None else event.best_value
                self._write(
                    f"[round {event.round_index}] "
                    f"evaluated {event.attempts}/{event.budget}  "
                    f"best={best}"
                )
        elif isinstance(event, BackendChunkClaimed):
            if not self.quiet:
                self._write(
                    f"[{event.worker}] claimed chunk "
                    f"{event.chunk + 1}/{event.chunks}"
                )

    def summary(self) -> str:
        return self.meter.summary()

    def shutdown(self) -> None:
        try:
            self.stream.flush()
        except (AttributeError, ValueError):
            pass
