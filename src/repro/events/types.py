"""Typed event definitions and the versioned payload codec.

Every event is a frozen dataclass.  Field types are restricted to the
JSON-native subset (``int``/``str``/``bool``/``float``/``None`` and
nested tuples thereof) so a payload survives a JSON round-trip without
loss: ``to_payload`` lowers tuples to lists, ``from_payload`` raises
them back.  Rounds are plain Python ints and may exceed 2**64 — JSON
carries arbitrary-precision integers, so no stringification is needed.

``SCHEMA_VERSION`` names the trace format.  The policy (see
docs/observability.md): adding a new event type or appending an
optional field is a same-version change; renaming or removing a field,
changing a field's meaning, or changing emission order guarantees
bumps the version.  Readers accept traces whose version is <= their
own ``SCHEMA_VERSION`` and reject newer ones.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

SCHEMA_VERSION = 1

# Header line written at the top of every JSONL trace.
SCHEMA_NAME = "repro.events"


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for all typed events."""


# --------------------------------------------------------------------
# Simulation layer (emitted by sim/scheduler.py and sim/cohort.py)
# --------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SimulationStart(Event):
    """A Simulation was constructed (or an event stream was attached).

    ``edges`` is the port graph as ``(u, port_u, v, port_v)`` rows;
    ``agents`` is one ``(label, start_node, wake_round)`` row per
    agent, ``wake_round`` being ``None`` for initially-running agents.
    """

    n: int
    edges: tuple
    agents: tuple


@dataclass(frozen=True, slots=True)
class SimulationEnd(Event):
    """The simulation produced its result."""

    final_round: int
    events: int
    total_moves: int
    gathered: bool


@dataclass(frozen=True, slots=True)
class RoundAdvance(Event):
    """An event-round was committed.

    Emitted after the round's moves/segments/watch events, as the
    commit marker.  ``resumes`` counts agent resumptions processed in
    the round (0 for rounds advanced purely by walk segments).
    """

    round: int
    resumes: int


@dataclass(frozen=True, slots=True)
class AgentMove(Event):
    """One agent crossed one edge in ``round``."""

    round: int
    agent: int
    src: int
    dst: int


@dataclass(frozen=True, slots=True)
class WalkSegment(Event):
    """A batched multi-edge walk executed as a single scheduler event.

    ``round`` is the round of the segment's first edge; ``length`` is
    the number of edges; ``walkers`` lists agent indices and ``routes``
    carries one node route per walker (``length + 1`` nodes each).
    ``observers`` lists co-walking agents in observe mode (vectorized
    planner only).  Per-edge ``AgentMove`` events are *not* emitted for
    segment edges — replay tooling expands routes instead, mirroring
    how trace mode expands ``move_log``.
    """

    round: int
    length: int
    walkers: tuple
    routes: tuple
    observers: tuple


@dataclass(frozen=True, slots=True)
class WatchFired(Event):
    """A node watch triggered, waking agent ``agent`` for ``round``."""

    round: int
    agent: int
    node: int
    count: int


@dataclass(frozen=True, slots=True)
class CohortEject(Event):
    """The lockstep cohort executor ejected trial ``trial`` to the
    scalar scheduler; ``reason`` is the divergence tag (``watch`` /
    ``dormant-wake`` / ``walk-fallback`` / ``trace`` / ``fault`` /
    ``dynamics``)."""

    trial: int
    reason: str


@dataclass(frozen=True, slots=True)
class FaultInjected(Event):
    """The fault adversary crashed agent ``agent`` (label ``label``).

    Emitted at the start of the fault round, before any resume of that
    round: the agent never acts in ``round`` and stops occupying
    ``node`` (its last position) from ``round`` on.
    """

    round: int
    agent: int
    label: int
    node: int


@dataclass(frozen=True, slots=True)
class EdgeBlocked(Event):
    """The dynamic-edge adversary blocked a move in ``round``.

    Agent ``agent`` tried to leave ``node`` through ``port``; the move
    cost the round but not the edge — the agent retries the same port
    in ``round + 1`` (possibly blocked again).  Emitted in the round's
    move-application phase, before the closing :class:`RoundAdvance`.
    """

    round: int
    agent: int
    node: int
    port: int


# --------------------------------------------------------------------
# Runner layer (emitted by runner/trial.py, worker.py, engine.py,
# backends and runner/search/)
# --------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TrialStart(Event):
    """A trial is about to execute (cache misses only)."""

    key: str
    algorithm: str
    family: str
    n: int
    seed: int


@dataclass(frozen=True, slots=True)
class TrialEnd(Event):
    """A trial finished.  ``error`` is ``None`` on success; the metric
    fields are ``None`` when the trial failed before producing them."""

    key: str
    ok: bool
    error: str | None
    rounds: int | None
    moves: int | None
    events: int | None


@dataclass(frozen=True, slots=True)
class SweepStart(Event):
    """``run_experiment`` began: ``total`` trials, ``cached`` of them
    already in the store, executing via ``backend``."""

    spec_hash: str
    backend: str
    total: int
    cached: int


@dataclass(frozen=True, slots=True)
class SweepProgress(Event):
    """One trial of a sweep completed (from cache or execution)."""

    done: int
    total: int
    key: str
    ok: bool
    cached: bool


@dataclass(frozen=True, slots=True)
class SweepEnd(Event):
    """``run_experiment`` finished."""

    total: int
    executed: int
    cached: int
    failed: int


@dataclass(frozen=True, slots=True)
class SearchRoundFrontier(Event):
    """The adaptive adversary search advanced its frontier by one
    round.  ``best_value`` is the objective of the best point so far
    (``None`` until a candidate succeeds)."""

    round_index: int
    attempts: int
    budget: int
    best_value: object
    placement: str | None
    wake: str | None


@dataclass(frozen=True, slots=True)
class BackendChunkClaimed(Event):
    """A manifest worker claimed chunk ``chunk`` of ``chunks``."""

    chunk: int
    chunks: int
    worker: str
    spec_hash: str


# --------------------------------------------------------------------
# Registry + payload codec
# --------------------------------------------------------------------

EVENT_TYPES: dict[str, type[Event]] = {
    cls.__name__: cls
    for cls in (
        SimulationStart,
        SimulationEnd,
        RoundAdvance,
        AgentMove,
        WalkSegment,
        WatchFired,
        CohortEject,
        FaultInjected,
        EdgeBlocked,
        TrialStart,
        TrialEnd,
        SweepStart,
        SweepProgress,
        SweepEnd,
        SearchRoundFrontier,
        BackendChunkClaimed,
    )
}

_FIELDS: dict[type[Event], tuple] = {cls: fields(cls) for cls in EVENT_TYPES.values()}


def _lower(value):
    """Tuples -> lists, recursively, for JSON-native payloads."""
    if isinstance(value, tuple):
        return [_lower(v) for v in value]
    return value


def _raise(value):
    """Lists -> tuples, recursively (inverse of :func:`_lower`)."""
    if isinstance(value, list):
        return tuple(_raise(v) for v in value)
    return value


def to_payload(event: Event) -> dict:
    """Lower an event to a JSON-native dict with a ``type`` tag."""
    cls = type(event)
    payload: dict = {"type": cls.__name__}
    for f in _FIELDS[cls]:
        payload[f.name] = _lower(getattr(event, f.name))
    return payload


def from_payload(payload: dict) -> Event:
    """Reconstruct an event from a :func:`to_payload` dict.

    Raises ``ValueError`` on an unknown type tag or a field-set
    mismatch — the schema checker relies on this being strict.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"event payload must be an object, got {type(payload).__name__}")
    name = payload.get("type")
    cls = EVENT_TYPES.get(name)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event type: {name!r}")
    expected = {f.name for f in _FIELDS[cls]}
    got = set(payload) - {"type"}
    if got != expected:
        missing = sorted(expected - got)
        extra = sorted(got - expected)
        raise ValueError(
            f"{name}: field mismatch (missing={missing}, unexpected={extra})"
        )
    kwargs = {
        f.name: _raise(payload[f.name]) if f.type == "tuple" else payload[f.name]
        for f in _FIELDS[cls]
    }
    return cls(**kwargs)
