"""Trace loading, round-tripping, summaries and the HTML replay viewer.

A trace is replayable when every payload survives
``from_payload`` -> ``to_payload`` unchanged — that is the contract
``python -m repro trace replay`` enforces, and what guarantees a
processor consuming reconstructed events sees exactly what the
emitting process saw.

The HTML viewer animates the gathering dance: agents walking the port
graph round by round, reconstructed from ``SimulationStart`` (the
graph), ``AgentMove`` events and expanded ``WalkSegment`` routes —
the same expansion trace mode applies to ``move_log``.  Scenes are
delimited by ``SimulationStart``/``SimulationEnd`` pairs; traces from
lockstep-cohort runs interleave scenes and are better inspected with
``trace summary`` (see docs/observability.md).
"""

from __future__ import annotations

import json

from .schema import validate_header
from .types import from_payload, to_payload

_SIM_EVENTS = {
    "SimulationStart",
    "SimulationEnd",
    "RoundAdvance",
    "AgentMove",
    "WalkSegment",
    "WatchFired",
    "CohortEject",
}


def load_trace(path) -> tuple[dict, list[dict]]:
    """Read a JSONL trace: ``(header, payloads)``.

    Raises ``ValueError`` on a malformed file (bad JSON, bad header).
    """
    header: dict | None = None
    payloads: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from None
            if header is None:
                problems = validate_header(payload)
                if problems:
                    raise ValueError(f"{path}:{lineno}: {problems[0]}")
                header = payload
                continue
            payloads.append(payload)
    if header is None:
        raise ValueError(f"{path}: empty trace (missing schema header)")
    return header, payloads


def round_trip(payloads: list[dict]) -> int:
    """Assert payload -> event -> payload identity for every payload.

    Returns the number of events checked; raises ``ValueError`` with
    the offending index on the first mismatch.
    """
    for index, payload in enumerate(payloads):
        event = from_payload(payload)
        again = to_payload(event)
        if again != payload:
            raise ValueError(
                f"event {index} ({payload.get('type')}) does not "
                f"round-trip: {payload!r} -> {again!r}"
            )
    return len(payloads)


def summarize(payloads: list[dict]) -> dict:
    """Per-type counts plus trial/simulation tallies."""
    counts: dict[str, int] = {}
    for payload in payloads:
        name = payload.get("type", "?")
        counts[name] = counts.get(name, 0) + 1
    return {
        "events": len(payloads),
        "counts": dict(sorted(counts.items())),
        "simulations": counts.get("SimulationStart", 0),
        "trials": counts.get("TrialStart", 0),
    }


# --------------------------------------------------------------------
# Scene extraction — one scene per SimulationStart..SimulationEnd span
# --------------------------------------------------------------------


def _expand_moves(payload) -> list[tuple]:
    """Per-edge ``(round, agent, src, dst)`` rows for one sim event."""
    kind = payload["type"]
    if kind == "AgentMove":
        return [(payload["round"], payload["agent"], payload["src"], payload["dst"])]
    if kind == "WalkSegment":
        rows = []
        base = payload["round"]
        for agent, route in zip(payload["walkers"], payload["routes"]):
            for j in range(payload["length"]):
                rows.append((base + j, agent, route[j], route[j + 1]))
        return rows
    return []


def extract_scenes(payloads: list[dict], *, max_frames: int = 5000) -> list[dict]:
    """Build animation scenes from a trace.

    Each scene: ``{"n", "edges", "agents", "frames", "truncated"}``
    where ``frames`` is a list of ``{"round": str, "moves": [[agent,
    src, dst], ...], "watches": [[agent, node], ...]}`` in round order.
    Rounds are rendered as strings — they may exceed 2**53 and must
    not be parsed as JS numbers.
    """
    scenes: list[dict] = []
    current: dict | None = None
    moves: list[tuple] = []
    watches: list[tuple] = []

    def flush() -> None:
        nonlocal current, moves, watches
        if current is None:
            return
        frames: list[dict] = []
        for round_, agent, src, dst in moves:
            key = str(round_)
            if not frames or frames[-1]["round"] != key:
                frames.append({"round": key, "moves": [], "watches": []})
            frames[-1]["moves"].append([agent, src, dst])
        frame_by_round = {f["round"]: f for f in frames}
        for round_, agent, node in watches:
            frame = frame_by_round.get(str(round_))
            if frame is not None:
                frame["watches"].append([agent, node])
        truncated = len(frames) > max_frames
        current["frames"] = frames[:max_frames]
        current["truncated"] = truncated
        scenes.append(current)
        current, moves, watches = None, [], []

    for payload in payloads:
        kind = payload.get("type")
        if kind not in _SIM_EVENTS:
            continue
        if kind == "SimulationStart":
            flush()
            current = {
                "n": payload["n"],
                "edges": payload["edges"],
                "agents": payload["agents"],
            }
        elif current is None:
            continue
        elif kind == "SimulationEnd":
            current["final_round"] = str(payload["final_round"])
            current["gathered"] = payload["gathered"]
            flush()
        elif kind == "WatchFired":
            watches.append((payload["round"], payload["agent"], payload["node"]))
        else:
            moves.extend(_expand_moves(payload))
    flush()
    return scenes


# --------------------------------------------------------------------
# HTML viewer
# --------------------------------------------------------------------

_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro trace replay</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 1rem; background: #14161a; color: #e6e6e6; }
  h1 { font-size: 1.1rem; font-weight: 600; }
  #controls { margin: 0.5rem 0; display: flex; gap: 0.5rem; align-items: center; flex-wrap: wrap; }
  button, select { background: #2a2e36; color: #e6e6e6; border: 1px solid #444; border-radius: 4px; padding: 0.25rem 0.7rem; cursor: pointer; }
  input[type=range] { width: 240px; }
  #round { font-variant-numeric: tabular-nums; min-width: 9ch; }
  svg { background: #1b1e24; border: 1px solid #333; border-radius: 6px; }
  .edge { stroke: #4a5060; stroke-width: 1.5; }
  .node { fill: #2f3542; stroke: #7a8294; }
  .node.watch { stroke: #e8c15a; stroke-width: 3; }
  .nlabel { fill: #9aa3b2; font-size: 11px; text-anchor: middle; }
  .agent { stroke: #0b0c0e; stroke-width: 1; transition: cx 0.18s linear, cy 0.18s linear; }
  .alabel { fill: #14161a; font-size: 9px; text-anchor: middle; font-weight: 700; }
  #status { color: #9aa3b2; font-size: 0.85rem; }
</style>
</head>
<body>
<h1>Gathering replay — agents walking the port graph</h1>
<div id="controls">
  <select id="scene"></select>
  <button id="play">▶ play</button>
  <button id="step">step</button>
  <input id="slider" type="range" min="0" value="0">
  <span id="round">round —</span>
  <select id="speed">
    <option value="600">slow</option>
    <option value="250" selected>normal</option>
    <option value="80">fast</option>
  </select>
</div>
<svg id="view" width="720" height="520" viewBox="0 0 720 520"></svg>
<div id="status"></div>
<script>
const SCENES = __SCENES__;
const COLORS = ["#e06c75","#61afef","#98c379","#c678dd","#e5c07b",
                "#56b6c2","#d19a66","#abb2bf"];
const svg = document.getElementById("view");
const NS = "http://www.w3.org/2000/svg";
let scene = null, frame = -1, positions = [], timer = null;

function layout(n) {
  const cx = 360, cy = 250, r = Math.min(200, 40 + 14 * n);
  const pts = [];
  for (let i = 0; i < n; i++) {
    const a = -Math.PI / 2 + 2 * Math.PI * i / n;
    pts.push([cx + r * Math.cos(a), cy + r * Math.sin(a)]);
  }
  return pts;
}

function el(name, attrs, parent) {
  const e = document.createElementNS(NS, name);
  for (const k in attrs) e.setAttribute(k, attrs[k]);
  (parent || svg).appendChild(e);
  return e;
}

function agentXY(node, slot, total) {
  const [x, y] = scene.pts[node];
  if (total === 1) return [x, y - 0];
  const a = 2 * Math.PI * slot / total;
  return [x + 11 * Math.cos(a), y + 11 * Math.sin(a)];
}

function drawScene() {
  svg.innerHTML = "";
  scene.pts = layout(scene.n);
  for (const [u, , v] of scene.edges.map(e => [e[0], e[1], e[2]])) {
    const [x1, y1] = scene.pts[u], [x2, y2] = scene.pts[v];
    if (u === v) continue;
    el("line", {x1, y1, x2, y2, class: "edge"});
  }
  scene.nodeEls = [];
  scene.pts.forEach(([x, y], i) => {
    scene.nodeEls.push(el("circle", {cx: x, cy: y, r: 14, class: "node"}));
    el("text", {x, y: y + 4, class: "nlabel"}).textContent = i;
  });
  scene.agentEls = [];
  scene.agents.forEach((a, i) => {
    const color = COLORS[i % COLORS.length];
    const g = el("g", {});
    const c = el("circle", {r: 7, class: "agent", fill: color}, g);
    const t = el("text", {class: "alabel", dy: 3}, g);
    t.textContent = a[0];
    scene.agentEls.push({g, c, t});
  });
  positions = scene.agents.map(a => a[1]);
  placeAgents();
}

function placeAgents() {
  const byNode = {};
  positions.forEach((p, i) => { (byNode[p] = byNode[p] || []).push(i); });
  positions.forEach((p, i) => {
    const group = byNode[p], slot = group.indexOf(i);
    const [x, y] = agentXY(p, slot, group.length);
    const {c, t} = scene.agentEls[i];
    c.setAttribute("cx", x); c.setAttribute("cy", y);
    t.setAttribute("x", x); t.setAttribute("y", y);
  });
}

function applyFrame(k) {
  // Recompute from scratch up to frame k so the slider can seek.
  positions = scene.agents.map(a => a[1]);
  scene.nodeEls.forEach(n => n.classList.remove("watch"));
  for (let i = 0; i <= k && i < scene.frames.length; i++)
    for (const [agent, , dst] of scene.frames[i].moves)
      positions[agent] = dst;
  if (k >= 0 && k < scene.frames.length)
    for (const [, node] of scene.frames[k].watches)
      scene.nodeEls[node].classList.add("watch");
  placeAgents();
  frame = k;
  document.getElementById("slider").value = k + 1;
  const label = k < 0 ? "start" : scene.frames[k].round;
  document.getElementById("round").textContent = "round " + label;
  const done = k >= scene.frames.length - 1;
  const tail = scene.truncated ? " (truncated)" :
    done && scene.gathered !== undefined ?
      (scene.gathered ? " — gathered ✔" : " — not gathered") : "";
  document.getElementById("status").textContent =
    "frame " + (k + 1) + "/" + scene.frames.length + tail;
}

function stop() { if (timer) { clearInterval(timer); timer = null; }
                  document.getElementById("play").textContent = "▶ play"; }

function play() {
  if (timer) { stop(); return; }
  if (frame >= scene.frames.length - 1) applyFrame(-1);
  document.getElementById("play").textContent = "❚❚ pause";
  timer = setInterval(() => {
    if (frame >= scene.frames.length - 1) { stop(); return; }
    applyFrame(frame + 1);
  }, +document.getElementById("speed").value);
}

function loadScene(i) {
  stop();
  scene = SCENES[i];
  const slider = document.getElementById("slider");
  slider.max = scene.frames.length;
  drawScene();
  applyFrame(-1);
}

const sel = document.getElementById("scene");
SCENES.forEach((s, i) => {
  const o = document.createElement("option");
  o.value = i;
  o.textContent = "simulation " + (i + 1) + " (n=" + s.n + ", " +
                  s.agents.length + " agents, " + s.frames.length + " frames)";
  sel.appendChild(o);
});
sel.onchange = () => loadScene(+sel.value);
document.getElementById("play").onclick = play;
document.getElementById("step").onclick = () => {
  stop();
  if (frame < scene.frames.length - 1) applyFrame(frame + 1);
};
document.getElementById("slider").oninput = e => {
  stop(); applyFrame(+e.target.value - 1);
};
if (SCENES.length) loadScene(0);
else document.getElementById("status").textContent =
  "trace contains no simulation events";
</script>
</body>
</html>
"""


def render_html(payloads: list[dict], out_path) -> int:
    """Write the self-contained replay viewer; returns scene count."""
    scenes = extract_scenes(payloads)
    blob = json.dumps(scenes, separators=(",", ":"))
    html = _HTML_TEMPLATE.replace("__SCENES__", blob)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(html)
    return len(scenes)
