"""Wake-up schedule builders for the adversary.

The model (Section 1.2) lets an adversary wake any subset of agents at
any rounds; the rest sleep until an awake agent walks across their
starting node.  These helpers build the `wake_rounds` lists the run
wrappers accept, including a seeded random adversary for property
tests and benchmark sweeps.
"""

from __future__ import annotations

import random

WakeSchedule = list

# A wake entry is an int round or None (dormant until visited).


def simultaneous(team_size: int) -> list[int | None]:
    """Everyone wakes in round 0."""
    _check(team_size)
    return [0] * team_size


def staggered(team_size: int, gap: int) -> list[int | None]:
    """Agent ``i`` wakes at round ``i * gap``."""
    _check(team_size)
    if gap < 0:
        raise ValueError("gap must be non-negative")
    return [i * gap for i in range(team_size)]


def single_awake(team_size: int, awake_index: int = 0) -> list[int | None]:
    """Only one agent is woken; the rest sleep until visited."""
    _check(team_size)
    if not 0 <= awake_index < team_size:
        raise ValueError("awake_index out of range")
    schedule: list[int | None] = [None] * team_size
    schedule[awake_index] = 0
    return schedule


def random_schedule(
    team_size: int,
    max_delay: int,
    seed: int = 0,
    dormant_probability: float = 0.25,
) -> list[int | None]:
    """Seeded random adversary: delays in ``[0, max_delay]`` with some
    agents dormant; at least one agent always wakes at round 0."""
    _check(team_size)
    if max_delay < 0:
        raise ValueError("max_delay must be non-negative")
    if not 0.0 <= dormant_probability <= 1.0:
        raise ValueError("dormant_probability must be a probability")
    rng = random.Random(seed)
    schedule: list[int | None] = []
    for _ in range(team_size):
        if rng.random() < dormant_probability:
            schedule.append(None)
        else:
            schedule.append(rng.randint(0, max_delay))
    first = rng.randrange(team_size)
    schedule[first] = 0
    return schedule


def _check(team_size: int) -> None:
    if team_size < 1:
        raise ValueError("team_size must be positive")
