"""Wake-up schedule builders for the adversary.

The model (Section 1.2) lets an adversary wake any subset of agents at
any rounds; the rest sleep until an awake agent walks across their
starting node.  These helpers build the `wake_rounds` lists the run
wrappers accept, including a seeded random adversary for property
tests and benchmark sweeps.

Each builder is also addressable by a *strategy string* — e.g.
``"staggered:3"`` or ``"random:20:25"`` — so experiment grids
(:mod:`repro.runner`) can treat wake schedules as a declarative,
hashable axis.  :func:`schedule_from_strategy` turns a strategy string
plus a team size and a derived seed into a concrete schedule; the seed
only matters for the ``random`` strategy, which makes every strategy a
pure function of ``(strategy, team_size, seed)`` and therefore
identical in every worker process.
"""

from __future__ import annotations

import random

WakeSchedule = list

# A wake entry is an int round or None (dormant until visited).


def simultaneous(team_size: int) -> list[int | None]:
    """Everyone wakes in round 0."""
    _check(team_size)
    return [0] * team_size


def staggered(team_size: int, gap: int) -> list[int | None]:
    """Agent ``i`` wakes at round ``i * gap``."""
    _check(team_size)
    if gap < 0:
        raise ValueError("gap must be non-negative")
    return [i * gap for i in range(team_size)]


def single_awake(team_size: int, awake_index: int = 0) -> list[int | None]:
    """Only one agent is woken; the rest sleep until visited."""
    _check(team_size)
    if not 0 <= awake_index < team_size:
        raise ValueError("awake_index out of range")
    schedule: list[int | None] = [None] * team_size
    schedule[awake_index] = 0
    return schedule


def random_schedule(
    team_size: int,
    max_delay: int,
    seed: int = 0,
    dormant_probability: float = 0.25,
) -> list[int | None]:
    """Seeded random adversary: delays in ``[0, max_delay]`` with some
    agents dormant; at least one agent always wakes at round 0."""
    _check(team_size)
    if max_delay < 0:
        raise ValueError("max_delay must be non-negative")
    if not 0.0 <= dormant_probability <= 1.0:
        raise ValueError("dormant_probability must be a probability")
    rng = random.Random(seed)
    schedule: list[int | None] = []
    for _ in range(team_size):
        if rng.random() < dormant_probability:
            schedule.append(None)
        else:
            schedule.append(rng.randint(0, max_delay))
    first = rng.randrange(team_size)
    schedule[first] = 0
    return schedule


def _check(team_size: int) -> None:
    if team_size < 1:
        raise ValueError("team_size must be positive")


# ----------------------------------------------------------------------
# Named, seed-derivable strategies (the experiment engine's wake axis).
# ----------------------------------------------------------------------

WAKE_STRATEGIES = (
    "simultaneous", "staggered", "single_awake", "random", "explicit",
)


def parse_explicit_wake(strategy: str) -> tuple[int | None, ...]:
    """Validate an ``explicit`` strategy string; return its entries.

    The form is ``explicit:<e0>-<e1>-...`` with one entry per agent:
    a non-negative integer wake round, or ``x`` for a dormant agent
    (woken only when an awake agent crosses its start node).  This is
    how the adaptive-adversary search (:mod:`repro.runner.search`)
    encodes a *concrete* schedule it found as an ordinary declarative
    axis value — the resulting trials stay pure functions of their
    spec, so search evaluations are cacheable and byte-reproducible
    like any other trial.  At least one entry must be awake.
    """
    kind, _, tail = strategy.partition(":")
    if kind != "explicit" or not tail:
        raise ValueError(
            f"explicit wake strategies are 'explicit:<e0>-<e1>-...' "
            f"with integer or 'x' entries: {strategy!r}"
        )
    entries: list[int | None] = []
    for part in tail.split("-"):
        if part == "x":
            entries.append(None)
            continue
        try:
            value = int(part)
        except ValueError:
            raise ValueError(
                f"explicit wake entries are non-negative integers or "
                f"'x': {strategy!r}"
            ) from None
        if value < 0:
            raise ValueError(
                f"explicit wake rounds must be non-negative: {strategy!r}"
            )
        entries.append(value)
    if all(entry is None for entry in entries):
        raise ValueError(
            f"an explicit schedule needs at least one awake agent: "
            f"{strategy!r}"
        )
    return tuple(entries)


def format_explicit_wake(entries) -> str:
    """The ``explicit:...`` string describing a concrete schedule."""
    return "explicit:" + "-".join(
        "x" if entry is None else str(entry) for entry in entries
    )


def parse_wake_strategy(strategy: str) -> tuple[str, tuple[int, ...]]:
    """Validate a strategy string; return ``(kind, int_args)``.

    Accepted forms (all arguments are non-negative integers)::

        simultaneous
        staggered[:gap]              default gap 1
        single_awake[:index]         default index 0
        random[:max_delay[:pct]]     default max_delay 16, dormant pct 25
        explicit:<e0>-<e1>-...       one entry per agent; 'x' = dormant

    For ``explicit`` the returned args are empty — its entries are not
    plain integers; use :func:`parse_explicit_wake` to read them.
    Raises :class:`ValueError` on anything else, so experiment specs
    can reject a malformed axis at construction time rather than a
    thousand trials in.
    """
    kind, sep, tail = strategy.partition(":")
    if kind not in WAKE_STRATEGIES:
        raise ValueError(
            f"unknown wake strategy {strategy!r}; "
            f"known kinds: {WAKE_STRATEGIES}"
        )
    if sep and not tail:
        raise ValueError(
            f"trailing ':' without an argument: {strategy!r}"
        )
    if kind == "explicit":
        parse_explicit_wake(strategy)
        return kind, ()
    args: tuple[int, ...] = ()
    if tail:
        try:
            args = tuple(int(part) for part in tail.split(":"))
        except ValueError:
            raise ValueError(
                f"wake strategy arguments must be integers: {strategy!r}"
            ) from None
    if any(a < 0 for a in args):
        raise ValueError(
            f"wake strategy arguments must be non-negative: {strategy!r}"
        )
    limits = {"simultaneous": 0, "staggered": 1, "single_awake": 1,
              "random": 2}
    if len(args) > limits[kind]:
        raise ValueError(
            f"too many arguments for wake strategy {kind!r}: {strategy!r}"
        )
    if kind == "random" and len(args) == 2 and args[1] > 100:
        raise ValueError(
            f"dormant percentage must be 0..100: {strategy!r}"
        )
    return kind, args


def schedule_from_strategy(
    strategy: str, team_size: int, seed: int = 0
) -> list[int | None]:
    """Build the wake schedule a strategy string describes.

    Pure in ``(strategy, team_size, seed)``: parallel workers derive
    bit-identical schedules without any coordination.  ``seed`` is only
    consumed by the ``random`` strategy.
    """
    kind, args = parse_wake_strategy(strategy)
    if kind == "explicit":
        entries = parse_explicit_wake(strategy)
        if len(entries) != team_size:
            raise ValueError(
                f"explicit schedule has {len(entries)} entries for a "
                f"team of {team_size}: {strategy!r}"
            )
        return list(entries)
    if kind == "simultaneous":
        return simultaneous(team_size)
    if kind == "staggered":
        gap = args[0] if args else 1
        return staggered(team_size, gap)
    if kind == "single_awake":
        index = args[0] if args else 0
        return single_awake(team_size, awake_index=index)
    max_delay = args[0] if args else 16
    pct = args[1] if len(args) > 1 else 25
    return random_schedule(
        team_size, max_delay, seed=seed, dormant_probability=pct / 100.0
    )
