"""Agent-side runtime: the context object and primitive helpers.

Algorithm code is written as generator functions receiving an
:class:`AgentContext`.  The helpers below are sub-generators used with
``yield from``; each forwards one primitive op to the scheduler,
refreshes ``ctx`` with the resulting :class:`Observation` and converts
fired watches into :class:`WatchTriggered` exceptions, which gives the
pseudo-code's "interrupt this block as soon as ..." a direct and
readable translation::

    try:
        yield from wait(ctx, D, watch=("gt", c))
        yield from explo(ctx, N, watch=("gt", c))
    except WatchTriggered:
        interrupted = True
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator

from ..metrics import register_collector as _register_collector
from .ops import (
    DECLARE,
    MOVE,
    OBSERVE,
    Observation,
    resolve_walk_step,
    WAIT,
    WAIT_STABLE,
    WALK,
    Watch,
    watch_hit,
)

AgentGen = Generator[tuple, Observation, object]

# Walk-plan interner.  Algorithms re-derive the same plans over and
# over as fresh tuples (EXPLO backtracks, EST tree-path probes, ECE
# word sweeps); the scheduler's route cache keys chased routes by plan
# *identity*, so equal plans must be funnelled through one canonical
# tuple to hit it.  Bounded LRU; plans are graph-independent port/rule
# sequences, so sharing across agents and trials is safe.
_PLAN_INTERN: OrderedDict[tuple, tuple] = OrderedDict()
_PLAN_INTERN_CAP = 4096

# Hit/miss tallies: plain module ints on the hot path, published into
# an attached metrics registry as absolute process totals at snapshot
# time (see the collector at the bottom of this module).
_INTERN_HITS = 0
_INTERN_MISSES = 0


def intern_plan(steps: tuple) -> tuple:
    """The canonical tuple equal to ``steps`` (inserted if new)."""
    global _INTERN_HITS, _INTERN_MISSES
    hit = _PLAN_INTERN.get(steps)
    if hit is not None:
        _INTERN_HITS += 1
        _PLAN_INTERN.move_to_end(steps)
        return hit
    _INTERN_MISSES += 1
    _PLAN_INTERN[steps] = steps
    if len(_PLAN_INTERN) > _PLAN_INTERN_CAP:
        _PLAN_INTERN.popitem(last=False)
    return steps


def intern_stats() -> tuple[int, int]:
    """``(hits, misses)`` of the walk-plan interner, process-wide."""
    return _INTERN_HITS, _INTERN_MISSES


def reset_intern_stats() -> None:
    """Zero the tallies (a forked pool worker starts its own totals)."""
    global _INTERN_HITS, _INTERN_MISSES
    _INTERN_HITS = 0
    _INTERN_MISSES = 0


def _collect_intern_stats(registry) -> None:
    registry.counter("sim.plan_intern.hits").value = _INTERN_HITS
    registry.counter("sim.plan_intern.misses").value = _INTERN_MISSES


_register_collector(_collect_intern_stats)


class WatchTriggered(Exception):
    """A watched cardinality condition fired during an op."""

    def __init__(self, observation: Observation) -> None:
        super().__init__("watch triggered")
        self.observation = observation


class AgentContext:
    """Per-agent view handed to algorithm generators.

    Exposes the agent's label, its last observation and a local clock.
    Everything else (node identity, other agents' labels or positions)
    is deliberately absent, matching the paper's model.
    """

    __slots__ = ("label", "obs", "wake_round", "entries_log")

    def __init__(self, label: int) -> None:
        self.label = label
        self.obs: Observation | None = None
        self.wake_round: int | None = None
        # Optional recording of entry ports; Hypothesis() (Algorithm 6)
        # retraces every port it entered through during its first part.
        self.entries_log: list[int] | None = None

    # -- perception ----------------------------------------------------

    def curcard(self) -> int:
        """CurCard: number of agents at the current node, now."""
        return self.obs.curcard

    def degree(self) -> int:
        """Degree of the current node."""
        return self.obs.degree

    def local_time(self) -> int:
        """Rounds elapsed since this agent woke up."""
        return self.obs.round - self.wake_round

    def record_entries(self) -> None:
        """Start logging ports of entry (for Algorithm 6 line 16)."""
        self.entries_log = []

    def stop_recording_entries(self) -> list[int]:
        """Stop logging and return the recorded entry ports."""
        log = self.entries_log if self.entries_log is not None else []
        self.entries_log = None
        return log


def move(ctx: AgentContext, port: int, watch: Watch | None = None) -> AgentGen:
    """``take port p``: one round, returns the arrival observation."""
    obs = yield (MOVE, port, watch)
    ctx.obs = obs
    if ctx.entries_log is not None:
        ctx.entries_log.append(obs.entry_port)
    if watch is not None and watch_hit(watch, obs.curcard):
        raise WatchTriggered(obs)
    return obs


def walk(
    ctx: AgentContext,
    steps,
    watch: Watch | None = None,
    stop_before_invalid: bool = False,
) -> AgentGen:
    """Walk a deterministic multi-edge segment, one round per edge.

    ``steps`` is a walk plan (see :mod:`repro.sim.ops`): a tuple of
    ints where ``step >= 0`` is an absolute exit port and ``step < 0``
    is a UXS-rule step with offset ``~step``.  The scheduler may
    execute any interaction-free prefix as a single event; this helper
    loops until the whole plan has run, so agent code sees exactly the
    per-edge history of the per-step model.

    Returns a list of per-edge records ``(round, degree, entry_port,
    curcard)`` — what :func:`move` would have observed on each arrival.
    Raises :class:`WatchTriggered` on the first arrival whose CurCard
    fires ``watch``, after recording that edge (like :func:`move`).

    With ``stop_before_invalid`` the walk ends quietly *before* the
    first absolute step that is not a valid port of the current node
    (for plans hypothesised against an unknown graph, cf. Algorithm 8);
    otherwise such a step is rejected by the scheduler exactly like a
    bad ``move``.
    """
    steps = tuple(steps)
    trace: list[tuple[int, int, int, int]] = []
    entry: int | None = None  # UXS rule state along the walk
    i = 0
    total = len(steps)
    while i < total:
        degree = ctx.degree()
        port = resolve_walk_step(steps[i], entry, degree)
        if stop_before_invalid and (port < 0 or port >= degree):
            return trace
        obs = yield (WALK, port, steps, i, watch)
        ctx.obs = obs
        walked = getattr(obs, "walked", None)
        if walked is None:
            # Slow path: the scheduler executed exactly one edge with
            # the ordinary simultaneous-move machinery.
            entry = obs.entry_port
            trace.append((obs.round, obs.degree, entry, obs.curcard))
            if ctx.entries_log is not None:
                ctx.entries_log.append(entry)
            i += 1
        else:
            # Fast path: a whole segment ran as one event.
            trace.extend(walked)
            if ctx.entries_log is not None:
                ctx.entries_log.extend(rec[2] for rec in walked)
            entry = walked[-1][2]
            i += len(walked)
        if watch is not None and watch_hit(watch, obs.curcard):
            raise WatchTriggered(obs)
    return trace


def walk_cols(
    ctx: AgentContext,
    steps,
    watch: Watch | None = None,
) -> AgentGen:
    """:func:`walk`, returning column lists instead of row tuples.

    Returns ``(entries, degrees, curcards)`` — the per-edge history as
    three parallel lists.  Same op stream, same watch semantics and
    same scheduler-visible behavior as :func:`walk`; walk-dominated
    algorithms (``EXPLO``) use this to reduce whole segments with C
    primitives (``min``, slicing) instead of scanning row tuples.
    """
    steps = tuple(steps)
    ents: list[int] = []
    degs: list[int] = []
    cards: list[int] = []
    entry: int | None = None  # UXS rule state along the walk
    i = 0
    total = len(steps)
    entries_log = ctx.entries_log
    while i < total:
        degree = ctx.degree()
        port = resolve_walk_step(steps[i], entry, degree)
        obs = yield (WALK, port, steps, i, watch)
        ctx.obs = obs
        cols = getattr(obs, "walked_cols", None)
        if cols is None:
            # Slow path: exactly one edge via the ordinary machinery.
            entry = obs.entry_port
            ents.append(entry)
            degs.append(obs.degree)
            cards.append(obs.curcard)
            if entries_log is not None:
                entries_log.append(entry)
            i += 1
        else:
            # Fast path: a whole segment ran as one event.
            _rounds, cdegs, cents, ccards = cols
            ents.extend(cents)
            degs.extend(cdegs)
            cards.extend(ccards)
            if entries_log is not None:
                entries_log.extend(cents)
            entry = ents[-1]
            i += len(cents)
        if watch is not None and watch_hit(watch, obs.curcard):
            raise WatchTriggered(obs)
    return ents, degs, cards


def observe(ctx: AgentContext, rounds: int) -> AgentGen:
    """Observe CurCard for ``rounds`` consecutive rounds while waiting.

    Byte-identical to ``rounds`` iterations of ``wait(ctx, 1)`` each
    followed by a CurCard reading — same events, same round arithmetic —
    but issued as ``observe`` ops so the scheduler's segment planner
    can advance a stationary observer together with a walking cohort
    (the rank-ordered dance of ``StarCheck`` is the motivating case).

    Returns a list of per-round records ``(round, degree, entry_port,
    curcard)``; ``entry_port`` is always ``None`` (the agent does not
    move).  Does not touch ``ctx.entries_log``.  ``rounds <= 0`` is a
    no-op returning an empty list.
    """
    records: list[tuple[int, int, None, int]] = []
    remaining = rounds
    while remaining > 0:
        obs = yield (OBSERVE, remaining, None)
        ctx.obs = obs
        walked = getattr(obs, "walked", None)
        if walked is None:
            # Slow path: one round observed via the ordinary machinery.
            records.append((obs.round, obs.degree, None, obs.curcard))
            remaining -= 1
        else:
            # Fast path: a whole segment of rounds ran as one event.
            records.extend(walked)
            remaining -= len(walked)
    return records


def wait(ctx: AgentContext, rounds: int, watch: Watch | None = None) -> AgentGen:
    """``wait x rounds``; duration 0 is a no-op.

    If the watch already holds when the wait would begin, the wait is
    abandoned immediately (the paper's "as soon as").
    """
    if watch is not None and watch_hit(watch, ctx.obs.curcard):
        raise WatchTriggered(ctx.obs)
    if rounds <= 0:
        return ctx.obs
    obs = yield (WAIT, rounds, watch)
    ctx.obs = obs
    if obs.triggered:
        raise WatchTriggered(obs)
    return obs


def wait_stable(ctx: AgentContext, window: int) -> AgentGen:
    """Wait until ``window`` consecutive rounds pass with no CurCard
    variation, counting from (and including) the round of the latest
    variation — the primitive of lines 16/31 of Algorithm 3."""
    if window <= 0:
        return ctx.obs
    obs = yield (WAIT_STABLE, window, None)
    ctx.obs = obs
    return obs


def declare(ctx: AgentContext, payload: object) -> AgentGen:
    """Terminal op: declare (gathering achieved) with a result payload."""
    yield (DECLARE, payload, None)
    raise AssertionError("agent resumed after declaring")  # pragma: no cover
