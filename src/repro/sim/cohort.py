"""Lockstep trial cohorts and the numpy-vectorized segment planner.

Two related fast paths live here, both strictly optional (the scalar
scheduler remains complete without numpy) and both bound by the same
contract as the segment planner itself: **byte-identity** with per-step
execution, checked by the differential suite against
:mod:`repro.sim.reference`.

1. **Vectorized segment planning** (:func:`plan_segment`).  The scalar
   planner in :mod:`repro.sim.scheduler` re-chases every walk route
   step by step in Python on every segment.  Routes, however, are pure
   functions of ``(graph, plan, position in plan, node, exit port)`` —
   so a :class:`RouteCache` chases each distinct start state once,
   registers every suffix of the chase (the continuation from any
   mid-plan state is a suffix of the same chase), and serves numpy
   array views thereafter.  Truncation bounds, exact per-arrival
   CurCards, watch evaluation and ``last_change`` updates are then
   vector operations over those views.  The planner also understands
   stationary ``observe`` cohort members (see :mod:`repro.sim.ops`),
   which is what lets ``StarCheck``'s waiters share a segment with the
   dancing agent.

2. **Lockstep cohorts** (:class:`CohortScheduler`).  K same-graph
   trials advance one event-round at a time in lockstep, with the
   scheduler state mirrored in ``(K, ·)`` numpy arrays — agent
   positions, CurCard counters, ``last_change`` and wake rounds — used
   for frontier selection and divergence auditing.  The moment a trial
   diverges (a watch fires, a walk segment falls back to per-edge
   execution, a dormant agent is woken, trace mode, or any error) it
   is *ejected*: its mirror row is verified against the scalar
   scheduler's exported state, re-imported, and the very same
   :class:`~repro.sim.scheduler.Simulation` object runs to completion
   on the scalar path.  Python generators cannot be snapshotted, so
   mid-trial state never leaves its ``Simulation``; the export/import
   hooks carry the *scheduler arrays* (positions, counts,
   ``last_change``, entry ports, events), which is exactly what the
   cohort mirrors and what the ejection hand-off re-validates.

Round-valued arrays use ``dtype=object``: the unknown-bound algorithm
runs clocks past ``2**64`` and rounds must stay exact big ints.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from ..events.types import CohortEject as _EvCohortEject
from ..graphs.port_graph import PortGraph
from ..metrics import registry as _metrics_registry
from .ops import SimulationError
from .scheduler import _DONE, Simulation, SimulationResult

HAVE_NUMPY = np is not None


class CohortDesyncError(SimulationError):
    """The cohort's mirror arrays disagree with a trial's scheduler.

    Raised at ejection hand-off; indicates an internal bookkeeping bug
    (the mirrors are refreshed from ``export_state`` after every step),
    never a model outcome.
    """


# ----------------------------------------------------------------------
# Route cache: chased walk routes keyed by plan identity.
# ----------------------------------------------------------------------

class _PlanRoutes:
    """Chased routes of one walk plan on one graph.

    A walk's future is a pure function of its *state* ``(position in
    plan, node, exit port)``: the exit port determines the next edge,
    the traversed edge determines the entry port, and every later step
    resolves from entry ports alone.  Each chase therefore registers
    all of its intermediate states, so a walk resuming anywhere along a
    previously chased route is an O(1) dict hit returning array views.
    """

    __slots__ = ("steps", "_suffix", "_chases")

    def __init__(self, steps: tuple[int, ...]) -> None:
        # Strong reference: keeps id(steps) valid for the cache key.
        self.steps = steps
        self._suffix: dict[tuple[int, int, int], tuple[int, int]] = {}
        self._chases: list[tuple] = []

    def route(self, graph: PortGraph, pos: int, node: int, port: int):
        """Arrays ``(nodes, entries, degrees)`` of the remaining route.

        ``nodes`` has the start node at index 0; ``entries[j]`` /
        ``degrees[j]`` describe the arrival at ``nodes[j + 1]``.  The
        route ends at the plan's end or just before the first invalid
        absolute step, exactly like the scalar planner's walk-out.
        """
        key = (pos, node, port)
        hit = self._suffix.get(key)
        if hit is None:
            self._chase(graph, pos, node, port)
            hit = self._suffix[key]
        ci, off = hit
        nodes, ents, degs = self._chases[ci]
        return nodes[off:], ents[off:], degs[off:]

    def _chase(self, graph: PortGraph, pos: int, node: int, port: int) -> None:
        steps = self.steps
        adj = graph._adj
        total = len(steps)
        nodes = [node]
        ents: list[int] = []
        degs: list[int] = []
        states = [(pos, node, port)]
        t = pos
        while True:
            node, entry = adj[node][port]
            nodes.append(node)
            ents.append(entry)
            degree = len(adj[node])
            degs.append(degree)
            t += 1
            if t >= total:
                break
            step = steps[t]
            if step >= 0:
                if step >= degree:
                    break  # invalid absolute step ends the route
                port = step
            else:
                port = (entry + ~step) % degree
            states.append((t, node, port))
        ci = len(self._chases)
        self._chases.append((
            np.asarray(nodes, dtype=np.int64),
            np.asarray(ents, dtype=np.int64),
            np.asarray(degs, dtype=np.int64),
        ))
        suffix = self._suffix
        for off, key in enumerate(states):
            # A state reached by two chases has identical continuations
            # (the walk is deterministic), so first registration wins.
            suffix.setdefault(key, (ci, off))


class RouteCache:
    """Per-graph cache of :class:`_PlanRoutes`, keyed by plan identity.

    Plans are keyed by ``id(steps)`` with a strong reference kept in
    the entry, so a hit is only served for the *same tuple object*
    (providers return cached tuples; fresh tuples simply miss and pay
    one chase).  Bounded LRU so ad-hoc plans cannot grow it forever.
    """

    __slots__ = ("graph", "_plans")
    _MAX_PLANS = 64

    def __init__(self, graph: PortGraph) -> None:
        self.graph = graph
        self._plans: OrderedDict[int, _PlanRoutes] = OrderedDict()

    def route(self, steps: tuple[int, ...], pos: int, node: int, port: int):
        key = id(steps)
        pr = self._plans.get(key)
        if pr is None or pr.steps is not steps:
            pr = _PlanRoutes(steps)
            self._plans[key] = pr
            if len(self._plans) > self._MAX_PLANS:
                self._plans.popitem(last=False)
        else:
            self._plans.move_to_end(key)
        return pr.route(self.graph, pos, node, port)


# Shared per-graph caches: trials executed on the same graph object
# (the pipelined backend's batches, cohort members) reuse chased
# routes automatically.  Keyed by id with a strong graph reference —
# PortGraph has no __weakref__ slot — and LRU-bounded.
_GRAPH_CACHES: OrderedDict[int, tuple[PortGraph, RouteCache]] = OrderedDict()
_GRAPH_CACHE_CAP = 8


def route_cache_for(graph: PortGraph) -> RouteCache:
    """The shared :class:`RouteCache` of ``graph`` (created on demand)."""
    key = id(graph)
    hit = _GRAPH_CACHES.get(key)
    if hit is not None and hit[0] is graph:
        _GRAPH_CACHES.move_to_end(key)
        return hit[1]
    cache = RouteCache(graph)
    _GRAPH_CACHES[key] = (graph, cache)
    if len(_GRAPH_CACHES) > _GRAPH_CACHE_CAP:
        _GRAPH_CACHES.popitem(last=False)
    return cache


# ----------------------------------------------------------------------
# Vectorized joint segment planning.
# ----------------------------------------------------------------------

def _commit_last_change(
    last_change: list, round_: int, endpoint_arrs, idx
) -> None:
    """Write each endpoint node's latest changed round into ``last_change``.

    ``endpoint_arrs`` are equal-length arrays of changed nodes, all
    indexed by the (ascending) round indices ``idx``.  One sort over
    the interleaved endpoints replaces a per-round scatter matrix: the
    first occurrence of a node in the reversed round-ordered sequence
    is its latest change.
    """
    k = len(idx)
    e = len(endpoint_arrs)
    seq = np.empty(e * k, dtype=np.int64)
    for j, arr in enumerate(endpoint_arrs):
        seq[j::e] = arr
    rev = seq[::-1]
    uniq, first = np.unique(rev, return_index=True)
    tidx = idx[(e * k - 1 - first) // e]
    for v, t in zip(uniq.tolist(), tidx.tolist()):
        last_change[v] = round_ + int(t) + 1


class SegmentPlan:
    """Output of :func:`plan_segment`, consumed by the scheduler.

    ``walkers[w]`` is ``(nodes, entries, degrees, curcards)`` as plain
    Python lists (``tolist()`` keeps observations and traces free of
    numpy scalars); ``observer_cards[o]`` is the per-round CurCard
    trace of the o-th observer.  ``_nodes`` retains the walker routes
    as an ``(W, m+1)`` int64 matrix for the last_change update.
    ``watch_fired`` marks a segment whose last edge fires a walk
    watch — the walk helper will raise :class:`WatchTriggered` at the
    resume, a divergence the lockstep cohort ejects on.
    """

    __slots__ = ("m", "walkers", "observer_cards", "_nodes", "watch_fired")

    def __init__(
        self, m, walkers, observer_cards, nodes_matrix,
        watch_fired=False,
    ) -> None:
        self.m = m
        self.walkers = walkers
        self.observer_cards = observer_cards
        self._nodes = nodes_matrix
        self.watch_fired = watch_fired

    def apply_last_change(self, last_change: list, round_: int, n: int) -> None:
        """Set ``last_change`` exactly as m rounds of per-step moves would.

        Per round, a node's cardinality changed iff its arrival/departure
        delta is non-zero; the latest such round wins.  Observers never
        move, so a pure-observe segment changes nothing.  One and two
        walkers (the overwhelmingly common cohorts) avoid the per-round
        delta matrix: their cancellation cases are enumerable, so the
        changed endpoints come straight from endpoint comparisons.
        """
        arr = self._nodes
        if arr is None:
            return
        m = self.m
        W = arr.shape[0]
        if W == 1:
            a = arr[0]
            src = a[:m]
            dst = a[1:]
            idx = np.nonzero(src != dst)[0]
            if len(idx):
                _commit_last_change(
                    last_change, round_, (src[idx], dst[idx]), idx
                )
            return
        if W == 2:
            sa, da = arr[0, :m], arr[0, 1:]
            sb, db = arr[1, :m], arr[1, 1:]
            lock = (sa == sb) & (da == db)
            disjoint = (
                ~lock
                & (sa != da) & (sb != db) & (sa != sb)
                & (da != db) & (sa != db) & (sb != da)
            )
            lastr = np.full(n, -1, dtype=np.int64)
            idx = np.nonzero(lock & (sa != da))[0]
            if len(idx):
                np.maximum.at(lastr, sa[idx], idx)
                np.maximum.at(lastr, da[idx], idx)
            idx = np.nonzero(disjoint)[0]
            if len(idx):
                for ends in (sa, da, sb, db):
                    np.maximum.at(lastr, ends[idx], idx)
            # Crossings cancel exactly: each node loses one walker and
            # gains the other, so neither endpoint's CurCard changes.
            swap = ~lock & (sa == db) & (sb == da)
            # Remaining collisions / splits / self-loops: exact
            # per-node deltas (rare rounds).
            for t in np.nonzero(~(lock | disjoint | swap))[0].tolist():
                deltas = {int(sa[t]): -1}
                for v, d in (
                    (int(da[t]), 1), (int(sb[t]), -1), (int(db[t]), 1)
                ):
                    deltas[v] = deltas.get(v, 0) + d
                for v, delta in deltas.items():
                    if delta and t > lastr[v]:
                        lastr[v] = t
            for v in np.nonzero(lastr >= 0)[0].tolist():
                last_change[v] = round_ + int(lastr[v]) + 1
            return
        cols = np.arange(m)
        delta = np.zeros((n, m), dtype=np.int16)
        np.add.at(delta, (arr[:, :m], cols), -1)
        np.add.at(delta, (arr[:, 1:m + 1], cols), 1)
        changed = delta != 0
        rows = np.nonzero(changed.any(axis=1))[0]
        if not len(rows):
            return
        last_idx = m - 1 - changed[:, ::-1].argmax(axis=1)
        for v in rows.tolist():
            last_change[v] = round_ + int(last_idx[v]) + 1


def plan_segment(
    sim: Simulation,
    walks: list[tuple],
    observes: list[tuple[int, int]],
    round_: int,
) -> SegmentPlan | None:
    """Vectorized twin of ``Simulation._plan_segment``.

    Same contract, same truncation rules (documented in
    ``scheduler.py``), plus stationary observers: the longest joint
    prefix during which the per-step model could not have diverged, or
    ``None`` when no segment of at least two rounds is safe.  All
    truncation bounds are order-independent minima, so per-walker
    bounds are intersected instead of re-scanned sequentially.
    """
    heap = sim._heap
    epoch = sim._epoch
    state = sim._state
    while heap:
        _, _, i0, ep0 = heap[0]
        if ep0 != epoch[i0] or state[i0] == _DONE:
            heapq.heappop(heap)
        else:
            break
    cohort = len(walks) + len(observes)
    bounds = [len(steps) - pos for _i, _h, steps, pos, _w in walks]
    bounds.extend(rem for _i, rem in observes)
    m = min(bounds)
    if heap:
        gap = heap[0][0] - round_
        if gap < m:
            m = gap
    if sim.max_round is not None:
        # Truncating here reproduces the per-step budget raise at the
        # segment-end resume (see the scalar planner).
        gap = sim.max_round - round_ + 1
        if gap < m:
            m = gap
    if sim.max_events is not None:
        gap = (sim.max_events - sim._events) // cohort + 1
        if gap < m:
            m = gap
    if sim._dynamics is not None:
        # Cached routes know nothing about per-round edge liveness;
        # dynamic-edge trials run per-step (and the cohort ejects them
        # up front, like trace mode).
        return None
    if sim._fault_queue is not None:
        # A crash is processed at the *start* of its round (unlike
        # moves, which commit at the end), so any arrival card planned
        # for the fault round would go stale the moment the crash hit.
        # End the segment strictly before it; the per-step machinery
        # then observes the crash with live counts.
        fault = sim._next_fault_round()
        if fault is not None:
            gap = fault - round_ - 1
            if gap < m:
                m = gap
    if m < 2:
        return None
    pos_of = sim._pos
    watchers = sim._watchers
    for idx, _h, _s, _p, _w in walks:
        # Departures from a watched node notify through the ordinary
        # machinery.
        if watchers[pos_of[idx]]:
            return None
    n = sim.graph.n
    cache = sim.route_cache
    # Structural pass: cached routes; a route ending early (plan end
    # was already bounded above, so this is an invalid absolute step)
    # truncates the joint segment.
    routes = []
    for idx, head, steps, pos, _w in walks:
        nodes, ents, degs = cache.route(steps, pos, pos_of[idx], head)
        avail = len(ents)
        if avail < m:
            m = avail
        routes.append((nodes, ents, degs))
    if m < 2:
        return None
    dormant_at = sim._dormant_at
    blocked = [v for v in range(n) if watchers[v] or dormant_at[v]]
    if blocked and routes:
        mask = np.zeros(n, dtype=bool)
        mask[blocked] = True
        for nodes, _e, _d in routes:
            hits = mask[nodes[1:m + 1]]
            if hits.any():
                t = int(hits.argmax())  # stop before waking anyone
                if t < m:
                    m = t
                    if m < 2:
                        return None
    # Card pass: statics are _counts minus the walkers (observers are
    # static and stay in); cohort co-location comes from the occupancy
    # matrix.  Exact per-arrival CurCards, truncated at the first
    # firing walk watch (that edge is the segment's last).
    counts_np = np.array(sim._counts, dtype=np.int64)
    W = len(walks)
    nodes_matrix = None
    body = None
    cards = None
    occ = None
    watch_fired = False
    if W:
        for i, _h, _s, _p, _w in walks:
            counts_np[pos_of[i]] -= 1
        nodes_matrix = np.empty((W, m + 1), dtype=np.int64)
        for w, (nodes, _e, _d) in enumerate(routes):
            nodes_matrix[w] = nodes[:m + 1]
        body = nodes_matrix[:, 1:]
        if W == 1:
            cards = counts_np[body] + 1
        elif W == 2:
            # Pair cohort: co-location is a single equality row, no
            # occupancy matrix needed.
            together = body[0] == body[1]
            cards = counts_np[body] + 1
            cards[0] += together
            cards[1] += together
        else:
            cols = np.arange(m)
            occ = np.zeros((n, m), dtype=np.int64)
            np.add.at(occ, (body, cols), 1)
            cards = counts_np[body] + occ[body, cols]
        fired = None
        for w, (_i, _h, _s, _p, watch) in enumerate(walks):
            if watch is None:
                continue
            kind, value = watch
            row = cards[w]
            if kind == "gt":
                f = row > value
            elif kind == "ne":
                f = row != value
            elif kind == "eq":
                f = row == value
            else:  # "lt"
                f = row < value
            fired = f if fired is None else (fired | f)
        if fired is not None and fired.any():
            watch_fired = True
            m = int(fired.argmax()) + 1  # the firing edge is the last
            if m < 2:
                return None
            nodes_matrix = nodes_matrix[:, :m + 1]
            body = nodes_matrix[:, 1:]
            if occ is not None:
                occ = occ[:, :m]
            cards = cards[:, :m]
    observer_cards: list[list[int]] = []
    if observes:
        obs_nodes = np.array([pos_of[i] for i, _r in observes],
                             dtype=np.int64)
        base = counts_np[obs_nodes][:, None]
        if not W:
            ocards = np.broadcast_to(base, (len(observes), m))
        elif occ is not None:
            ocards = base + occ[obs_nodes]
        else:
            # W <= 2: per-round co-walker occupancy of each observer's
            # node is a direct equality test against the routes.
            ocards = base + (body[0] == obs_nodes[:, None])
            if W == 2:
                ocards = ocards + (body[1] == obs_nodes[:, None])
        observer_cards = [row.tolist() for row in ocards]
    walkers = []
    for w, (nodes, ents, degs) in enumerate(routes):
        walkers.append((
            nodes[:m + 1].tolist(),
            ents[:m].tolist(),
            degs[:m].tolist(),
            cards[w].tolist(),
        ))
    return SegmentPlan(
        m, walkers, observer_cards, nodes_matrix, watch_fired
    )


# ----------------------------------------------------------------------
# Lockstep cohort execution.
# ----------------------------------------------------------------------

class CohortOutcome:
    """Per-trial outcome of a cohort run.

    Exactly one of ``result`` / ``error`` is set; ``ejected`` is the
    divergence tag when the trial left the lockstep loop (``None`` for
    trials that completed inside it).
    """

    __slots__ = ("result", "error", "ejected")

    def __init__(self, result=None, error=None, ejected=None) -> None:
        self.result: SimulationResult | None = result
        self.error: BaseException | None = error
        self.ejected: str | None = ejected

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "ok" if self.error is None else f"error={self.error!r}"
        return f"CohortOutcome({status}, ejected={self.ejected})"


# Mirror fields refreshed from Simulation.export_state after each step
# and re-verified at ejection.
_MIRROR_FIELDS = ("positions", "counts", "last_change", "events")


class CohortScheduler:
    """Run K same-graph trials in lockstep, ejecting on divergence.

    Every trial is a fully built :class:`Simulation` (its agent
    generators live nowhere else); the cohort holds the *scheduler*
    state of all K trials as ``(K, ·)`` numpy arrays and advances the
    frontier — the minimum next-event round across live trials — one
    event-round at a time.  Ejection rules (divergence from the vector
    path): a fired watch, a walk-segment fallback, a dormant wake-up,
    trace mode, an injected crash fault, a blocked dynamic edge, or any
    raised error.  A crash updates occupancy before the mirror refresh
    and a blocked move changes no state at all, so the hand-off audit
    holds for both.  An ejected trial's mirror row is
    verified against ``export_state()``, re-imported through
    ``import_state()``, and the trial finishes on the scalar path —
    the same object, so results are byte-identical by construction
    (and re-checked against the reference oracle by the test suite).
    """

    def __init__(self, graph: PortGraph, sims: list[Simulation]) -> None:
        if np is None:  # pragma: no cover - numpy is baked into the image
            raise SimulationError("cohort execution requires numpy")
        if not sims:
            raise SimulationError("empty cohort")
        for sim in sims:
            if sim.graph is not graph:
                raise SimulationError(
                    "cohort trials must share one graph object"
                )
        self.graph = graph
        self.sims = sims
        k = len(sims)
        n = graph.n
        amax = max(len(sim.specs) for sim in sims)
        # (K, ·) mirrors.  Rounds are exact big ints -> object dtype.
        self.positions = np.full((k, amax), -1, dtype=np.int64)
        self.counts = np.zeros((k, n), dtype=np.int64)
        self.last_change = np.zeros((k, n), dtype=object)
        self.wake_rounds = np.full((k, amax), None, dtype=object)
        self.next_rounds = np.full(k, None, dtype=object)
        self.events = np.zeros(k, dtype=object)
        self.ejected: list[str | None] = [None] * k
        self._outcomes: list[CohortOutcome | None] = [None] * k
        self._mx = _metrics_registry.current()
        for i, sim in enumerate(sims):
            for a, spec in enumerate(sim.specs):
                self.wake_rounds[i, a] = spec.wake_round
            self._refresh(i, sim)

    # -- mirror bookkeeping -------------------------------------------

    def _refresh(self, i: int, sim: Simulation) -> None:
        # Straight off the scheduler arrays: a full export_state()
        # per step would rescan the event heap, and the mirrors only
        # track what export_state would copy anyway (the snapshot is
        # still taken — and audited against these rows — at ejection).
        pos = sim._pos
        self.positions[i, :len(pos)] = pos
        self.counts[i] = sim._counts
        self.last_change[i] = sim._last_change
        self.events[i] = sim._events

    def _verify_row(self, i: int, state: dict) -> None:
        k = len(state["positions"])
        mirror = {
            "positions": self.positions[i, :k].tolist(),
            "counts": self.counts[i].tolist(),
            "last_change": self.last_change[i].tolist(),
            "events": int(self.events[i]),
        }
        for field in _MIRROR_FIELDS:
            if mirror[field] != state[field]:
                raise CohortDesyncError(
                    f"cohort trial {i}: mirrored {field} diverged from "
                    f"the scheduler ({mirror[field]!r} != {state[field]!r})"
                )

    # -- main loop -----------------------------------------------------

    def run(self) -> list[CohortOutcome]:
        """Execute all trials; never raises for per-trial failures."""
        sims = self.sims
        k = len(sims)
        for i, sim in enumerate(sims):
            if sim.trace:
                # Per-edge move logs are exactly what the vector path
                # does not track: straight to the scalar scheduler.
                self.ejected[i] = "trace"
        lockstep_rounds = 0
        while True:
            live = [
                i for i in range(k)
                if self._outcomes[i] is None and self.ejected[i] is None
            ]
            if not live:
                break
            lockstep_rounds += 1
            for i in live:
                self.next_rounds[i] = sims[i].next_event_round()
            # An empty heap with live agents is a deadlock; step those
            # trials immediately so they raise the scalar error.
            due = [i for i in live if self.next_rounds[i] is None]
            if not due:
                frontier = min(self.next_rounds[i] for i in live)
                due = [i for i in live if self.next_rounds[i] == frontier]
            for i in due:
                self._step(i)
        self._finish_ejected()
        if self._mx is not None:
            # One flush per cohort; eject causes are a bounded label
            # set (the divergence tags), so cardinality stays small.
            mx = self._mx
            mx.counter("sim.cohort.runs").value += 1
            mx.histogram("sim.cohort.size").observe(k)
            mx.counter("sim.cohort.rounds").value += lockstep_rounds
            for tag in self.ejected:
                if tag is not None:
                    mx.counter("sim.cohort.ejects", reason=tag).value += 1
        return [out for out in self._outcomes if True]  # type: ignore[misc]

    def _step(self, i: int) -> None:
        sim = self.sims[i]
        try:
            sim.step_round()
        except Exception as exc:
            self._outcomes[i] = CohortOutcome(error=exc)
            return
        if sim.finished:
            self._outcomes[i] = CohortOutcome(result=sim.result())
            return
        self._refresh(i, sim)
        tag = sim.last_step_divergence
        if tag is not None:
            self.ejected[i] = tag

    def _finish_ejected(self) -> None:
        for i, sim in enumerate(self.sims):
            if self._outcomes[i] is not None:
                continue
            tag = self.ejected[i]
            if tag is not None and sim._emit is not None:
                # The eject path is observable: emit through the
                # trial's own dispatcher before the scalar resume.
                sim._emit.emit(_EvCohortEject(trial=i, reason=tag))
            try:
                if tag != "trace":
                    # Hand-off audit: the mirror row must agree with
                    # the scheduler before the trial resumes scalar.
                    state = sim.export_state()
                    self._verify_row(i, state)
                    sim.import_state(state)
                result = sim.run()
            except Exception as exc:
                self._outcomes[i] = CohortOutcome(error=exc, ejected=tag)
            else:
                self._outcomes[i] = CohortOutcome(result=result, ejected=tag)


def run_cohort(
    graph: PortGraph, sims: list[Simulation]
) -> list[CohortOutcome]:
    """Convenience wrapper: build a :class:`CohortScheduler` and run it."""
    return CohortScheduler(graph, sims).run()
