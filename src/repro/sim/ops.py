"""Primitive operations and observations of the agent model.

The paper's agents execute exactly one *move instruction* per round:
``take port p`` or ``wait`` (Section 1.2).  The only perception an
agent ever gets is:

* on entering a node: the node's degree and the port of entry,
* in every round: ``CurCard`` — the number of agents (itself included)
  at its current node.

Agent programs are Python generators that yield primitive ops; the
scheduler resumes them with :class:`Observation` objects.  A multi-round
``wait`` is a single op: the scheduler compresses the intervening
rounds, which is what makes the doubly-exponential waiting periods of
``GatherUnknownUpperBound`` executable (see DESIGN.md Section 4).

Watches
-------
Interruptible blocks ("interrupt as soon as CurCard > c") are expressed
as declarative *watches* attached to ``wait`` and ``move`` ops:

* ``("gt", c)``  — trigger when ``CurCard > c``
* ``("ne", c)``  — trigger when ``CurCard != c``
* ``("eq", c)``  — trigger when ``CurCard == c``
* ``("lt", c)``  — trigger when ``CurCard < c``

For ``move`` ops the watch is evaluated by the agent-side helpers on
the arrival observation; for ``wait`` ops the scheduler evaluates it
whenever the occupancy of the waiting agent's node changes.
"""

from __future__ import annotations

from typing import Callable

# Op kind tags (tuples keep the hot path allocation-light).
MOVE = "move"
WALK = "walk"
WAIT = "wait"
WAIT_STABLE = "wait_stable"
DECLARE = "declare"
# ``(OBSERVE, remaining, None)`` — observe CurCard for ``remaining``
# consecutive rounds while staying put.  Semantically identical to
# ``remaining`` one-round waits each followed by a CurCard reading, but
# expressed as one op so the segment planner can run a stationary
# observer as a cohort member of a multi-round segment (the planner
# computes the per-round CurCard trace it would have seen).  The
# scheduler may deliver any prefix of the requested rounds; the agent
# helper re-issues the op with the rest, like ``walk``.
OBSERVE = "observe"

Watch = tuple[str, int]

_WATCH_PREDICATES: dict[str, Callable[[int, int], bool]] = {
    "gt": lambda card, value: card > value,
    "ne": lambda card, value: card != value,
    "eq": lambda card, value: card == value,
    "lt": lambda card, value: card < value,
}


def watch_hit(watch: Watch | None, curcard: int) -> bool:
    """Evaluate a watch against a cardinality reading."""
    if watch is None:
        return False
    kind, value = watch
    return _WATCH_PREDICATES[kind](curcard, value)


# ----------------------------------------------------------------------
# Walk plans.
#
# A ``walk`` op describes a whole deterministic multi-edge segment in
# one op, so the scheduler can execute it as a *single* event when no
# interaction is possible (see the segment planner in ``scheduler.py``).
# A plan is a tuple of *walk steps*, each a plain int:
#
# * ``step >= 0`` — an absolute exit port (backtracks, stored paths);
# * ``step < 0``  — a UXS-rule step encoding the offset ``x`` as
#   ``~x``: the exit port is ``(entry + x) mod degree``, or ``x mod
#   degree`` for the first edge of a fresh walk (no entry port yet).
#
# The encoding keeps plans allocation-light (flat int tuples) while
# letting agents precompute entire EXPLO / signature walks without
# knowing the graph: the offsets are known in advance, and the
# scheduler (which does know the graph) resolves them edge by edge.
# ----------------------------------------------------------------------

WalkStep = int


def uxs_walk_steps(offsets) -> tuple[int, ...]:
    """Encode a UXS offset sequence as a walk plan (rule steps)."""
    return tuple(~x for x in offsets)


def resolve_walk_step(step: WalkStep, entry: int | None, degree: int) -> int:
    """Exit port of one walk step given the rule state ``entry``.

    Absolute steps are returned as-is (callers validate the range, so
    an out-of-range port fails exactly like a bad ``move`` op would).
    """
    if step >= 0:
        return step
    offset = ~step
    if entry is None:
        return offset % degree
    return (entry + offset) % degree


def iter_walk(graph, start: int, steps, entry: int | None = None):
    """Shared step iterator: yield ``(port, node, entry)`` per edge.

    Resolves a walk plan against a concrete graph from ``start`` with
    initial rule state ``entry``, stopping before the first absolute
    step that is not a valid port.  Used by the UXS helpers
    (:mod:`repro.explore.uxs`), the scheduler's segment planner and the
    reference scheduler, so all three agree on step semantics.
    """
    node = start
    for step in steps:
        degree = graph.degree(node)
        port = resolve_walk_step(step, entry, degree)
        if port < 0 or port >= degree:
            return
        node, entry = graph.neighbor(node, port)
        yield port, node, entry


class Observation:
    """What an agent perceives in one round.

    Attributes
    ----------
    round:
        The global round number.  Agent algorithms must only use
        *differences* of rounds (their local clock); the absolute value
        exists for tracing and tests.
    degree:
        Degree of the current node.
    entry_port:
        Port through which the agent entered the node if the previous
        op was a move, else ``None``.
    curcard:
        Number of agents co-located with the agent (itself included).
    triggered:
        True when this observation is delivered because a watch fired
        during a ``wait``.
    """

    __slots__ = ("round", "degree", "entry_port", "curcard", "triggered")

    def __init__(
        self,
        round: int,
        degree: int,
        entry_port: int | None,
        curcard: int,
        triggered: bool = False,
    ) -> None:
        self.round = round
        self.degree = degree
        self.entry_port = entry_port
        self.curcard = curcard
        self.triggered = triggered

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Observation(round={self.round}, degree={self.degree}, "
            f"entry_port={self.entry_port}, curcard={self.curcard}, "
            f"triggered={self.triggered})"
        )


class WalkObservation(Observation):
    """Observation delivered at the end of a fast-path walk segment.

    ``walked`` holds one record per edge of the segment, each the
    ``(round, degree, entry_port, curcard)`` the agent *would* have
    observed under per-edge execution; the inherited fields describe
    the final arrival (and duplicate the last record).  The ``walk``
    helper in :mod:`repro.sim.agent` replays ``walked`` into the
    agent-side bookkeeping, so algorithm code sees per-edge history
    bit-for-bit identical to the per-step model.

    The scheduler hands the history over as *columns* — equal-length
    sequences of rounds, degrees, entry ports and CurCards — because
    walk-dominated algorithms (``EXPLO``) reduce them wholesale and
    never look at row tuples; ``walked`` zips the rows on first access
    for everyone else.
    """

    __slots__ = ("walked_cols", "_walked")

    def __init__(
        self,
        round: int,
        degree: int,
        entry_port: int | None,
        curcard: int,
        triggered: bool,
        walked_cols: tuple,
    ) -> None:
        super().__init__(round, degree, entry_port, curcard, triggered)
        self.walked_cols = walked_cols
        self._walked: list | None = None

    @property
    def walked(self) -> list:
        rows = self._walked
        if rows is None:
            rows = self._walked = list(zip(*self.walked_cols))
        return rows


class SimulationError(RuntimeError):
    """Raised for protocol violations (bad port, bad op, budget)."""


class DeadlockError(SimulationError):
    """All remaining agents wait forever on conditions nobody can meet."""


class BudgetExceededError(SimulationError):
    """The event or round budget of the simulation was exhausted."""
