"""Independent verification of a traced run against the model rules.

The scheduler is trusted by construction, but downstream users writing
*custom agent programs* (or modifying the algorithms) want an
independent referee.  Given a traced simulation, these checks replay
the move log and verify the paper's model (Section 1.2) held:

* every move traverses an existing edge of the graph;
* an agent performs at most one move instruction per round;
* no agent moves before its wake-up round or after it terminated;
* reconstructed final positions match the reported outcomes.

Used by the property tests in ``tests/test_verify.py`` and available
as a public API (`verify_run`).
"""

from __future__ import annotations

from ..graphs.port_graph import PortGraph
from .scheduler import Simulation, SimulationResult


class ModelViolation(AssertionError):
    """A traced run broke a rule of the synchronous agent model."""


def verify_run(
    graph: PortGraph,
    sim: Simulation,
    result: SimulationResult,
) -> None:
    """Raise :class:`ModelViolation` unless the traced run is valid."""
    if not sim.trace:
        raise ValueError("run the simulation with trace=True")
    positions = [spec.start_node for spec in sim.specs]
    last_move_round: dict[int, int] = {}
    for round_, idx, src, dst in sim.move_log:
        out = result.outcomes[idx]
        if positions[idx] != src:
            raise ModelViolation(
                f"agent {sim.specs[idx].label} moved from node {src} in "
                f"round {round_} but was at node {positions[idx]}"
            )
        neighbours = {
            graph.step(src, p) for p in range(graph.degree(src))
        }
        if dst not in neighbours:
            raise ModelViolation(
                f"no edge from {src} to {dst} (round {round_})"
            )
        if last_move_round.get(idx) == round_:
            raise ModelViolation(
                f"agent {sim.specs[idx].label} moved twice in round "
                f"{round_}"
            )
        last_move_round[idx] = round_
        if out.wake_round is None or round_ < out.wake_round:
            raise ModelViolation(
                f"agent {sim.specs[idx].label} moved in round {round_} "
                f"before waking at {out.wake_round}"
            )
        if out.finish_round is not None and round_ >= out.finish_round:
            raise ModelViolation(
                f"agent {sim.specs[idx].label} moved in round {round_} "
                f"after finishing at {out.finish_round}"
            )
        positions[idx] = dst
    for idx, out in enumerate(result.outcomes):
        if out.finish_node is not None and positions[idx] != out.finish_node:
            raise ModelViolation(
                f"agent {sim.specs[idx].label} reported finish node "
                f"{out.finish_node} but the move log ends at "
                f"{positions[idx]}"
            )


def verify_gathering(result: SimulationResult) -> None:
    """Raise unless all agents declared at one node in one round."""
    if not result.gathered():
        raise ModelViolation(
            f"agents did not gather: {result.outcomes}"
        )
