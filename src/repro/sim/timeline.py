"""Human-readable timelines of a simulation.

The move log of a traced :class:`~repro.sim.scheduler.Simulation` is a
flat list of ``(round, agent_index, from_node, to_node)``.  This module
turns it into narrated milestones — wake-ups, first meetings, merges,
declarations — used by the examples and by tests that want to assert
*how* a run unfolded, not only its outcome.
"""

from __future__ import annotations

from ..graphs.port_graph import PortGraph
from .scheduler import Simulation, SimulationResult


class Milestone:
    """One noteworthy event of a run."""

    __slots__ = ("round", "kind", "detail")

    def __init__(self, round_: int, kind: str, detail: str) -> None:
        self.round = round_
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Milestone({self.round}, {self.kind!r}, {self.detail!r})"


def _positions_over_time(
    sim: Simulation,
) -> list[tuple[int, list[int]]]:
    """Reconstruct positions after each round with movement."""
    positions = [spec.start_node for spec in sim.specs]
    snapshots: list[tuple[int, list[int]]] = [(0, list(positions))]
    current_round = None
    for round_, idx, _src, dst in sim.move_log:
        if round_ != current_round:
            if current_round is not None:
                snapshots.append((current_round + 1, list(positions)))
            current_round = round_
        positions[idx] = dst
    if current_round is not None:
        snapshots.append((current_round + 1, list(positions)))
    return snapshots


def extract_milestones(
    sim: Simulation, result: SimulationResult
) -> list[Milestone]:
    """Milestones of a traced run: wake-ups, meetings, declaration."""
    if not sim.trace:
        raise ValueError("run the simulation with trace=True")
    milestones: list[Milestone] = []
    for out in result.outcomes:
        if out.wake_round is not None:
            milestones.append(
                Milestone(
                    out.wake_round,
                    "wake",
                    f"agent {out.label} wakes at its start node",
                )
            )
    seen_pairs: set[frozenset[int]] = set()
    for round_, positions in _positions_over_time(sim):
        by_node: dict[int, list[int]] = {}
        for idx, node in enumerate(positions):
            by_node.setdefault(node, []).append(idx)
        for node, members in by_node.items():
            if len(members) < 2:
                continue
            labels = frozenset(sim.specs[i].label for i in members)
            if labels not in seen_pairs:
                seen_pairs.add(labels)
                names = ", ".join(str(sim.specs[i].label) for i in members)
                milestones.append(
                    Milestone(
                        round_,
                        "meeting",
                        f"agents {{{names}}} co-located at node {node}",
                    )
                )
    for out in result.outcomes:
        if out.declared:
            milestones.append(
                Milestone(
                    out.finish_round,
                    "declare",
                    f"agent {out.label} declares gathering at node "
                    f"{out.finish_node}",
                )
            )
    milestones.sort(key=lambda m: (m.round, m.kind))
    return milestones


def narrate(
    sim: Simulation,
    result: SimulationResult,
    max_lines: int | None = None,
) -> str:
    """Multi-line narration of a traced run."""
    milestones = extract_milestones(sim, result)
    if max_lines is not None and len(milestones) > max_lines:
        head = milestones[: max_lines // 2]
        tail = milestones[-(max_lines - len(head)) :]
        skipped = len(milestones) - len(head) - len(tail)
        lines = [f"round {m.round}: {m.detail}" for m in head]
        lines.append(f"... ({skipped} meetings omitted) ...")
        lines.extend(f"round {m.round}: {m.detail}" for m in tail)
    else:
        lines = [f"round {m.round}: {m.detail}" for m in milestones]
    return "\n".join(lines)


def occupancy_histogram(
    graph: PortGraph, sim: Simulation
) -> dict[int, int]:
    """How many times each node was entered (for heat-map analyses)."""
    histogram = {node: 0 for node in graph.nodes()}
    for _round, _idx, _src, dst in sim.move_log:
        histogram[dst] += 1
    return histogram
