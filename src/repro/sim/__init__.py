"""Event-driven simulator for synchronous mobile agents."""

from .agent import (
    AgentContext,
    WatchTriggered,
    declare,
    move,
    wait,
    wait_stable,
    walk,
)
from .ops import (
    BudgetExceededError,
    DeadlockError,
    Observation,
    SimulationError,
    WalkObservation,
    iter_walk,
    resolve_walk_step,
    uxs_walk_steps,
    watch_hit,
)
from .reference import ReferenceSimulation
from .adversary import random_schedule, simultaneous, single_awake, staggered
from .scheduler import AgentOutcome, AgentSpec, Simulation, SimulationResult
from .timeline import Milestone, extract_milestones, narrate, occupancy_histogram
from .verify import ModelViolation, verify_gathering, verify_run

__all__ = [
    "simultaneous",
    "staggered",
    "single_awake",
    "random_schedule",
    "Milestone",
    "extract_milestones",
    "narrate",
    "occupancy_histogram",
    "ModelViolation",
    "verify_run",
    "verify_gathering",
    "AgentContext",
    "WatchTriggered",
    "move",
    "wait",
    "wait_stable",
    "walk",
    "declare",
    "Observation",
    "WalkObservation",
    "iter_walk",
    "resolve_walk_step",
    "uxs_walk_steps",
    "watch_hit",
    "ReferenceSimulation",
    "SimulationError",
    "DeadlockError",
    "BudgetExceededError",
    "AgentSpec",
    "AgentOutcome",
    "Simulation",
    "SimulationResult",
]
