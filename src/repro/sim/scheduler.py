"""Event-driven scheduler for the synchronous agent model.

The model is synchronous (Section 1.2 of the paper): in every round
each awake agent performs exactly one move instruction (``take port p``
or ``wait``).  A naive simulator would iterate rounds one by one, which
is hopeless here — ``GatherUnknownUpperBound`` contains waiting periods
of ``7 * 2**64`` rounds and the known-bound algorithm waits for
millions of rounds between moves.

This scheduler exploits a simple invariant: *node occupancancies only
change in rounds in which some agent moves.*  Time therefore advances
directly from one "interesting" round to the next through a priority
queue of wake events; a wait of any length is O(1).  Rounds are plain
Python integers, so clocks beyond 10**24 (reached by the unknown-bound
algorithm) are exact.

Semantics of a round ``r``:

1. every agent due at ``r`` is resumed with an observation of the
   state *at* ``r`` and yields its next op;
2. all moves issued in round ``r`` are applied simultaneously — agents
   crossing on an edge do not notice each other;
3. nodes whose cardinality changed get ``last_change = r + 1`` and
   watching agents are woken at ``r + 1``;
4. a dormant agent whose node receives an arrival in round ``r + 1``
   wakes (starts its program) at ``r + 1``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from ..graphs.port_graph import PortGraph
from .agent import AgentContext
from .ops import (
    BudgetExceededError,
    DeadlockError,
    DECLARE,
    MOVE,
    Observation,
    SimulationError,
    WAIT,
    WAIT_STABLE,
    watch_hit,
)

# Agent lifecycle states.
_DORMANT = 0
_RUNNING = 1
_DONE = 2

# Guard against non-advancing agent programs (zero-duration op loops).
_MAX_RESUMES_PER_ROUND = 100_000


class AgentSpec:
    """Description of one agent given to :class:`Simulation`.

    Parameters
    ----------
    label:
        The agent's positive integer label (its algorithm parameter).
    start_node:
        Starting node (simulator-internal id; never shown to the agent).
    program:
        ``callable(ctx) -> generator`` producing the agent's op stream.
    wake_round:
        Round at which the adversary wakes the agent, or ``None`` for a
        dormant agent woken only by a visiting agent.
    """

    __slots__ = ("label", "start_node", "program", "wake_round")

    def __init__(
        self,
        label: int,
        start_node: int,
        program: Callable[[AgentContext], object],
        wake_round: int | None = 0,
    ) -> None:
        if label < 1:
            raise ValueError("agent labels are positive integers")
        if wake_round is not None and wake_round < 0:
            raise ValueError("wake_round must be >= 0")
        self.label = label
        self.start_node = start_node
        self.program = program
        self.wake_round = wake_round


class AgentOutcome:
    """Result record for one agent after the simulation ends."""

    __slots__ = (
        "label",
        "start_node",
        "wake_round",
        "finish_round",
        "finish_node",
        "payload",
        "declared",
        "moves",
    )

    def __init__(self, label: int, start_node: int) -> None:
        self.label = label
        self.start_node = start_node
        self.wake_round: int | None = None
        self.finish_round: int | None = None
        self.finish_node: int | None = None
        self.payload: object = None
        self.declared = False
        self.moves = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AgentOutcome(label={self.label}, declared={self.declared}, "
            f"finish_round={self.finish_round}, node={self.finish_node}, "
            f"moves={self.moves})"
        )


class SimulationResult:
    """Aggregate outcome of a run."""

    __slots__ = ("outcomes", "events", "final_round", "total_moves")

    def __init__(
        self,
        outcomes: list[AgentOutcome],
        events: int,
        final_round: int,
        total_moves: int,
    ) -> None:
        self.outcomes = outcomes
        self.events = events
        self.final_round = final_round
        self.total_moves = total_moves

    def gathered(self) -> bool:
        """Did every agent declare at the same node in the same round?"""
        if not self.outcomes or not all(o.declared for o in self.outcomes):
            return False
        rounds = {o.finish_round for o in self.outcomes}
        nodes = {o.finish_node for o in self.outcomes}
        return len(rounds) == 1 and len(nodes) == 1

    def declaration_round(self) -> int:
        """The common declaration round (requires :meth:`gathered`)."""
        if not self.gathered():
            raise SimulationError("agents did not gather")
        return self.outcomes[0].finish_round

    def meeting_node(self) -> int:
        """The common declaration node (requires :meth:`gathered`)."""
        if not self.gathered():
            raise SimulationError("agents did not gather")
        return self.outcomes[0].finish_node

    def payloads(self) -> list[object]:
        """Per-agent final payloads in spec order."""
        return [o.payload for o in self.outcomes]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimulationResult(agents={len(self.outcomes)}, "
            f"events={self.events}, final_round={self.final_round})"
        )


class Simulation:
    """Run a set of agents on a port-labelled graph.

    Parameters
    ----------
    graph:
        The network.
    specs:
        One :class:`AgentSpec` per agent; start nodes must be pairwise
        distinct (the paper's model) and labels pairwise distinct.
    max_events:
        Abort with :class:`BudgetExceededError` after this many agent
        resumptions (safety valve for runaway programs).
    max_round:
        Abort when the clock would pass this round.
    trace:
        When true, record every move as ``(round, agent_index,
        from_node, to_node)`` in :attr:`move_log`.
    """

    def __init__(
        self,
        graph: PortGraph,
        specs: Iterable[AgentSpec],
        max_events: int | None = None,
        max_round: int | None = None,
        trace: bool = False,
    ) -> None:
        self.graph = graph
        self.specs = list(specs)
        if not self.specs:
            raise SimulationError("no agents")
        starts = [s.start_node for s in self.specs]
        if len(set(starts)) != len(starts):
            raise SimulationError("agents must start at distinct nodes")
        labels = [s.label for s in self.specs]
        if len(set(labels)) != len(labels):
            raise SimulationError("agent labels must be distinct")
        if any(s.start_node < 0 or s.start_node >= graph.n for s in self.specs):
            raise SimulationError("start node out of range")
        if all(s.wake_round is None for s in self.specs):
            raise SimulationError("at least one agent must be woken")
        self.max_events = max_events
        self.max_round = max_round
        self.trace = trace
        self.move_log: list[tuple[int, int, int, int]] = []

        k = len(self.specs)
        self._pos = list(starts)
        self._state = [_DORMANT] * k
        self._gens: list = [None] * k
        self._ctxs: list[AgentContext | None] = [None] * k
        self._epoch = [0] * k
        self._entry_port: list[int | None] = [None] * k
        self._watch: list = [None] * k  # active wait-watch, if any
        self._stable: list[int | None] = [None] * k  # wait_stable window
        self._outcomes = [AgentOutcome(s.label, s.start_node) for s in self.specs]

        self._counts = [0] * graph.n
        for s in self.specs:
            self._counts[s.start_node] += 1
        self._last_change = [0] * graph.n
        self._dormant_at: list[set[int]] = [set() for _ in range(graph.n)]
        self._watchers: list[set[int]] = [set() for _ in range(graph.n)]

        self._heap: list[tuple[int, int, int, int]] = []
        self._seq = 0
        self._events = 0
        self._active = 0  # agents not DONE (dormant agents count)

        for idx, s in enumerate(self.specs):
            self._active += 1
            self._dormant_at[s.start_node].add(idx)
            if s.wake_round is not None:
                self._push(s.wake_round, idx)

    # ------------------------------------------------------------------
    # Traditional-model capability (baselines only).
    # ------------------------------------------------------------------

    def colocated_labels(self, label: int) -> list[int]:
        """Labels of all agents at the same node as ``label`` right now.

        This is the *traditional* model's perception ("co-located
        agents can talk"), deliberately unavailable to the paper's
        algorithms; only the baseline implementations in
        :mod:`repro.baselines` call it.
        """
        idx = next(
            i for i, s in enumerate(self.specs) if s.label == label
        )
        node = self._pos[idx]
        return sorted(
            s.label
            for i, s in enumerate(self.specs)
            if self._pos[i] == node
        )

    # ------------------------------------------------------------------
    # Heap helpers.
    # ------------------------------------------------------------------

    def _push(self, round_: int, idx: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (round_, self._seq, idx, self._epoch[idx]))

    def _reschedule(self, round_: int, idx: int) -> None:
        self._epoch[idx] += 1
        self._push(round_, idx)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until every agent terminates."""
        graph = self.graph
        heap = self._heap
        while self._active > 0:
            if not heap:
                raise DeadlockError(
                    f"{self._active} agent(s) can never run again "
                    "(dormant and unvisited, or waiting forever)"
                )
            round_ = heap[0][0]
            if self.max_round is not None and round_ > self.max_round:
                raise BudgetExceededError(
                    f"round budget exceeded: next event at round {round_}"
                )
            pending_moves: list[tuple[int, int]] = []  # (idx, port)
            resumes = 0
            while heap and heap[0][0] == round_:
                _, _, idx, epoch = heapq.heappop(heap)
                if epoch != self._epoch[idx] or self._state[idx] == _DONE:
                    continue
                resumes += 1
                if resumes > _MAX_RESUMES_PER_ROUND:
                    raise SimulationError(
                        f"agent resumed too often in round {round_}; "
                        "non-advancing program?"
                    )
                self._events += 1
                if self.max_events is not None and self._events > self.max_events:
                    raise BudgetExceededError(
                        f"event budget exceeded at round {round_}"
                    )
                op = self._resume(idx, round_)
                if op is None:
                    continue  # agent terminated
                kind = op[0]
                if kind == MOVE:
                    pending_moves.append((idx, op[1]))
                elif kind == WAIT:
                    self._begin_wait(idx, round_, op[1], op[2])
                elif kind == WAIT_STABLE:
                    self._begin_wait_stable(idx, round_, op[1])
                elif kind == DECLARE:
                    self._finish(idx, round_, op[1], declared=True)
                else:
                    raise SimulationError(f"unknown op {op!r}")
            if pending_moves:
                self._apply_moves(pending_moves, round_)
        final_round = max(
            (o.finish_round for o in self._outcomes if o.finish_round is not None),
            default=0,
        )
        total_moves = sum(o.moves for o in self._outcomes)
        return SimulationResult(
            self._outcomes, self._events, final_round, total_moves
        )

    # ------------------------------------------------------------------
    # Agent resumption.
    # ------------------------------------------------------------------

    def _make_observation(
        self, idx: int, round_: int, triggered: bool
    ) -> Observation:
        node = self._pos[idx]
        obs = Observation(
            round_,
            self.graph.degree(node),
            self._entry_port[idx],
            self._counts[node],
            triggered,
        )
        self._entry_port[idx] = None
        return obs

    def _resume(self, idx: int, round_: int) -> tuple | None:
        """Advance one agent; returns its next op or None if it ended."""
        state = self._state[idx]
        triggered = False
        if state == _DORMANT:
            self._start_agent(idx, round_)
        else:
            watch = self._watch[idx]
            if watch is not None:
                triggered = watch_hit(watch, self._counts[self._pos[idx]])
                self._unwatch(idx)
            if self._stable[idx] is not None:
                window = self._stable[idx]
                node = self._pos[idx]
                # Re-verify stability; occupancy changes reschedule the
                # wake, so reaching here with an up-to-date epoch means
                # the window elapsed - assert the invariant cheaply.
                if round_ < self._last_change[node] + window - 1:
                    self._push(self._last_change[node] + window - 1, idx)
                    return None
                self._stable[idx] = None
                self._watchers[node].discard(idx)
        obs = self._make_observation(idx, round_, triggered)
        gen = self._gens[idx]
        try:
            if self._state[idx] == _DORMANT:
                self._state[idx] = _RUNNING
                self._ctxs[idx].obs = obs
                op = next(gen)
            else:
                op = gen.send(obs)
        except StopIteration as stop:
            self._finish(idx, round_, stop.value, declared=False)
            return None
        if op[0] == MOVE:
            port = op[1]
            node = self._pos[idx]
            if not isinstance(port, int) or port < 0 or port >= self.graph.degree(node):
                raise SimulationError(
                    f"agent {self.specs[idx].label} took invalid port "
                    f"{port!r} at a node of degree {self.graph.degree(node)}"
                )
        return op

    def _start_agent(self, idx: int, round_: int) -> None:
        spec = self.specs[idx]
        ctx = AgentContext(spec.label)
        ctx.wake_round = round_
        self._ctxs[idx] = ctx
        self._gens[idx] = spec.program(ctx)
        self._outcomes[idx].wake_round = round_
        self._dormant_at[spec.start_node].discard(idx)

    def _finish(
        self, idx: int, round_: int, payload: object, declared: bool
    ) -> None:
        self._state[idx] = _DONE
        self._active -= 1
        out = self._outcomes[idx]
        out.finish_round = round_
        out.finish_node = self._pos[idx]
        out.payload = payload
        out.declared = declared
        self._unwatch(idx)
        node = self._pos[idx]
        self._watchers[node].discard(idx)
        self._stable[idx] = None
        self._gens[idx] = None

    # ------------------------------------------------------------------
    # Op handlers.
    # ------------------------------------------------------------------

    def _begin_wait(self, idx: int, round_: int, duration, watch) -> None:
        if duration < 1:
            raise SimulationError(f"wait duration must be >= 1, got {duration}")
        self._push(round_ + duration, idx)
        if watch is not None:
            self._watch[idx] = watch
            self._watchers[self._pos[idx]].add(idx)

    def _begin_wait_stable(self, idx: int, round_: int, window) -> None:
        if window < 1:
            raise SimulationError(f"stability window must be >= 1, got {window}")
        node = self._pos[idx]
        candidate = self._last_change[node] + window - 1
        if candidate < round_:
            candidate = round_
        self._stable[idx] = window
        self._watchers[node].add(idx)
        self._push(candidate, idx)

    def _unwatch(self, idx: int) -> None:
        if self._watch[idx] is not None:
            self._watch[idx] = None
            self._watchers[self._pos[idx]].discard(idx)

    # ------------------------------------------------------------------
    # Move application (end of round).
    # ------------------------------------------------------------------

    def _apply_moves(
        self, pending: list[tuple[int, int]], round_: int
    ) -> None:
        graph = self.graph
        counts = self._counts
        next_round = round_ + 1
        deltas: dict[int, int] = {}
        arrivals: set[int] = set()
        for idx, port in pending:
            src = self._pos[idx]
            dst, entry = graph.neighbor(src, port)
            counts[src] -= 1
            counts[dst] += 1
            deltas[src] = deltas.get(src, 0) - 1
            deltas[dst] = deltas.get(dst, 0) + 1
            arrivals.add(dst)
            self._pos[idx] = dst
            self._entry_port[idx] = entry
            self._outcomes[idx].moves += 1
            if self.trace:
                self.move_log.append((round_, idx, src, dst))
            self._push(next_round, idx)
        # A node where arrivals exactly balanced departures shows no
        # CurCard variation: agents there notice nothing (the paper's
        # Section 1.4 makes this point explicitly).
        for node, delta in deltas.items():
            if delta == 0:
                continue
            self._last_change[node] = next_round
            if self._watchers[node]:
                new_count = counts[node]
                for widx in list(self._watchers[node]):
                    watch = self._watch[widx]
                    if watch is not None:
                        if watch_hit(watch, new_count):
                            self._reschedule(next_round, widx)
                    elif self._stable[widx] is not None:
                        self._reschedule(
                            next_round + self._stable[widx] - 1, widx
                        )
        # A dormant agent is woken by the first agent that *visits* its
        # starting node, even if the node's cardinality is unchanged.
        for node in arrivals:
            if self._dormant_at[node]:
                for didx in list(self._dormant_at[node]):
                    if self._state[didx] == _DORMANT:
                        self._reschedule(next_round, didx)
                        # Leave the agent in _dormant_at; _start_agent
                        # removes it, and the epoch bump above already
                        # invalidated any later adversary wake entry.
