"""Event-driven scheduler for the synchronous agent model.

The model is synchronous (Section 1.2 of the paper): in every round
each awake agent performs exactly one move instruction (``take port p``
or ``wait``).  A naive simulator would iterate rounds one by one, which
is hopeless here — ``GatherUnknownUpperBound`` contains waiting periods
of ``7 * 2**64`` rounds and the known-bound algorithm waits for
millions of rounds between moves.

This scheduler exploits a simple invariant: *node occupancies only
change in rounds in which some agent moves.*  Time therefore advances
directly from one "interesting" round to the next through a priority
queue of wake events; a wait of any length is O(1).  Rounds are plain
Python integers, so clocks beyond 10**24 (reached by the unknown-bound
algorithm) are exact.

Semantics of a round ``r``:

1. every agent due at ``r`` is resumed with an observation of the
   state *at* ``r`` and yields its next op;
2. all moves issued in round ``r`` are applied simultaneously — agents
   crossing on an edge do not notice each other;
3. nodes whose cardinality changed get ``last_change = r + 1`` and
   watching agents are woken at ``r + 1``;
4. a dormant agent whose node receives an arrival in round ``r + 1``
   wakes (starts its program) at ``r + 1``.

Walk segments
-------------
The paper's algorithms are walk-dominated (one EXPLO(N) is ~4 N^2
log N edges), so deterministic walks get the same O(1) treatment as
waits: a ``walk`` op carries a whole precomputed plan of exit ports,
and the segment planner executes the longest prefix during which the
per-step model could not have diverged as a *single* event.  Round
semantics of a segment of ``m`` edges starting at round ``r``: the
walker moves in rounds ``r .. r+m-1`` exactly as if it had issued
``m`` individual moves (occupancies and ``last_change`` of every
transited node are updated accordingly, and in trace mode the segment
expands into per-edge ``move_log`` entries), and its next op is read
at round ``r+m``.  All walkers due in the same round are planned
*jointly* — their mutual meetings, and therefore the exact CurCard
each observes on every arrival, are computed by the planner — and the
segment is truncated at the first round where anything outside the
cohort could act:

* another agent's scheduled heap event falls due (``<= r+m``);
* a walker would step onto a node with a watching (``wait``-watch or
  ``wait_stable``) or dormant agent, whose wake-up needs the ordinary
  machinery (a node occupied by plain waiters is safe to transit: its
  occupants observe nothing, and their cardinality contributes to the
  walker's computed CurCard trace);
* a walker's own watch fires on a computed CurCard (that edge is the
  segment's last);
* a plan runs out, an absolute step is an invalid port, or the round /
  event budget would be crossed mid-segment.

The ``events`` counter stays bit-for-bit compatible with the per-step
model: a segment of ``m`` edges counts ``m`` (virtual) resumes.

Fault injection
---------------
Crash faults, dynamic edges and the graceful round horizon (see
:mod:`repro.sim.faults` and docs/experiments.md) hang off three
constructor parameters that default to ``None``; every hot-path site
they touch costs a single ``is None`` test, keeping unfaulted runs —
and their records, traces and metrics — byte-identical to a build
without the feature.  A crash is processed at the *start* of its
round, before adversary wake-ups and resumes; a dynamics-blocked move
costs the round but not the edge (the agent retries the port next
round, one event per retry); when the horizon expires the run ends
with every live agent finalized undeclared and ``timed_out=True``.
"""

from __future__ import annotations

import heapq
from itertools import repeat
from typing import Callable, Iterable

from ..events import stream as _event_stream
from ..metrics import registry as _metrics_registry
from ..events.types import (
    AgentMove as _EvAgentMove,
    EdgeBlocked as _EvEdgeBlocked,
    FaultInjected as _EvFaultInjected,
    RoundAdvance as _EvRoundAdvance,
    SimulationEnd as _EvSimulationEnd,
    SimulationStart as _EvSimulationStart,
    WalkSegment as _EvWalkSegment,
    WatchFired as _EvWatchFired,
)
from ..graphs.port_graph import PortGraph
from .agent import AgentContext
from .ops import (
    _WATCH_PREDICATES,
    BudgetExceededError,
    DeadlockError,
    DECLARE,
    MOVE,
    OBSERVE,
    Observation,
    SimulationError,
    WAIT,
    WAIT_STABLE,
    WALK,
    WalkObservation,
    watch_hit,
)

# Agent lifecycle states.
_DORMANT = 0
_RUNNING = 1
_DONE = 2

# Guard against non-advancing agent programs (zero-duration op loops).
_MAX_RESUMES_PER_ROUND = 100_000


class AgentSpec:
    """Description of one agent given to :class:`Simulation`.

    Parameters
    ----------
    label:
        The agent's positive integer label (its algorithm parameter).
    start_node:
        Starting node (simulator-internal id; never shown to the agent).
    program:
        ``callable(ctx) -> generator`` producing the agent's op stream.
    wake_round:
        Round at which the adversary wakes the agent, or ``None`` for a
        dormant agent woken only by a visiting agent.
    """

    __slots__ = ("label", "start_node", "program", "wake_round")

    def __init__(
        self,
        label: int,
        start_node: int,
        program: Callable[[AgentContext], object],
        wake_round: int | None = 0,
    ) -> None:
        if label < 1:
            raise ValueError("agent labels are positive integers")
        if wake_round is not None and wake_round < 0:
            raise ValueError("wake_round must be >= 0")
        self.label = label
        self.start_node = start_node
        self.program = program
        self.wake_round = wake_round


class AgentOutcome:
    """Result record for one agent after the simulation ends."""

    __slots__ = (
        "label",
        "start_node",
        "wake_round",
        "finish_round",
        "finish_node",
        "payload",
        "declared",
        "crashed",
        "moves",
    )

    def __init__(self, label: int, start_node: int) -> None:
        self.label = label
        self.start_node = start_node
        self.wake_round: int | None = None
        self.finish_round: int | None = None
        self.finish_node: int | None = None
        self.payload: object = None
        self.declared = False
        self.crashed = False
        self.moves = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AgentOutcome(label={self.label}, declared={self.declared}, "
            f"crashed={self.crashed}, "
            f"finish_round={self.finish_round}, node={self.finish_node}, "
            f"moves={self.moves})"
        )


class SimulationResult:
    """Aggregate outcome of a run."""

    __slots__ = (
        "outcomes",
        "events",
        "final_round",
        "total_moves",
        "crashed_labels",
        "timed_out",
    )

    def __init__(
        self,
        outcomes: list[AgentOutcome],
        events: int,
        final_round: int,
        total_moves: int,
        crashed_labels: tuple[int, ...] = (),
        timed_out: bool = False,
    ) -> None:
        self.outcomes = outcomes
        self.events = events
        self.final_round = final_round
        self.total_moves = total_moves
        # Robustness fields (fault injection; docs/experiments.md):
        # labels crashed by the fault adversary, in spec order, and
        # whether the run ended by round-horizon expiry rather than by
        # every agent terminating on its own.
        self.crashed_labels = crashed_labels
        self.timed_out = timed_out

    def gathered(self) -> bool:
        """Did every agent declare at the same node in the same round?"""
        if not self.outcomes or not all(o.declared for o in self.outcomes):
            return False
        rounds = {o.finish_round for o in self.outcomes}
        nodes = {o.finish_node for o in self.outcomes}
        return len(rounds) == 1 and len(nodes) == 1

    def declaration_round(self) -> int:
        """The common declaration round (requires :meth:`gathered`)."""
        if not self.gathered():
            raise SimulationError("agents did not gather")
        return self.outcomes[0].finish_round

    def meeting_node(self) -> int:
        """The common declaration node (requires :meth:`gathered`)."""
        if not self.gathered():
            raise SimulationError("agents did not gather")
        return self.outcomes[0].finish_node

    def payloads(self) -> list[object]:
        """Per-agent final payloads in spec order."""
        return [o.payload for o in self.outcomes]

    def survivors_gathered(self) -> bool:
        """Did every *non-crashed* agent declare at one node, one round?

        The graceful-degradation criterion: a run whose survivors
        gathered is a success of the remainder even though
        :meth:`gathered` is false (crashed agents never declare).
        """
        survivors = [o for o in self.outcomes if not o.crashed]
        if not survivors or not all(o.declared for o in survivors):
            return False
        rounds = {o.finish_round for o in survivors}
        nodes = {o.finish_node for o in survivors}
        return len(rounds) == 1 and len(nodes) == 1

    def partial_groups(self) -> tuple[int, ...]:
        """Sizes of the final co-location groups of surviving agents.

        Group sizes are reported largest-first; a fully gathered
        remainder is ``(len(survivors),)``.  Agents that never got a
        final position (impossible today) are skipped defensively.
        """
        groups: dict[int, int] = {}
        for o in self.outcomes:
            if o.crashed or o.finish_node is None:
                continue
            groups[o.finish_node] = groups.get(o.finish_node, 0) + 1
        return tuple(sorted(groups.values(), reverse=True))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimulationResult(agents={len(self.outcomes)}, "
            f"events={self.events}, final_round={self.final_round})"
        )


class Simulation:
    """Run a set of agents on a port-labelled graph.

    Parameters
    ----------
    graph:
        The network.
    specs:
        One :class:`AgentSpec` per agent; start nodes must be pairwise
        distinct (the paper's model) and labels pairwise distinct.
    max_events:
        Abort with :class:`BudgetExceededError` after this many agent
        resumptions (safety valve for runaway programs).
    max_round:
        Abort when the clock would pass this round.
    trace:
        When true, record every move as ``(round, agent_index,
        from_node, to_node)`` in :attr:`move_log`.
    route_cache:
        Controls the vectorized segment planner's route cache:
        ``None`` (default) shares the per-graph cache from
        :func:`repro.sim.cohort.route_cache_for` when numpy is
        available, ``False`` disables the vectorized planner entirely
        (pure-scalar planning), and an explicit
        :class:`~repro.sim.cohort.RouteCache` is used as given.
    events:
        An :class:`repro.events.EventDispatcher` to emit typed events
        to.  ``None`` (default) uses the process-global dispatcher
        from :mod:`repro.events.stream` — which is usually absent, in
        which case emission costs a single ``is None`` check per
        site.  ``False`` disables emission regardless of the global.
    faults:
        Crash-fault schedule: an iterable of ``(label, round)`` pairs
        (see :mod:`repro.sim.faults`).  The agent is removed at the
        *start* of its fault round — it never acts in that round, and
        unlike a declared agent it stops occupying its node, so
        watchers observe the departure.  ``None`` (default) disables
        fault handling entirely (zero hot-path cost).
    dynamics:
        An :class:`repro.sim.faults.EdgeDynamics` consulted at every
        edge traversal.  A blocked move costs the round but not the
        edge: the agent retries the same port next round (one event
        per retry round) without re-entering its program.  ``None``
        (default) keeps the graph static.
    horizon:
        Graceful-degradation round horizon: when the next event would
        fall after this round — or no agent can ever run again — the
        run ends with every live agent finalized undeclared and
        ``timed_out=True`` on the result, instead of raising.  ``None``
        (default) keeps the strict deadlock / budget behavior.
    """

    def __init__(
        self,
        graph: PortGraph,
        specs: Iterable[AgentSpec],
        max_events: int | None = None,
        max_round: int | None = None,
        trace: bool = False,
        route_cache=None,
        events=None,
        faults=None,
        dynamics=None,
        horizon: int | None = None,
    ) -> None:
        self.graph = graph
        self.specs = list(specs)
        if not self.specs:
            raise SimulationError("no agents")
        starts = [s.start_node for s in self.specs]
        if len(set(starts)) != len(starts):
            raise SimulationError("agents must start at distinct nodes")
        labels = [s.label for s in self.specs]
        if len(set(labels)) != len(labels):
            raise SimulationError("agent labels must be distinct")
        if any(s.start_node < 0 or s.start_node >= graph.n for s in self.specs):
            raise SimulationError("start node out of range")
        if all(s.wake_round is None for s in self.specs):
            raise SimulationError("at least one agent must be woken")
        self.max_events = max_events
        self.max_round = max_round
        self.trace = trace
        self.move_log: list[tuple[int, int, int, int]] = []

        k = len(self.specs)
        self._pos = list(starts)
        self._state = [_DORMANT] * k
        self._gens: list = [None] * k
        self._ctxs: list[AgentContext | None] = [None] * k
        self._epoch = [0] * k
        self._entry_port: list[int | None] = [None] * k
        self._watch: list = [None] * k  # active wait-watch, if any
        self._wait_until: list = [None] * k  # watched wait's expiry round
        self._stable: list[int | None] = [None] * k  # wait_stable window
        self._walk_trace: list = [None] * k  # pending fast-path segment
        self._label_index = {s.label: i for i, s in enumerate(self.specs)}
        self._outcomes = [AgentOutcome(s.label, s.start_node) for s in self.specs]

        self._counts = [0] * graph.n
        for s in self.specs:
            self._counts[s.start_node] += 1
        self._last_change = [0] * graph.n
        self._dormant_at: list[set[int]] = [set() for _ in range(graph.n)]
        self._watchers: list[set[int]] = [set() for _ in range(graph.n)]

        # Fault injection (docs/experiments.md, "Faults & dynamics").
        # All three stay None on unfaulted runs so the hot path pays at
        # most one ``is None`` test per site.
        self.horizon = horizon
        self.timed_out = False
        self._dynamics = dynamics
        self._retry_move: list[int | None] | None = (
            [None] * k if dynamics is not None else None
        )
        self._c_faults = _metrics_registry.Counter()
        self._c_edges_blocked = _metrics_registry.Counter()
        if faults:
            queue: list[tuple[int, int]] = []
            for label, fround in faults:
                fidx = self._label_index.get(label)
                if fidx is None:
                    raise SimulationError(
                        f"fault targets unknown agent label {label!r}"
                    )
                if fround < 0:
                    raise SimulationError(
                        f"fault rounds must be >= 0, got {fround}"
                    )
                queue.append((fround, fidx))
            queue.sort()
            self._fault_queue: list[tuple[int, int]] | None = queue
            self._fault_i = 0
            self._crashed: list[bool] | None = [False] * k
        else:
            self._fault_queue = None
            self._fault_i = 0
            self._crashed = None

        self._heap: list[tuple[int, int, int, int]] = []
        self._seq = 0
        self._events = 0
        self._active = 0  # agents not DONE (dormant agents count)
        # Fast-path diagnostics (not part of SimulationResult): how
        # many walk segments ran as single events, and how many edges
        # they covered in total.  Kept as standalone per-simulation
        # counters (the public ``segments`` / ``segment_edges``
        # attributes are thin views) and folded into the attached
        # metrics registry once, at ``result()`` — never per segment,
        # so the hot path stays registry-free.
        self._c_segments = _metrics_registry.Counter()
        self._c_segment_edges = _metrics_registry.Counter()
        self._c_watch_fires = _metrics_registry.Counter()
        self._mx = _metrics_registry.current()
        self._metrics_flushed = False
        # Vectorized planner, resolved lazily on the first walk round
        # (importing cohort / building the route cache costs nothing on
        # walk-free runs).
        self._route_cache_opt = route_cache
        self.route_cache = None
        self._planner = None
        self._planner_resolved = False
        # Set by step_round() when the round did something the lockstep
        # vector path cannot express (see repro.sim.cohort): "watch",
        # "dormant-wake", "walk-fallback", "fault" or "dynamics"; None
        # otherwise.
        self.last_step_divergence: str | None = None

        for idx, s in enumerate(self.specs):
            self._active += 1
            self._dormant_at[s.start_node].add(idx)
            if s.wake_round is not None:
                self._push(s.wake_round, idx)

        # Typed event stream (docs/observability.md).  ``_emit`` is
        # None on the no-processor path, so every emission site is a
        # single attribute test.
        self._emit = None
        self._end_emitted = False
        if events is not False:
            dispatcher = (
                events if events is not None else _event_stream.current()
            )
            if dispatcher is not None:
                self.attach_events(dispatcher)

    def attach_events(self, dispatcher) -> None:
        """Attach an event dispatcher (emits :class:`SimulationStart`).

        Used by ``__init__`` and by tools that obtain an
        already-constructed simulation (e.g. via
        :func:`repro.core.runs.prepare_gather_known`) and want its
        event stream.
        """
        self._emit = dispatcher
        dispatcher.emit(_EvSimulationStart(
            n=self.graph.n,
            edges=tuple(self.graph.edges()),
            agents=tuple(
                (s.label, s.start_node, s.wake_round) for s in self.specs
            ),
        ))

    # ------------------------------------------------------------------
    # Traditional-model capability (baselines only).
    # ------------------------------------------------------------------

    def colocated_labels(self, label: int) -> list[int]:
        """Labels of all agents at the same node as ``label`` right now.

        This is the *traditional* model's perception ("co-located
        agents can talk"), deliberately unavailable to the paper's
        algorithms; only the baseline implementations in
        :mod:`repro.baselines` call it.  Every talking-baseline agent
        calls this on each scheduling round, so the label lookup uses
        the map built once in ``__init__`` rather than a linear scan.
        """
        idx = self._label_index[label]
        node = self._pos[idx]
        return sorted(
            s.label
            for i, s in enumerate(self.specs)
            if self._pos[i] == node
        )

    # ------------------------------------------------------------------
    # Heap helpers.
    # ------------------------------------------------------------------

    def _push(self, round_: int, idx: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (round_, self._seq, idx, self._epoch[idx]))

    def _reschedule(self, round_: int, idx: int) -> None:
        self._epoch[idx] += 1
        self._push(round_, idx)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until every agent terminates.

        Resumable: callers (the cohort executor) may interleave
        :meth:`step_round` calls with ``run()``; the loop simply
        continues from the current state.
        """
        if self._mx is None:
            while self._active > 0:
                self.step_round()
            return self.result()
        with self._mx.timer("sim.wall_seconds"):
            while self._active > 0:
                self.step_round()
        return self.result()

    def next_event_round(self) -> int | None:
        """Round of the next real event, or ``None`` if the heap is dry.

        Drops stale heads (superseded epochs, finished agents) so the
        round budget and deadlock checks see the next *real* event,
        exactly as the reference oracle derives it.  A pending crash
        fault targeting a live agent is an event too: time jumps to
        the fault round even when every survivor waits past it.
        """
        heap = self._heap
        head: int | None = None
        while heap:
            _, _, i0, ep0 = heap[0]
            if ep0 != self._epoch[i0] or self._state[i0] == _DONE:
                heapq.heappop(heap)
            else:
                head = heap[0][0]
                break
        if self._fault_queue is not None:
            fault = self._next_fault_round()
            if fault is not None and (head is None or fault < head):
                return fault
        return head

    def _next_fault_round(self) -> int | None:
        """Round of the earliest pending fault with a live target.

        Entries whose target already terminated are skipped for good
        (termination is final), so repeated calls stay cheap.
        """
        queue = self._fault_queue
        i = self._fault_i
        while i < len(queue):
            round_, idx = queue[i]
            if self._state[idx] != _DONE:
                self._fault_i = i
                return round_
            i += 1
        self._fault_i = i
        return None

    @property
    def finished(self) -> bool:
        """True once every agent has terminated."""
        return self._active == 0

    # Back-compat thin views over the standalone fast-path counters
    # (migrated to metrics counters; see __init__).

    @property
    def segments(self) -> int:
        """Walk segments executed as single scheduler events."""
        return self._c_segments.value

    @segments.setter
    def segments(self, value: int) -> None:
        self._c_segments.value = value

    @property
    def segment_edges(self) -> int:
        """Total edges covered by batched walk segments."""
        return self._c_segment_edges.value

    @segment_edges.setter
    def segment_edges(self, value: int) -> None:
        self._c_segment_edges.value = value

    def result(self) -> SimulationResult:
        """The aggregate outcome; only valid once :attr:`finished`."""
        if self._active > 0:
            raise SimulationError(
                f"simulation still has {self._active} active agent(s)"
            )
        final_round = max(
            (o.finish_round for o in self._outcomes if o.finish_round is not None),
            default=0,
        )
        total_moves = sum(o.moves for o in self._outcomes)
        crashed_labels = (
            tuple(o.label for o in self._outcomes if o.crashed)
            if self._crashed is not None
            else ()
        )
        result = SimulationResult(
            self._outcomes,
            self._events,
            final_round,
            total_moves,
            crashed_labels=crashed_labels,
            timed_out=self.timed_out,
        )
        if self._emit is not None and not self._end_emitted:
            self._end_emitted = True
            self._emit.emit(_EvSimulationEnd(
                final_round=final_round,
                events=self._events,
                total_moves=total_moves,
                gathered=result.gathered(),
            ))
        if self._mx is not None and not self._metrics_flushed:
            # One aggregated flush per simulation: the per-event hot
            # path never touches the registry.  Round counts are
            # deliberately not recorded (exact big ints; see
            # docs/observability.md).
            self._metrics_flushed = True
            mx = self._mx
            mx.counter("sim.runs").value += 1
            mx.counter("sim.events").value += self._events
            mx.counter("sim.walk.segments").value += self._c_segments.value
            mx.counter("sim.walk.segment_edges").value += (
                self._c_segment_edges.value
            )
            mx.counter("sim.watch.fires").value += self._c_watch_fires.value
            if self._c_faults.value:
                mx.counter("sim.faults.injected").value += (
                    self._c_faults.value
                )
            if self.timed_out:
                mx.counter("sim.faults.timeouts").value += 1
            if self._c_edges_blocked.value:
                mx.counter("sim.edges.blocked").value += (
                    self._c_edges_blocked.value
                )
        return result

    def step_round(self) -> None:
        """Drain and execute exactly one event-round."""
        self.last_step_divergence = None
        heap = self._heap
        round_ = self.next_event_round()
        if round_ is None:
            if self.horizon is not None:
                self._graceful_stop()
                return
            raise DeadlockError(
                f"{self._active} agent(s) can never run again "
                "(dormant and unvisited, or waiting forever)"
            )
        if self.horizon is not None and round_ > self.horizon:
            self._graceful_stop()
            return
        if self.max_round is not None and round_ > self.max_round:
            raise BudgetExceededError(
                f"round budget exceeded: next event at round {round_}"
            )
        if self._fault_queue is not None:
            self._apply_faults(round_)
        pending_moves: list[tuple[int, int]] = []  # (idx, port)
        pending_walks: list[tuple] = []  # (idx, head, steps, pos, watch)
        pending_observes: list[tuple[int, int]] = []  # (idx, remaining)
        retries = self._retry_move
        resumes = 0
        while heap and heap[0][0] == round_:
            _, _, idx, epoch = heapq.heappop(heap)
            if epoch != self._epoch[idx] or self._state[idx] == _DONE:
                continue
            resumes += 1
            if resumes > _MAX_RESUMES_PER_ROUND:
                raise SimulationError(
                    f"agent resumed too often in round {round_}; "
                    "non-advancing program?"
                )
            if (
                self._state[idx] != _DORMANT
                and self._watch[idx] is not None
                and self._stable[idx] is None
                and not watch_hit(
                    self._watch[idx], self._counts[self._pos[idx]]
                )
                and round_ < self._wait_until[idx]
            ):
                # Early arrival notification whose condition a
                # start-of-round crash revoked before this resume: the
                # watched wait is still running.  Re-arm its original
                # expiry (a later occupancy change can still
                # reschedule it earlier) and charge no event — the
                # agent never acts.  Only faults open this window:
                # ordinary departures commit at round end, after every
                # resume of the round.
                self._push(self._wait_until[idx], idx)
                continue
            self._events += 1
            if self.max_events is not None and self._events > self.max_events:
                raise BudgetExceededError(
                    f"event budget exceeded at round {round_}"
                )
            if retries is not None and retries[idx] is not None:
                # A dynamics-blocked move retries verbatim: the agent's
                # program is not re-entered and observes nothing.
                pending_moves.append((idx, retries[idx]))
                retries[idx] = None
                continue
            op = self._resume(idx, round_)
            if op is None:
                continue  # agent terminated
            kind = op[0]
            if kind == MOVE:
                pending_moves.append((idx, op[1]))
            elif kind == WALK:
                pending_walks.append((idx, op[1], op[2], op[3], op[4]))
            elif kind == WAIT:
                self._begin_wait(idx, round_, op[1], op[2])
            elif kind == WAIT_STABLE:
                self._begin_wait_stable(idx, round_, op[1])
            elif kind == OBSERVE:
                if op[1] < 1:
                    raise SimulationError(
                        f"observe duration must be >= 1, got {op[1]}"
                    )
                pending_observes.append((idx, op[1]))
            elif kind == DECLARE:
                self._finish(idx, round_, op[1], declared=True)
            else:
                raise SimulationError(f"unknown op {op!r}")
        if pending_walks or pending_observes:
            self._exec_walks(
                pending_walks, pending_observes, round_, pending_moves
            )
        if pending_moves:
            self._apply_moves(pending_moves, round_)
        if self._emit is not None:
            self._emit.emit(_EvRoundAdvance(round=round_, resumes=resumes))

    # ------------------------------------------------------------------
    # Agent resumption.
    # ------------------------------------------------------------------

    def _make_observation(
        self, idx: int, round_: int, triggered: bool
    ) -> Observation:
        node = self._pos[idx]
        walked = self._walk_trace[idx]
        if walked is None:
            obs = Observation(
                round_,
                self.graph.degree(node),
                self._entry_port[idx],
                self._counts[node],
                triggered,
            )
        else:
            self._walk_trace[idx] = None
            obs = WalkObservation(
                round_,
                self.graph.degree(node),
                self._entry_port[idx],
                self._counts[node],
                triggered,
                walked,
            )
        self._entry_port[idx] = None
        return obs

    def _resume(self, idx: int, round_: int) -> tuple | None:
        """Advance one agent; returns its next op or None if it ended."""
        state = self._state[idx]
        triggered = False
        if state == _DORMANT:
            self._start_agent(idx, round_)
        else:
            watch = self._watch[idx]
            if watch is not None:
                triggered = watch_hit(watch, self._counts[self._pos[idx]])
                if triggered:
                    self.last_step_divergence = "watch"
                    self._c_watch_fires.value += 1
                    if self._emit is not None:
                        self._emit.emit(_EvWatchFired(
                            round=round_,
                            agent=idx,
                            node=self._pos[idx],
                            count=self._counts[self._pos[idx]],
                        ))
                self._unwatch(idx)
            if self._stable[idx] is not None:
                window = self._stable[idx]
                node = self._pos[idx]
                # Re-verify stability; occupancy changes reschedule the
                # wake, so reaching here with an up-to-date epoch means
                # the window elapsed - assert the invariant cheaply.
                if round_ < self._last_change[node] + window - 1:
                    self._push(self._last_change[node] + window - 1, idx)
                    return None
                self._stable[idx] = None
                self._watchers[node].discard(idx)
        obs = self._make_observation(idx, round_, triggered)
        gen = self._gens[idx]
        try:
            if self._state[idx] == _DORMANT:
                self._state[idx] = _RUNNING
                self._ctxs[idx].obs = obs
                op = next(gen)
            else:
                op = gen.send(obs)
        except StopIteration as stop:
            self._finish(idx, round_, stop.value, declared=False)
            return None
        if op[0] == MOVE or op[0] == WALK:
            port = op[1]
            node = self._pos[idx]
            if not isinstance(port, int) or port < 0 or port >= self.graph.degree(node):
                raise SimulationError(
                    f"agent {self.specs[idx].label} took invalid port "
                    f"{port!r} at a node of degree {self.graph.degree(node)}"
                )
        return op

    def _start_agent(self, idx: int, round_: int) -> None:
        spec = self.specs[idx]
        ctx = AgentContext(spec.label)
        ctx.wake_round = round_
        self._ctxs[idx] = ctx
        self._gens[idx] = spec.program(ctx)
        self._outcomes[idx].wake_round = round_
        self._dormant_at[spec.start_node].discard(idx)

    def _finish(
        self, idx: int, round_: int, payload: object, declared: bool
    ) -> None:
        self._state[idx] = _DONE
        self._active -= 1
        out = self._outcomes[idx]
        out.finish_round = round_
        out.finish_node = self._pos[idx]
        out.payload = payload
        out.declared = declared
        self._unwatch(idx)
        node = self._pos[idx]
        self._watchers[node].discard(idx)
        self._stable[idx] = None
        self._gens[idx] = None

    # ------------------------------------------------------------------
    # Fault injection and graceful degradation.
    # ------------------------------------------------------------------

    def _apply_faults(self, round_: int) -> None:
        """Crash every agent whose fault falls due at ``round_``.

        Runs before any resume of the round: a crashed agent never
        acts in its fault round.  Entries targeting already-terminated
        agents are skipped (their crash never happens).
        """
        queue = self._fault_queue
        while self._fault_i < len(queue) and queue[self._fault_i][0] <= round_:
            _, idx = queue[self._fault_i]
            self._fault_i += 1
            if self._state[idx] == _DONE:
                continue
            self._crash(idx, round_)

    def _crash(self, idx: int, round_: int) -> None:
        """Remove agent ``idx`` at the start of ``round_``.

        Unlike a *declared* agent — which keeps occupying its node —
        a crashed agent's occupancy is removed at its fault round, so
        co-located watchers observe the departure exactly as they would
        a move away: firing watches and stability windows reschedule
        precisely as :meth:`_apply_moves` would on an occupancy change.
        A dormant agent can crash too (it simply never wakes); dormant
        *neighbors* are not woken — a crash is a departure, not a visit.
        """
        self.last_step_divergence = "fault"
        self._c_faults.value += 1
        node = self._pos[idx]
        self._state[idx] = _DONE
        self._active -= 1
        self._crashed[idx] = True
        out = self._outcomes[idx]
        out.finish_round = round_
        out.finish_node = node
        out.declared = False
        out.crashed = True
        self._unwatch(idx)
        self._watchers[node].discard(idx)
        self._stable[idx] = None
        self._dormant_at[node].discard(idx)
        self._gens[idx] = None
        self._walk_trace[idx] = None
        if self._retry_move is not None:
            self._retry_move[idx] = None
        self._counts[node] -= 1
        self._last_change[node] = round_
        if self._watchers[node]:
            new_count = self._counts[node]
            for widx in list(self._watchers[node]):
                watch = self._watch[widx]
                if watch is not None:
                    if watch_hit(watch, new_count):
                        self._reschedule(round_, widx)
                elif self._stable[widx] is not None:
                    self._reschedule(
                        round_ + self._stable[widx] - 1, widx
                    )
        if self._emit is not None:
            self._emit.emit(_EvFaultInjected(
                round=round_,
                agent=idx,
                label=self.specs[idx].label,
                node=node,
            ))

    def _graceful_stop(self) -> None:
        """Finalize every live agent undeclared: the horizon expired.

        Fault-aware termination: survivors that can no longer gather
        (a crash removed a teammate, or dynamics starved them) end
        with a structured partial outcome — ``finish_round=None``,
        final position recorded — instead of running out their event
        budget.  Also reached when no agent can ever run again, which
        without a horizon would be a :class:`DeadlockError`.
        """
        self.timed_out = True
        for idx in range(len(self.specs)):
            if self._state[idx] == _DONE:
                continue
            self._state[idx] = _DONE
            self._active -= 1
            node = self._pos[idx]
            out = self._outcomes[idx]
            out.finish_round = None
            out.finish_node = node
            out.declared = False
            self._unwatch(idx)
            self._watchers[node].discard(idx)
            self._stable[idx] = None
            self._dormant_at[node].discard(idx)
            self._gens[idx] = None
            self._walk_trace[idx] = None
        self._heap.clear()

    # ------------------------------------------------------------------
    # Op handlers.
    # ------------------------------------------------------------------

    def _begin_wait(self, idx: int, round_: int, duration, watch) -> None:
        if duration < 1:
            raise SimulationError(f"wait duration must be >= 1, got {duration}")
        self._push(round_ + duration, idx)
        if watch is not None:
            self._watch[idx] = watch
            self._wait_until[idx] = round_ + duration
            self._watchers[self._pos[idx]].add(idx)

    def _begin_wait_stable(self, idx: int, round_: int, window) -> None:
        if window < 1:
            raise SimulationError(f"stability window must be >= 1, got {window}")
        node = self._pos[idx]
        candidate = self._last_change[node] + window - 1
        if candidate < round_:
            candidate = round_
        self._stable[idx] = window
        self._watchers[node].add(idx)
        self._push(candidate, idx)

    def _unwatch(self, idx: int) -> None:
        if self._watch[idx] is not None:
            self._watch[idx] = None
            self._watchers[self._pos[idx]].discard(idx)

    # ------------------------------------------------------------------
    # Walk segments (the multi-edge fast path).
    # ------------------------------------------------------------------

    def _resolve_planner(self) -> None:
        """Bind the vectorized planner and route cache, if available."""
        self._planner_resolved = True
        if self._route_cache_opt is False:
            return
        if self._dynamics is not None:
            # Cached routes know nothing about per-round edge liveness;
            # dynamic-edge runs plan scalar segments (which truncate
            # before any blocked edge) instead.
            return
        try:
            from . import cohort
        except ImportError:  # pragma: no cover - cohort ships with sim
            return
        if not cohort.HAVE_NUMPY:
            return
        self.route_cache = (
            self._route_cache_opt
            if self._route_cache_opt is not None
            else cohort.route_cache_for(self.graph)
        )
        self._planner = cohort.plan_segment

    def _exec_walks(
        self,
        walks: list[tuple],
        observes: list[tuple[int, int]],
        round_: int,
        pending_moves: list[tuple[int, int]],
    ) -> None:
        """Execute the round's walk/observe ops: one segment, or fall back.

        All walkers and observers due this round are planned jointly.
        When a useful segment exists (>= 2 rounds for everyone) it runs
        as a single event per cohort member; otherwise every walk
        degrades to its first edge and every observe to a one-round
        observation through the ordinary machinery, which handles
        watcher wake-ups, dormant starts and same-round movers exactly
        as the per-step model does.
        """
        if not self._planner_resolved:
            self._resolve_planner()
        if not pending_moves:
            if self._planner is not None:
                plan = self._planner(self, walks, observes, round_)
                if plan is not None:
                    self._apply_segment_vec(walks, observes, round_, plan)
                    return
            elif walks and not observes:
                scalar = self._plan_segment(walks, round_)
                if scalar is not None:
                    self._apply_segment(walks, round_, *scalar)
                    return
        # Per-edge / per-round fallback — the divergence the lockstep
        # cohort ejects on.  Observers degrade first: their next-round
        # heap events bound any later walker segment exactly like the
        # one-round waits they are equivalent to.
        self.last_step_divergence = "walk-fallback"
        for idx, _remaining in observes:
            self._push(round_ + 1, idx)
        for idx, head, _steps, _pos, _watch in walks:
            pending_moves.append((idx, head))

    def _apply_segment_vec(
        self,
        walks: list[tuple],
        observes: list[tuple[int, int]],
        round_: int,
        plan,
    ) -> None:
        """Commit a vectorized :class:`~repro.sim.cohort.SegmentPlan`.

        Identical bookkeeping to :meth:`_apply_segment`, extended with
        stationary observers: an observer neither moves nor changes any
        occupancy, it just receives the per-round CurCard trace of its
        node and resumes at the segment end, exactly as ``m`` one-round
        observations would.
        """
        counts = self._counts
        m = plan.m
        end_round = round_ + m
        obs_rounds = range(round_ + 1, end_round + 1)
        self._c_segments.value += 1
        self._c_segment_edges.value += m * len(walks)
        if plan.watch_fired:
            # The segment's last edge fires a walk watch: the walk
            # helper raises WatchTriggered at the resume and the
            # agent's op stream leaves the planned route — eject.
            self.last_step_divergence = "watch"
            self._c_watch_fires.value += 1
        for w, (idx, _head, _steps, _pos, _watch) in enumerate(walks):
            nodes, ents, degs, cards = plan.walkers[w]
            counts[nodes[0]] -= 1
            counts[nodes[m]] += 1
            self._pos[idx] = nodes[m]
            self._entry_port[idx] = ents[m - 1]
            self._outcomes[idx].moves += m
            self._walk_trace[idx] = (obs_rounds, degs, ents, cards)
            self._push(end_round, idx)
        for o, (idx, _remaining) in enumerate(observes):
            cards = plan.observer_cards[o]
            degree = self.graph.degree(self._pos[idx])
            # Constant columns as repeat(): zip stops at the cards.
            self._walk_trace[idx] = (
                obs_rounds, repeat(degree), repeat(None), cards
            )
            self._push(end_round, idx)
        # Virtual per-edge/per-round resumes: byte-compatible events.
        self._events += (len(walks) + len(observes)) * (m - 1)
        plan.apply_last_change(self._last_change, round_, self.graph.n)
        if self.trace and walks:
            order = sorted(range(len(walks)), key=lambda w: walks[w][0])
            for t in range(m):
                for w in order:
                    nodes = plan.walkers[w][0]
                    self.move_log.append(
                        (round_ + t, walks[w][0], nodes[t], nodes[t + 1])
                    )
        if self._emit is not None:
            self._emit_segment(
                walks, round_, m,
                [tuple(plan.walkers[w][0][: m + 1]) for w in range(len(walks))],
                [plan.walkers[w][3][m - 1] for w in range(len(walks))],
                tuple(idx for idx, _remaining in observes),
            )

    def _plan_segment(self, walks: list[tuple], round_: int):
        """Longest prefix the cohort can walk without possible divergence.

        Returns ``(m, routes, entries, degrees, curcards)`` — the
        segment length and, per walker, the node route ``[v_0 .. v_m]``
        plus the entry port, arrival degree and exact CurCard of each
        arrival — or ``None`` when no segment of at least two edges is
        safe.  This is the hot loop of walk-dominated runs, so it works
        on the graph's adjacency list directly and mutates ``_counts``
        in place (walkers off their start nodes) for the duration of
        the planning.
        """
        counts = self._counts
        heap = self._heap
        watchers = self._watchers
        dormant_at = self._dormant_at
        adj = self.graph._adj  # hot path: one indexing per step
        # Tighten the horizon: stale heap entries (superseded epochs,
        # finished agents) would otherwise truncate segments for free.
        while heap:
            _, _, i0, ep0 = heap[0]
            if ep0 != self._epoch[i0] or self._state[i0] == _DONE:
                heapq.heappop(heap)
            else:
                break
        m = min(len(steps) - pos for _, _, steps, pos, _ in walks)
        if heap:
            m = min(m, heap[0][0] - round_)
        if self.max_round is not None:
            # Truncating here reproduces the per-step budget raise: the
            # segment-end resume lands at max_round + 1 and the main
            # loop rejects it with the exact per-step message.
            m = min(m, self.max_round - round_ + 1)
        if self.max_events is not None:
            # Cap so the virtual resumes cannot cross the budget inside
            # the segment; the violating resume then happens (and
            # raises) at the segment-end round, as per-step execution
            # would.
            m = min(
                m, (self.max_events - self._events) // len(walks) + 1
            )
        if self._fault_queue is not None:
            # No segment may reach a fault round: a crash is processed
            # at the *start* of its round (unlike moves, which commit
            # at the end), so planned arrival cards would go stale the
            # moment the segment's last observation landed on it.  End
            # strictly before, so every walker is back in the ordinary
            # machinery when the crash hits (a crashed walker vanishes
            # mid-walk; survivors replan around the hole).
            fault = self._next_fault_round()
            if fault is not None:
                m = min(m, fault - round_ - 1)
        if m < 2:
            return None
        # A departure from a watched start node must notify the
        # watchers through the ordinary machinery.
        for idx, _head, _steps, _pos, _watch in walks:
            if watchers[self._pos[idx]]:
                return None
        dyn = self._dynamics
        if dyn is not None:
            # A blocked head edge goes through the per-edge retry path.
            for idx, head, _steps, _pos, _watch in walks:
                if dyn.blocked(self._pos[idx], head, round_):
                    return None
        # Walkers leave their start nodes in the first round; every
        # other agent (waiting, finished, dormant) is static for the
        # whole segment.  Taking the walkers out of ``_counts`` while
        # planning makes ``counts[v]`` the static occupancy directly
        # (restored before returning).
        for idx, _head, _steps, _pos, _watch in walks:
            counts[self._pos[idx]] -= 1
        try:
            # Pass 1 — structural: simulate each route, truncating
            # before any node whose occupants the ordinary machinery
            # must wake.
            routes: list[list[int]] = []
            entries: list[list[int]] = []
            degrees: list[list[int]] = []
            for idx, head, steps, pos, _watch in walks:
                node = self._pos[idx]
                route = [node]
                ents: list[int] = []
                degs: list[int] = []
                node, entry = adj[node][head]  # head validated by _resume
                t = 0
                while True:
                    if watchers[node] or dormant_at[node]:
                        m = t  # stop before waking anyone
                        break
                    route.append(node)
                    ents.append(entry)
                    ports = adj[node]
                    degree = len(ports)
                    degs.append(degree)
                    t += 1
                    if t >= m:
                        break
                    step = steps[pos + t]
                    if step >= 0:
                        if step >= degree:
                            m = t  # invalid step ends the joint segment
                            break
                        port = step
                    else:
                        port = (entry + ~step) % degree
                    if dyn is not None and dyn.blocked(node, port, round_ + t):
                        m = t  # stop before the blocked edge: the
                        break  # walker retries it through _apply_moves
                    node, entry = ports[port]
                if m < 2:
                    return None
                routes.append(route)
                entries.append(ents)
                degrees.append(degs)
            # Pass 2 — exact CurCard per arrival (statics + cohort
            # co-location), truncating at the first firing walk watch.
            # Watch predicates are resolved once per walker, with the
            # CurCard-1 verdict precomputed (the overwhelmingly common
            # cardinality on walk-dominated runs).
            if len(walks) == 1:
                route = routes[0]
                watch = walks[0][4]
                cards = [counts[route[t]] + 1 for t in range(1, m + 1)]
                if watch is not None:
                    hit = _WATCH_PREDICATES[watch[0]]
                    value = watch[1]
                    hit1 = hit(1, value)
                    for t, card in enumerate(cards):
                        if hit1 if card == 1 else hit(card, value):
                            m = t + 1  # the firing edge is the last
                            del cards[m:]
                            break
                if m < 2:
                    return None
                curcards = [cards]
            elif len(walks) == 2:
                # The dominant cohort: a pair — either a merged group
                # touring in lockstep or two groups exploring in
                # parallel.  No per-round allocation.
                route_a, route_b = routes
                watch_a, watch_b = walks[0][4], walks[1][4]
                if watch_a is not None:
                    hit_a = _WATCH_PREDICATES[watch_a[0]]
                    val_a = watch_a[1]
                    hit1_a = hit_a(1, val_a)
                else:
                    hit_a = None
                    val_a = 0
                    hit1_a = False
                if watch_b is not None:
                    hit_b = _WATCH_PREDICATES[watch_b[0]]
                    val_b = watch_b[1]
                    hit1_b = hit_b(1, val_b)
                else:
                    hit_b = None
                    val_b = 0
                    hit1_b = False
                cards_a: list[int] = []
                cards_b: list[int] = []
                for t in range(1, m + 1):
                    va = route_a[t]
                    vb = route_b[t]
                    if va == vb:
                        card_a = card_b = counts[va] + 2
                    else:
                        card_a = counts[va] + 1
                        card_b = counts[vb] + 1
                    cards_a.append(card_a)
                    cards_b.append(card_b)
                    fired_a = (
                        hit1_a
                        if card_a == 1
                        else hit_a is not None and hit_a(card_a, val_a)
                    )
                    fired_b = (
                        hit1_b
                        if card_b == 1
                        else hit_b is not None and hit_b(card_b, val_b)
                    )
                    if fired_a or fired_b:
                        m = t  # the firing edge is the segment's last
                        break
                if m < 2:
                    return None
                curcards = [cards_a, cards_b]
            else:
                curcards = [[] for _ in walks]
                for t in range(1, m + 1):
                    occ: dict[int, int] = {}
                    for route in routes:
                        v = route[t]
                        occ[v] = occ.get(v, 0) + 1
                    fired = False
                    for w, (idx, _head, _steps, _pos, watch) in enumerate(
                        walks
                    ):
                        v = routes[w][t]
                        card = counts[v] + occ[v]
                        curcards[w].append(card)
                        if watch is not None and watch_hit(watch, card):
                            fired = True
                    if fired:
                        m = t  # the firing edge is the segment's last
                        break
                if m < 2:
                    return None
        finally:
            for idx, _head, _steps, _pos, _watch in walks:
                counts[self._pos[idx]] += 1
        return m, routes, entries, degrees, curcards

    def _apply_segment(
        self,
        walks: list[tuple],
        round_: int,
        m: int,
        routes: list[list[int]],
        entries: list[list[int]],
        degrees: list[list[int]],
        curcards: list[list[int]],
    ) -> None:
        """Commit an ``m``-edge segment for every walker as one event.

        Performs the per-step model's bookkeeping for the whole
        traversed prefix — occupancies, ``last_change`` of every
        transited node, move counts, virtual ``events`` and (in trace
        mode) per-edge ``move_log`` entries — then schedules each
        walker's next resume at ``round_ + m`` with its per-edge
        observation history attached.
        """
        counts = self._counts
        last_change = self._last_change
        end_round = round_ + m
        obs_rounds = range(round_ + 1, end_round + 1)
        self._c_segments.value += 1
        self._c_segment_edges.value += m * len(walks)
        for w, (idx, _head, _steps, _pos, _watch) in enumerate(walks):
            route = routes[w]
            ents = entries[w]
            counts[route[0]] -= 1
            counts[route[m]] += 1
            self._pos[idx] = route[m]
            self._entry_port[idx] = ents[m - 1]
            self._outcomes[idx].moves += m
            self._walk_trace[idx] = (obs_rounds, degrees[w], ents, curcards[w])
            self._push(end_round, idx)
        # Virtual per-edge resumes: byte-compatible events accounting.
        self._events += len(walks) * (m - 1)
        # last_change per transited node, exactly as _apply_moves would
        # have set it round by round (zero-delta rounds excluded: a
        # node where arrivals balanced departures shows no CurCard
        # variation, Section 1.4).
        if len(walks) == 1:
            route = routes[0]
            for t in range(m):
                src, dst = route[t], route[t + 1]
                if src != dst:
                    last_change[src] = round_ + t + 1
                    last_change[dst] = round_ + t + 1
        elif len(walks) == 2:
            route_a, route_b = routes
            for t in range(m):
                rd = round_ + t + 1
                sa, da = route_a[t], route_a[t + 1]
                sb, db = route_b[t], route_b[t + 1]
                if sa == sb and da == db:  # lockstep pair
                    if sa != da:
                        last_change[sa] = rd
                        last_change[da] = rd
                elif (
                    sa != da and sb != db and sa != sb
                    and da != db and sa != db and sb != da
                ):  # fully disjoint moves
                    last_change[sa] = rd
                    last_change[sb] = rd
                    last_change[da] = rd
                    last_change[db] = rd
                else:  # crossings / self-loops: exact per-node deltas
                    deltas = {sa: -1}
                    deltas[da] = deltas.get(da, 0) + 1
                    deltas[sb] = deltas.get(sb, 0) - 1
                    deltas[db] = deltas.get(db, 0) + 1
                    for v, delta in deltas.items():
                        if delta:
                            last_change[v] = rd
        else:
            for t in range(m):
                deltas2: dict[int, int] = {}
                for route in routes:
                    src, dst = route[t], route[t + 1]
                    deltas2[src] = deltas2.get(src, 0) - 1
                    deltas2[dst] = deltas2.get(dst, 0) + 1
                for v, delta in deltas2.items():
                    if delta:
                        last_change[v] = round_ + t + 1
        if self.trace:
            order = sorted(range(len(walks)), key=lambda w: walks[w][0])
            for t in range(m):
                for w in order:
                    route = routes[w]
                    self.move_log.append(
                        (round_ + t, walks[w][0], route[t], route[t + 1])
                    )
        if self._emit is not None:
            self._emit_segment(
                walks, round_, m,
                [tuple(route) for route in routes],
                [cards[m - 1] for cards in curcards], (),
            )

    def _emit_segment(
        self, walks, round_, m, routes, final_cards, observers
    ) -> None:
        """Emit one :class:`WalkSegment` (plus any firing walk watch).

        A walk watch that fires does so on the segment's last edge (the
        planners truncate there); the walker observes it at the
        segment-end resume, so the :class:`WatchFired` round is
        ``round_ + m`` — exactly where :meth:`repro.sim.agent.Agent.walk`
        raises ``WatchTriggered`` when replaying the history.
        """
        emit = self._emit
        emit.emit(_EvWalkSegment(
            round=round_,
            length=m,
            walkers=tuple(idx for idx, _h, _s, _p, _w in walks),
            routes=tuple(routes),
            observers=observers,
        ))
        for w, (idx, _head, _steps, _pos, watch) in enumerate(walks):
            if watch is not None and watch_hit(watch, final_cards[w]):
                emit.emit(_EvWatchFired(
                    round=round_ + m,
                    agent=idx,
                    node=routes[w][m],
                    count=final_cards[w],
                ))

    # ------------------------------------------------------------------
    # Move application (end of round).
    # ------------------------------------------------------------------

    def _apply_moves(
        self, pending: list[tuple[int, int]], round_: int
    ) -> None:
        graph = self.graph
        counts = self._counts
        next_round = round_ + 1
        # Canonical per-round order (by agent index): moves are
        # simultaneous, so this only fixes the trace order, making it
        # comparable across schedulers.
        pending.sort()
        deltas: dict[int, int] = {}
        arrivals: set[int] = set()
        emit = self._emit
        dyn = self._dynamics
        for idx, port in pending:
            src = self._pos[idx]
            if dyn is not None and dyn.blocked(src, port, round_):
                # A blocked move costs the round but not the edge: the
                # agent stays put (no occupancy change, nothing to
                # observe) and retries the same port next round.
                self.last_step_divergence = "dynamics"
                self._c_edges_blocked.value += 1
                self._retry_move[idx] = port
                if emit is not None:
                    emit.emit(_EvEdgeBlocked(
                        round=round_, agent=idx, node=src, port=port
                    ))
                self._push(next_round, idx)
                continue
            dst, entry = graph.neighbor(src, port)
            counts[src] -= 1
            counts[dst] += 1
            deltas[src] = deltas.get(src, 0) - 1
            deltas[dst] = deltas.get(dst, 0) + 1
            arrivals.add(dst)
            self._pos[idx] = dst
            self._entry_port[idx] = entry
            self._outcomes[idx].moves += 1
            if self.trace:
                self.move_log.append((round_, idx, src, dst))
            if emit is not None:
                emit.emit(_EvAgentMove(
                    round=round_, agent=idx, src=src, dst=dst
                ))
            self._push(next_round, idx)
        # A node where arrivals exactly balanced departures shows no
        # CurCard variation: agents there notice nothing (the paper's
        # Section 1.4 makes this point explicitly).
        for node, delta in deltas.items():
            if delta == 0:
                continue
            self._last_change[node] = next_round
            if self._watchers[node]:
                new_count = counts[node]
                for widx in list(self._watchers[node]):
                    watch = self._watch[widx]
                    if watch is not None:
                        if watch_hit(watch, new_count):
                            self.last_step_divergence = "watch"
                            self._reschedule(next_round, widx)
                    elif self._stable[widx] is not None:
                        self._reschedule(
                            next_round + self._stable[widx] - 1, widx
                        )
        # A dormant agent is woken by the first agent that *visits* its
        # starting node, even if the node's cardinality is unchanged.
        for node in arrivals:
            if self._dormant_at[node]:
                for didx in list(self._dormant_at[node]):
                    if self._state[didx] == _DORMANT:
                        self.last_step_divergence = "dormant-wake"
                        self._reschedule(next_round, didx)
                        # Leave the agent in _dormant_at; _start_agent
                        # removes it, and the epoch bump above already
                        # invalidated any later adversary wake entry.

    # ------------------------------------------------------------------
    # Mid-trial state export / import (cohort ejection hand-off).
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Snapshot of the scheduler-array state.

        Agent generators are deliberately *not* part of the snapshot
        (Python generators cannot be copied); the cohort executor keeps
        each trial's generators inside its own ``Simulation`` object
        and uses this snapshot only to mirror, audit and re-install the
        scheduler arrays around an ejection.
        """
        nxt: list[int | None] = [None] * len(self.specs)
        for round_, _seq, idx, ep in self._heap:
            if ep == self._epoch[idx] and self._state[idx] != _DONE:
                if nxt[idx] is None or round_ < nxt[idx]:
                    nxt[idx] = round_
        return {
            "positions": list(self._pos),
            "entry_ports": list(self._entry_port),
            "counts": list(self._counts),
            "last_change": list(self._last_change),
            "states": list(self._state),
            "moves": [o.moves for o in self._outcomes],
            "events": self._events,
            "active": self._active,
            "next_rounds": nxt,
        }

    def import_state(self, state: dict) -> None:
        """Re-install a snapshot from :meth:`export_state`.

        Only the scheduler arrays are installed; lifecycle state, the
        event heap and the agent generators must already agree with the
        snapshot (validated below, :class:`SimulationError` on any
        inconsistency).  Watching or dormant agents cannot be relocated
        — the per-node watcher/dormant index sets are keyed by their
        current positions.
        """
        k = len(self.specs)
        n = self.graph.n
        pos = list(state["positions"])
        counts = list(state["counts"])
        if (
            len(pos) != k
            or len(state["entry_ports"]) != k
            or len(state["moves"]) != k
            or len(counts) != n
            or len(state["last_change"]) != n
        ):
            raise SimulationError("imported state has wrong dimensions")
        if any(not isinstance(p, int) or p < 0 or p >= n for p in pos):
            raise SimulationError("imported position out of range")
        derived = [0] * n
        crashed = self._crashed
        for i, p in enumerate(pos):
            # A crashed agent's last position is recorded but no longer
            # occupied (unlike a declared agent's).
            if crashed is None or not crashed[i]:
                derived[p] += 1
        if derived != counts:
            raise SimulationError(
                "imported counts are inconsistent with imported positions"
            )
        if list(state["states"]) != self._state:
            raise SimulationError(
                "imported lifecycle states do not match this simulation"
            )
        if state["active"] != self._active:
            raise SimulationError(
                "imported active count does not match this simulation"
            )
        for idx in range(k):
            anchored = (
                self._watch[idx] is not None
                or self._stable[idx] is not None
                or self._state[idx] == _DORMANT
            )
            if anchored and pos[idx] != self._pos[idx]:
                raise SimulationError(
                    f"agent {self.specs[idx].label} is watching or dormant "
                    "and cannot be relocated by import_state"
                )
        self._pos = pos
        self._entry_port = list(state["entry_ports"])
        self._counts = counts
        self._last_change = list(state["last_change"])
        for out, moved in zip(self._outcomes, state["moves"]):
            out.moves = moved
        self._events = state["events"]
