"""Fault and dynamic-edge adversaries: crash schedules and edge liveness.

Two new scenario axes make failures first-class, deterministic and
searchable:

* **Crash faults** — a fault strategy string resolves (together with a
  trial seed) into a concrete schedule of ``(label, round)`` crashes.
  The scheduler removes a crashed agent at the start of its fault
  round: it never acts in that round and — unlike a *declared* agent —
  it stops occupying its node, so surviving watchers observe the
  departure.

* **Dynamic edges** — a per-round edge-liveness adversary consulted at
  every traversal.  The built-in schedules block at most one edge per
  round, which keeps a ring 1-interval-connected in the sense of
  Di Luna et al., "Gathering in Dynamic Rings".  A blocked move costs
  the round but not the edge: the agent retries the same port next
  round without re-entering its program.

Strategy strings
----------------

``faults`` axis:

* ``none`` — no crashes.
* ``crash:<label>@<round>`` — crash agent ``label`` at ``round``;
  several crashes join with ``+`` (``crash:2@10+5@3``).
* ``crash-random:<k>:<max_round>`` — crash ``k`` seed-deterministically
  chosen agents at uniform rounds in ``[0, max_round]``.

``dynamics`` axis:

* ``none`` — static graph.
* ``ring-sweep[:<period>]`` — block edge ``(round // period) % E``,
  sweeping deterministically through the edge list.
* ``ring-random`` — block one hash-chosen edge per round (stateless:
  the blocked edge for any round is derived from the seed alone).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

FAULT_STRATEGIES = ("none", "crash", "crash-random")
DYNAMICS_STRATEGIES = ("none", "ring-sweep", "ring-random")


def parse_fault_strategy(strategy: str) -> tuple:
    """Parse a fault strategy string into a structured tuple.

    Returns ``("none",)``, ``("crash", ((label, round), ...))`` or
    ``("crash-random", k, max_round)``.  Raises :class:`ValueError` on
    malformed input.
    """
    if strategy == "none":
        return ("none",)
    kind, _, rest = strategy.partition(":")
    if kind == "crash":
        if not rest:
            raise ValueError("crash strategy needs '<label>@<round>' pairs")
        pairs = []
        for part in rest.split("+"):
            label_s, sep, round_s = part.partition("@")
            if not sep:
                raise ValueError(
                    f"malformed crash entry {part!r} (want '<label>@<round>')"
                )
            try:
                label, fround = int(label_s), int(round_s)
            except ValueError:
                raise ValueError(
                    f"malformed crash entry {part!r} (want '<label>@<round>')"
                ) from None
            if label <= 0:
                raise ValueError(f"crash labels must be positive, got {label}")
            if fround < 0:
                raise ValueError(f"crash rounds must be >= 0, got {fround}")
            pairs.append((label, fround))
        labels = [label for label, _ in pairs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate crash labels in {strategy!r}")
        return ("crash", tuple(pairs))
    if kind == "crash-random":
        args = rest.split(":") if rest else []
        if len(args) != 2:
            raise ValueError(
                f"crash-random needs '<k>:<max_round>', got {strategy!r}"
            )
        try:
            k, max_round = int(args[0]), int(args[1])
        except ValueError:
            raise ValueError(
                f"crash-random needs integer '<k>:<max_round>', got {strategy!r}"
            ) from None
        if k <= 0:
            raise ValueError(f"crash-random needs k >= 1, got {k}")
        if max_round < 0:
            raise ValueError(
                f"crash-random needs max_round >= 0, got {max_round}"
            )
        return ("crash-random", k, max_round)
    raise ValueError(
        f"unknown fault strategy {strategy!r} "
        f"(known kinds: {', '.join(FAULT_STRATEGIES)})"
    )


def format_crash_faults(pairs: Sequence[tuple[int, int]]) -> str:
    """Format concrete crashes back into a ``crash:...`` strategy string."""
    if not pairs:
        return "none"
    return "crash:" + "+".join(f"{label}@{round_}" for label, round_ in pairs)


def resolve_fault_schedule(
    strategy: str,
    labels: Sequence[int],
    seed: int = 0,
) -> tuple[tuple[int, int], ...]:
    """Resolve a fault strategy into concrete ``(label, round)`` crashes.

    Explicit ``crash:`` schedules are validated against ``labels``;
    ``crash-random`` samples ``k`` distinct labels (in ``labels`` order,
    so resolution is placement-independent) with uniform crash rounds in
    ``[0, max_round]``.  The result is sorted by ``(round, label)``.
    """
    parsed = parse_fault_strategy(strategy)
    if parsed[0] == "none":
        return ()
    if parsed[0] == "crash":
        pairs = parsed[1]
        unknown = [label for label, _ in pairs if label not in labels]
        if unknown:
            raise ValueError(
                f"crash targets unknown agent label(s) {unknown} "
                f"(team labels: {list(labels)})"
            )
        return tuple(sorted(pairs, key=lambda p: (p[1], p[0])))
    _, k, max_round = parsed
    if k > len(labels):
        raise ValueError(
            f"crash-random wants {k} victims but the team has "
            f"{len(labels)} agents"
        )
    rng = random.Random(seed)
    victims = rng.sample(list(labels), k)
    pairs = [(label, rng.randrange(max_round + 1)) for label in victims]
    return tuple(sorted(pairs, key=lambda p: (p[1], p[0])))


def ensure_round0_survivor(
    faults: Sequence[tuple[int, int]],
    labels: Sequence[int],
    wake_rounds: Sequence[int | None],
) -> tuple[tuple[int, int], ...]:
    """Restore the "at least one agent wakes at round 0" guarantee.

    :func:`~repro.sim.adversary.random_schedule` guarantees a round-0
    waker — but fault resolution is independent, so every round-0 waker
    can be scheduled to crash *at* round 0, leaving no agent that ever
    acts.  When that happens, the smallest-label round-0 crash of a
    round-0 waker is postponed to round 1, so that agent acts for one
    round before dying.  All other schedules pass through unchanged.
    """
    faults = tuple(faults)
    wakers0 = {
        label
        for label, wake in zip(labels, wake_rounds)
        if wake == 0
    }
    if not wakers0:
        return faults
    crashed0 = {label for label, round_ in faults if round_ == 0}
    if wakers0 - crashed0:
        return faults
    bump = min(label for label in crashed0 if label in wakers0)
    fixed = tuple(
        (label, 1 if label == bump and round_ == 0 else round_)
        for label, round_ in faults
    )
    return tuple(sorted(fixed, key=lambda p: (p[1], p[0])))


def parse_dynamics_strategy(strategy: str) -> tuple:
    """Parse a dynamics strategy string into a structured tuple.

    Returns ``("none",)``, ``("ring-sweep", period)`` or
    ``("ring-random",)``.  Raises :class:`ValueError` on malformed input.
    """
    if strategy == "none":
        return ("none",)
    kind, _, rest = strategy.partition(":")
    if kind == "ring-sweep":
        if not rest:
            return ("ring-sweep", 1)
        try:
            period = int(rest)
        except ValueError:
            raise ValueError(
                f"ring-sweep period must be an integer, got {strategy!r}"
            ) from None
        if period <= 0:
            raise ValueError(f"ring-sweep period must be >= 1, got {period}")
        return ("ring-sweep", period)
    if kind == "ring-random":
        if rest:
            raise ValueError(f"ring-random takes no arguments, got {strategy!r}")
        return ("ring-random",)
    raise ValueError(
        f"unknown dynamics strategy {strategy!r} "
        f"(known kinds: {', '.join(DYNAMICS_STRATEGIES)})"
    )


class EdgeDynamics:
    """Per-round edge liveness: at most one blocked edge per round.

    Subclasses implement :meth:`blocked_edge`; :meth:`blocked` answers
    the scheduler's per-traversal question in O(1) via a precomputed
    ``(node, port) -> edge index`` map.  Blocking one edge per round
    keeps every connected graph that stays connected after any single
    edge removal (rings in particular) 1-interval connected.
    """

    __slots__ = ("num_edges", "_edge_index")

    def __init__(self, graph) -> None:
        index: dict[tuple[int, int], int] = {}
        count = 0
        for count, (u, pu, v, pv) in enumerate(graph.edges(), start=1):
            index[(u, pu)] = count - 1
            index[(v, pv)] = count - 1
        if count == 0:
            raise ValueError("dynamics need a graph with at least one edge")
        self._edge_index = index
        self.num_edges = count

    def blocked_edge(self, round_: int) -> int:
        """Index (into the graph's edge list) blocked during ``round_``."""
        raise NotImplementedError

    def blocked(self, node: int, port: int, round_: int) -> bool:
        """Whether traversing ``port`` at ``node`` is blocked in ``round_``."""
        return self._edge_index[(node, port)] == self.blocked_edge(round_)


class SweepDynamics(EdgeDynamics):
    """Blocks edge ``(round // period) % E``: a deterministic sweep."""

    __slots__ = ("period",)

    def __init__(self, graph, period: int = 1) -> None:
        super().__init__(graph)
        self.period = period

    def blocked_edge(self, round_: int) -> int:
        return (round_ // self.period) % self.num_edges


class HashDynamics(EdgeDynamics):
    """Blocks one seed-derived pseudo-random edge per round.

    Stateless by construction — the blocked edge of round ``r`` is a
    pure function of ``(seed, r)`` — so replays, segment planning and
    the reference scheduler all see the same schedule without sharing
    any RNG state.
    """

    __slots__ = ("seed", "_cache")

    def __init__(self, graph, seed: int = 0) -> None:
        super().__init__(graph)
        self.seed = seed
        self._cache: tuple[int, int] = (-1, 0)

    def blocked_edge(self, round_: int) -> int:
        cached_round, cached_edge = self._cache
        if cached_round == round_:
            return cached_edge
        digest = hashlib.blake2b(
            f"{self.seed}:{round_}".encode(), digest_size=8
        ).digest()
        edge = int.from_bytes(digest, "big") % self.num_edges
        self._cache = (round_, edge)
        return edge


def make_dynamics(strategy: str, graph, seed: int = 0) -> EdgeDynamics | None:
    """Build the :class:`EdgeDynamics` for a strategy (``None`` for none)."""
    parsed = parse_dynamics_strategy(strategy)
    if parsed[0] == "none":
        return None
    if parsed[0] == "ring-sweep":
        return SweepDynamics(graph, period=parsed[1])
    return HashDynamics(graph, seed=seed)
