"""Naive per-round reference scheduler (the differential oracle).

A from-scratch re-implementation of the synchronous agent model that
advances the clock one round at a time and re-derives every observation
from first principles, with none of the event-compression machinery of
:mod:`repro.sim.scheduler` — no heap, no epochs, no walk segments.  A
``walk`` op is executed one edge per round (the agent-side ``walk``
helper re-resolves and re-issues the rest of its plan on every
arrival), so agreement with the fast scheduler on randomized programs
is direct evidence that segment compression never changes semantics.

The reference mirrors the :class:`~repro.sim.scheduler.Simulation` API
surface the differential suite compares:

* an identical :class:`~repro.sim.scheduler.SimulationResult` —
  outcomes field by field, ``final_round``, ``total_moves`` and the
  ``events`` counter (one event per generator resumption, which the
  fast scheduler matches by counting a *virtual* resume per walked
  edge);
* an identical ``move_log`` in trace mode (both schedulers record each
  round's simultaneous moves in agent-index order);
* identical budget failures (:class:`BudgetExceededError` with the
  same message) and deadlock detection.

Semantics implemented (the documented contract of ``scheduler.py``):

* all moves issued in round ``r`` apply simultaneously between ``r``
  and ``r + 1``;
* a ``wait`` with a watch is abandoned at the first round at which the
  node's cardinality satisfies the watch;
* ``wait_stable(D)`` completes at the first round ``R`` with
  ``R >= last_change + D - 1`` where ``last_change`` is the latest
  round in which the node's cardinality changed (0 if never);
* a dormant agent wakes in the round after an agent arrives at its
  node;
* a crash fault removes its agent at the start of the fault round
  (before wake-ups and resumes; occupancy gone from that round on);
* a dynamics-blocked move costs the round but not the edge (one event
  per retry round, no program re-entry);
* the graceful ``horizon`` finalizes all live agents undeclared when
  the next event would fall after it (``timed_out=True``).

Being O(rounds), the reference is only usable where clocks stay small;
the differential suite keeps waits and walks short.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..graphs.port_graph import PortGraph
from .agent import AgentContext
from .ops import (
    BudgetExceededError,
    DeadlockError,
    DECLARE,
    MOVE,
    OBSERVE,
    Observation,
    SimulationError,
    WAIT,
    WAIT_STABLE,
    WALK,
    watch_hit,
)
from .scheduler import AgentOutcome, AgentSpec, SimulationResult

_MAX_ADVANCES_PER_ROUND = 100_000


class _RefAgent:
    """Mutable per-agent state of the reference run."""

    __slots__ = (
        "index",
        "label",
        "node",
        "program",
        "wake_round",
        "gen",
        "ctx",
        "state",
        "resume_round",
        "watch",
        "stable_window",
        "entry_port",
        "retry_port",
        "outcome",
    )

    def __init__(
        self,
        index: int,
        label: int,
        node: int,
        program: Callable[[AgentContext], object],
        wake_round: int | None,
    ) -> None:
        self.index = index
        self.label = label
        self.node = node
        self.program = program
        self.wake_round = wake_round
        self.gen = None
        self.ctx: AgentContext | None = None
        self.state = "dormant"
        self.resume_round: int | None = None
        self.watch = None
        self.stable_window: int | None = None
        self.entry_port: int | None = None
        self.retry_port: int | None = None
        self.outcome = AgentOutcome(label, node)


class ReferenceSimulation:
    """Round-by-round reference implementation.

    Parameters mirror :class:`~repro.sim.scheduler.Simulation` —
    ``faults``, ``dynamics`` and the graceful ``horizon`` included, so
    the differential suite covers faulted runs bit for bit.
    ``oracle_rounds`` bounds the number of simulated rounds (a safety
    rail for the oracle itself, raised as :class:`SimulationError`,
    distinct from both the model's ``max_round`` budget and the
    graceful ``horizon``).
    """

    def __init__(
        self,
        graph: PortGraph,
        specs: Iterable[AgentSpec],
        max_events: int | None = None,
        max_round: int | None = None,
        trace: bool = False,
        oracle_rounds: int = 500_000,
        faults=None,
        dynamics=None,
        horizon: int | None = None,
    ) -> None:
        self.graph = graph
        self.specs = list(specs)
        if not self.specs:
            raise SimulationError("no agents")
        starts = [s.start_node for s in self.specs]
        if len(set(starts)) != len(starts):
            raise SimulationError("agents must start at distinct nodes")
        labels = [s.label for s in self.specs]
        if len(set(labels)) != len(labels):
            raise SimulationError("agent labels must be distinct")
        if any(s.start_node < 0 or s.start_node >= graph.n for s in self.specs):
            raise SimulationError("start node out of range")
        if all(s.wake_round is None for s in self.specs):
            raise SimulationError("at least one agent must be woken")
        self.max_events = max_events
        self.max_round = max_round
        self.trace = trace
        self.oracle_rounds = oracle_rounds
        self.horizon = horizon
        self.dynamics = dynamics
        self.timed_out = False
        self.move_log: list[tuple[int, int, int, int]] = []
        self.agents = [
            _RefAgent(i, s.label, s.start_node, s.program, s.wake_round)
            for i, s in enumerate(self.specs)
        ]
        label_index = {a.label: a.index for a in self.agents}
        queue: list[tuple[int, int]] = []
        for label, fround in faults or ():
            fidx = label_index.get(label)
            if fidx is None:
                raise SimulationError(
                    f"fault targets unknown agent label {label!r}"
                )
            if fround < 0:
                raise SimulationError(
                    f"fault rounds must be >= 0, got {fround}"
                )
            queue.append((fround, fidx))
        queue.sort()
        self._faults = queue
        self._fault_i = 0
        self.last_change = [0] * graph.n
        self._events = 0

    # -- helpers -------------------------------------------------------

    def _count(self, node: int) -> int:
        # A crashed agent stops occupying its node (a declared one
        # keeps occupying it — the fast scheduler's distinction).
        return sum(
            1
            for a in self.agents
            if a.node == node and not a.outcome.crashed
        )

    def _obs(self, agent: _RefAgent, round_: int, triggered: bool) -> Observation:
        obs = Observation(
            round_,
            self.graph.degree(agent.node),
            agent.entry_port,
            self._count(agent.node),
            triggered,
        )
        agent.entry_port = None
        return obs

    def _start(self, agent: _RefAgent, round_: int) -> None:
        agent.ctx = AgentContext(agent.label)
        agent.ctx.wake_round = round_
        agent.gen = agent.program(agent.ctx)
        agent.state = "ready"
        agent.wake_round = round_
        agent.outcome.wake_round = round_

    def _finish(
        self, agent: _RefAgent, round_: int, payload: object, declared: bool
    ) -> None:
        agent.state = "done"
        agent.gen = None
        out = agent.outcome
        out.finish_round = round_
        out.finish_node = agent.node
        out.payload = payload
        out.declared = declared

    def _advance(
        self, agent: _RefAgent, round_: int, triggered: bool, moves_out: list
    ) -> None:
        """Resume the agent once; one event, exactly like a heap pop."""
        self._events += 1
        if self.max_events is not None and self._events > self.max_events:
            raise BudgetExceededError(
                f"event budget exceeded at round {round_}"
            )
        obs = self._obs(agent, round_, triggered)
        try:
            if agent.state == "ready" and agent.ctx.obs is None:
                agent.ctx.obs = obs
                op = next(agent.gen)
            else:
                op = agent.gen.send(obs)
        except StopIteration as stop:
            self._finish(agent, round_, stop.value, declared=False)
            return
        kind = op[0]
        if kind == MOVE or kind == WALK:
            # The reference walks one edge per round: a walk op is just
            # a move of its (already resolved) head port; the agent-side
            # helper re-issues the rest of the plan on arrival.
            port = op[1]
            degree = self.graph.degree(agent.node)
            if not isinstance(port, int) or port < 0 or port >= degree:
                raise SimulationError(
                    f"agent {agent.label} took invalid port "
                    f"{port!r} at a node of degree {degree}"
                )
            moves_out.append((agent, port))
            agent.state = "moving"
        elif kind == WAIT:
            duration, watch = op[1], op[2]
            if duration < 1:
                raise SimulationError(
                    f"wait duration must be >= 1, got {duration}"
                )
            agent.state = "waiting"
            agent.resume_round = round_ + duration
            agent.watch = watch
        elif kind == WAIT_STABLE:
            window = op[1]
            if window < 1:
                raise SimulationError(
                    f"stability window must be >= 1, got {window}"
                )
            agent.state = "stable"
            agent.stable_window = window
        elif kind == OBSERVE:
            # One observed round at a time: the agent helper re-issues
            # the op with the remaining count, so the reference never
            # needs segment semantics.
            if op[1] < 1:
                raise SimulationError(
                    f"observe duration must be >= 1, got {op[1]}"
                )
            agent.state = "waiting"
            agent.resume_round = round_ + 1
            agent.watch = None
        elif kind == DECLARE:
            self._finish(agent, round_, op[1], declared=True)
        else:
            raise SimulationError(f"unknown op {op!r}")

    def _due(self, agent: _RefAgent, round_: int) -> tuple[bool, bool]:
        """Is the agent due to resume this round? -> (due, triggered)."""
        if agent.state == "ready":
            return True, False
        if agent.state == "waiting":
            if agent.watch is not None and watch_hit(
                agent.watch, self._count(agent.node)
            ):
                return True, True
            return round_ >= agent.resume_round, False
        if agent.state == "stable":
            threshold = self.last_change[agent.node] + agent.stable_window - 1
            return round_ >= threshold, False
        return False, False

    # -- fault injection ----------------------------------------------

    def _next_fault_round(self) -> int | None:
        """Round of the earliest pending fault with a live target."""
        for fround, idx in self._faults[self._fault_i:]:
            if self.agents[idx].state != "done":
                return fround
        return None

    def _apply_faults(self, round_: int) -> None:
        """Crash every agent whose fault falls due at ``round_``.

        Applied before wake-ups and resumes: a crashed agent never
        acts in its fault round, and its occupancy disappears from
        ``round_`` on (``_count`` skips crashed agents), so watchers
        and stability windows see the departure this very round.
        """
        faults = self._faults
        while self._fault_i < len(faults) and faults[self._fault_i][0] <= round_:
            _, idx = faults[self._fault_i]
            self._fault_i += 1
            agent = self.agents[idx]
            if agent.state == "done":
                continue
            agent.state = "done"
            agent.gen = None
            agent.watch = None
            agent.stable_window = None
            agent.retry_port = None
            out = agent.outcome
            out.finish_round = round_
            out.finish_node = agent.node
            out.declared = False
            out.crashed = True
            self.last_change[agent.node] = round_

    def _graceful_stop(self) -> None:
        """Finalize every live agent undeclared: the horizon expired."""
        self.timed_out = True
        for agent in self.agents:
            if agent.state == "done":
                continue
            agent.state = "done"
            agent.gen = None
            agent.watch = None
            agent.stable_window = None
            agent.retry_port = None
            out = agent.outcome
            out.finish_round = None
            out.finish_node = agent.node
            out.declared = False

    # -- main loop -----------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until every agent terminates."""
        for round_ in range(self.oracle_rounds + 1):
            if all(a.state == "done" for a in self.agents):
                break
            fault_round = self._next_fault_round() if self._faults else None
            # Deadlock: only unwakeable dormant agents remain and no
            # pending fault can still remove one of them (the fast
            # scheduler jumps straight to such a fault's round).
            if fault_round is None and all(
                a.state == "done"
                or (a.state == "dormant" and a.wake_round is None)
                for a in self.agents
            ):
                if self.horizon is not None:
                    self._graceful_stop()
                    break
                active = sum(1 for a in self.agents if a.state != "done")
                raise DeadlockError(
                    f"{active} agent(s) can never run again "
                    "(dormant and unvisited, or waiting forever)"
                )
            # Graceful horizon and round budget: mirror the fast
            # scheduler's checks on the next scheduled event — wake-up,
            # resume, retry or crash — before anything in it runs.
            due_now = (
                fault_round == round_
                or any(a.state == "retry" for a in self.agents)
                or any(
                    self._due(a, round_)[0]
                    for a in self.agents
                    if a.state not in ("done", "dormant")
                )
                or any(
                    a.state == "dormant" and a.wake_round == round_
                    for a in self.agents
                )
            )
            if self.horizon is not None and due_now and round_ > self.horizon:
                self._graceful_stop()
                break
            if (
                self.max_round is not None
                and round_ > self.max_round
                and due_now
            ):
                raise BudgetExceededError(
                    f"round budget exceeded: next event at round {round_}"
                )
            # 0. crash faults land before anything else in the round.
            if self._faults:
                self._apply_faults(round_)
            # 1. adversary wake-ups scheduled for this round.
            for agent in self.agents:
                if agent.state == "dormant" and agent.wake_round == round_:
                    self._start(agent, round_)
            # 2. resume every due agent; chained ops (e.g. a stability
            # wait that is already satisfied) may come due within the
            # same round, so iterate to a fixpoint.  Counts do not
            # change mid-round (moves apply at the end), so resumption
            # order is immaterial.  Dynamics-blocked movers go first:
            # they retry their port verbatim — one event, no program
            # re-entry, no observation.
            moves: list[tuple[_RefAgent, int]] = []
            for agent in self.agents:
                if agent.state == "retry":
                    self._events += 1
                    if (
                        self.max_events is not None
                        and self._events > self.max_events
                    ):
                        raise BudgetExceededError(
                            f"event budget exceeded at round {round_}"
                        )
                    moves.append((agent, agent.retry_port))
                    agent.retry_port = None
                    agent.state = "moving"
            advances = 0
            progress = True
            while progress:
                progress = False
                for agent in self.agents:
                    if agent.state in ("moving", "done", "dormant"):
                        continue
                    due, triggered = self._due(agent, round_)
                    if due:
                        advances += 1
                        if advances > _MAX_ADVANCES_PER_ROUND:
                            raise SimulationError(
                                f"agent resumed too often in round {round_}; "
                                "non-advancing program?"
                            )
                        agent.watch = None
                        agent.stable_window = None
                        self._advance(agent, round_, triggered, moves)
                        progress = True
            # 3. apply the round's moves simultaneously, in agent-index
            # order (the canonical trace order of both schedulers).
            moves.sort(key=lambda pair: pair[0].index)
            before = [self._count(v) for v in self.graph.nodes()]
            arrivals: set[int] = set()
            for agent, port in moves:
                src = agent.node
                if self.dynamics is not None and self.dynamics.blocked(
                    src, port, round_
                ):
                    # A blocked move costs the round but not the edge:
                    # the agent stays (no occupancy change, nothing to
                    # observe) and retries the same port next round.
                    agent.state = "retry"
                    agent.retry_port = port
                    continue
                dst, entry = self.graph.neighbor(src, port)
                agent.node = dst
                agent.entry_port = entry
                agent.outcome.moves += 1
                agent.state = "ready"
                arrivals.add(dst)
                if self.trace:
                    self.move_log.append((round_, agent.index, src, dst))
            after = [self._count(v) for v in self.graph.nodes()]
            for v in self.graph.nodes():
                if before[v] != after[v]:
                    self.last_change[v] = round_ + 1
            # 4. dormant wake-ups by visit (start next round).
            for agent in self.agents:
                if agent.state == "dormant" and agent.node in arrivals:
                    agent.wake_round = round_ + 1
        else:
            raise SimulationError(
                f"reference horizon of {self.oracle_rounds} rounds exhausted "
                "before all agents terminated"
            )
        outcomes = [a.outcome for a in self.agents]
        final_round = max(
            (o.finish_round for o in outcomes if o.finish_round is not None),
            default=0,
        )
        total_moves = sum(o.moves for o in outcomes)
        return SimulationResult(
            outcomes,
            self._events,
            final_round,
            total_moves,
            crashed_labels=tuple(o.label for o in outcomes if o.crashed),
            timed_out=self.timed_out,
        )
