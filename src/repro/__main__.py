"""Command-line runner: ``python -m repro <command>``.

Demos::

    python -m repro gather     # silent gathering on a ring
    python -m repro gossip     # movement-modem gossiping
    python -m repro unknown    # zero-knowledge gathering (big clocks)
    python -m repro compare    # silent vs talking vs random walk
    python -m repro narrate    # milestone narration of a small run

Experiments::

    python -m repro sweep      # parallel, cached experiment sweeps
                               # (see: python -m repro sweep --help)
    python -m repro search     # adaptive adversary scenario search
    python -m repro query      # filter/aggregate cached sweep records
    python -m repro compact    # rewrite the store into canonical shards
    python -m repro worker     # claim chunks from a shared work manifest
    python -m repro merge      # union sibling stores into one
    python -m repro manifest   # inspect work-manifest progress/claims
    python -m repro trace      # validate/replay --events JSONL traces
    python -m repro metrics    # summarize/export/diff --metrics snapshots
    python -m repro corpus     # export/replay worst-case scenario corpora
"""

from __future__ import annotations

import sys

from .analysis import ResultTable
from .baselines import run_random_walk_gather, run_talking_gather
from .core import run_gather_known, run_gather_unknown, run_gossip_known
from .graphs import ring, single_edge


def _demo_gather() -> None:
    report = run_gather_known(ring(6, seed=42), [5, 9, 12], 8)
    print("silent gathering on a 6-ring (N = 8, labels 5/9/12)")
    print(f"  declared in round {report.round} at node {report.node}")
    print(f"  leader: agent {report.leader}; phases: {report.phases}")


def _demo_gossip() -> None:
    report = run_gossip_known(
        ring(5, seed=1), [2, 3, 5], ["101", "", "101"], 6
    )
    print("gossip on a 5-ring (messages '101', '', '101')")
    print(f"  finished in round {report.round}; everyone knows:")
    for message, count in sorted(report.messages.items()):
        print(f"    {message!r} held by {count} agent(s)")


def _demo_unknown() -> None:
    report = run_gather_unknown(single_edge(), [2, 3])
    print("zero-knowledge gathering (2 agents, 2-node network)")
    print(f"  confirmed hypothesis {report.hypothesis}")
    digits = report.round.bit_length() * 30103 // 100000
    print(f"  declaration clock ~ 10^{digits} rounds "
          f"({report.events} simulator events)")
    print(f"  leader: {report.leader}; learned size: {report.size}")


def _demo_compare() -> None:
    table = ResultTable(
        "gathering rounds (labels 1, 2)",
        ["ring size", "silent", "talking", "random walk"],
    )
    for n in (4, 6, 8):
        graph = ring(n, seed=1)
        table.add_row(
            n,
            run_gather_known(graph, [1, 2], n).round,
            run_talking_gather(graph, [1, 2], n).round,
            run_random_walk_gather(graph, [1, 2], n).round,
        )
    table.emit()


def _demo_narrate() -> None:
    from .core.gather_known import gather_known_program
    from .core.parameters import KnownBoundParameters
    from .sim import AgentSpec, Simulation
    from .sim.timeline import narrate

    graph = ring(4, seed=1)
    params = KnownBoundParameters(4)
    program = gather_known_program(params, max_phases=12)
    sim = Simulation(
        graph,
        [AgentSpec(1, 0, program), AgentSpec(2, 2, program)],
        trace=True,
    )
    result = sim.run()
    print("milestones of a silent gathering on a 4-ring:")
    print(narrate(sim, result, max_lines=12))


_DEMOS = {
    "gather": _demo_gather,
    "gossip": _demo_gossip,
    "unknown": _demo_unknown,
    "compare": _demo_compare,
    "narrate": _demo_narrate,
}


# Engine commands, dispatched to repro.runner.cli lazily (the engine
# pulls in multiprocessing machinery the demos never need).
_ENGINE_COMMANDS = (
    "sweep", "search", "query", "compact", "worker", "merge", "manifest",
    "trace", "metrics", "corpus",
)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] in _ENGINE_COMMANDS:
        from .runner import cli as runner_cli

        handler = getattr(runner_cli, f"{args[0]}_main")
        return handler(args[1:])
    if len(args) != 1 or args[0] not in _DEMOS:
        print(__doc__)
        return 1
    _DEMOS[args[0]]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
