"""Tests for the timeline/narration utilities."""

from __future__ import annotations

import pytest

from repro.core.gather_known import gather_known_program
from repro.core.parameters import KnownBoundParameters
from repro.graphs import ring, single_edge
from repro.sim import AgentSpec, Simulation
from repro.sim.agent import move, wait
from repro.sim.timeline import (
    extract_milestones,
    narrate,
    occupancy_histogram,
)


def _traced_gathering(graph, labels, n_bound, starts=None):
    params = KnownBoundParameters(n_bound)
    program = gather_known_program(params, max_phases=12)
    if starts is None:
        starts = list(range(len(labels)))
    sim = Simulation(
        graph,
        [AgentSpec(lab, node, program) for lab, node in zip(labels, starts)],
        trace=True,
    )
    return sim, sim.run()


class TestMilestones:
    def test_wakes_meetings_and_declarations_present(self):
        sim, result = _traced_gathering(single_edge(), [1, 2], 2)
        milestones = extract_milestones(sim, result)
        kinds = [m.kind for m in milestones]
        assert kinds.count("wake") == 2
        assert "meeting" in kinds
        assert kinds.count("declare") == 2

    def test_chronological_order(self):
        sim, result = _traced_gathering(ring(3), [1, 2], 3)
        milestones = extract_milestones(sim, result)
        rounds = [m.round for m in milestones]
        assert rounds == sorted(rounds)

    def test_declaration_is_last(self):
        sim, result = _traced_gathering(ring(3), [1, 2], 3)
        milestones = extract_milestones(sim, result)
        assert milestones[-1].kind == "declare"

    def test_requires_trace(self):
        def program(ctx):
            yield from wait(ctx, 1)
            return None

        sim = Simulation(single_edge(), [AgentSpec(1, 0, program)])
        result = sim.run()
        with pytest.raises(ValueError):
            extract_milestones(sim, result)


class TestNarration:
    def test_narration_mentions_agents(self):
        sim, result = _traced_gathering(single_edge(), [1, 2], 2)
        text = narrate(sim, result)
        assert "agent 1" in text and "agent 2" in text
        assert "declares gathering" in text

    def test_max_lines_truncates(self):
        sim, result = _traced_gathering(ring(3), [1, 2, 3], 3)
        text = narrate(sim, result, max_lines=4)
        assert len(text.splitlines()) <= 6  # head + ellipsis + tail


class TestHistogram:
    def test_counts_match_move_log(self):
        def program(ctx):
            yield from move(ctx, 0)
            yield from move(ctx, 0)
            yield from move(ctx, 0)
            return None

        g = single_edge()
        sim = Simulation(g, [AgentSpec(1, 0, program)], trace=True)
        sim.run()
        histogram = occupancy_histogram(g, sim)
        assert histogram == {0: 1, 1: 2}

    def test_gathering_covers_whole_graph(self):
        g = ring(4)
        sim, _result = _traced_gathering(g, [1, 2], 4)
        histogram = occupancy_histogram(g, sim)
        assert all(histogram[v] > 0 for v in g.nodes())
