"""Tests for the traditional-model baselines."""

from __future__ import annotations

import pytest

from repro.baselines import run_random_walk_gather, run_talking_gather
from repro.core import run_gather_known
from repro.graphs import family_for_size, path_graph, ring, single_edge


class TestTalkingBaseline:
    def test_single_edge(self):
        report = run_talking_gather(single_edge(), [1, 2], 2)
        assert report.leader == 1
        assert report.round > 0

    def test_three_agents_ring(self):
        report = run_talking_gather(ring(5), [5, 9, 12], 5)
        assert report.leader == 5

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_families(self, n):
        for name, g in family_for_size(n):
            report = run_talking_gather(
                g, [2, 7], n, start_nodes=[0, g.n - 1]
            )
            assert report.leader == 2, name

    def test_full_team(self):
        report = run_talking_gather(ring(4), [4, 3, 2, 1], 4)
        assert report.leader == 1

    def test_talking_is_faster_than_silent(self):
        """The whole point of E9: silence costs time."""
        silent = run_gather_known(ring(4), [1, 2], 4)
        talking = run_talking_gather(ring(4), [1, 2], 4)
        assert talking.round < silent.round

    def test_rejects_single_agent(self):
        with pytest.raises(ValueError):
            run_talking_gather(ring(3), [1], 3)


class TestRandomWalkBaseline:
    def test_single_edge(self):
        report = run_random_walk_gather(single_edge(), [1, 2], 2)
        assert report.leader == 1

    def test_ring(self):
        report = run_random_walk_gather(ring(5), [3, 8], 5)
        assert report.leader == 3

    def test_three_agents(self):
        report = run_random_walk_gather(ring(6), [5, 9, 12], 8)
        assert report.leader == 5

    def test_deterministic_given_seed(self):
        a = run_random_walk_gather(ring(5), [1, 2], 5, seed=3)
        b = run_random_walk_gather(ring(5), [1, 2], 5, seed=3)
        assert a.round == b.round

    def test_seed_changes_run(self):
        rounds = {
            run_random_walk_gather(ring(5), [1, 2], 5, seed=s).round
            for s in range(4)
        }
        assert len(rounds) > 1

    def test_path_graph(self):
        report = run_random_walk_gather(
            path_graph(4), [2, 5], 4, start_nodes=[0, 3]
        )
        assert report.leader == 2
