"""Failure-injection and robustness tests.

The algorithms assume the model's preconditions; these tests check
that the *library* behaves sanely when users violate them or when
adversarial companions misbehave: no crashes, no false positives.
"""

from __future__ import annotations

import pytest

from repro.explore.est import est, est_budget
from repro.explore.uxs import search_sequence
from repro.graphs import ring, single_edge
from repro.sim import AgentSpec, Simulation
from repro.sim.agent import move, wait


class TestESTUnderNoise:
    def _run_with_token(self, graph, n_hat, provider, token_program):
        box = {}
        budget = est_budget(n_hat, provider)

        def explorer(ctx):
            yield from wait(ctx, 1)
            result = yield from est(ctx, provider, n_hat, budget)
            box["result"] = result
            return None

        sim = Simulation(
            graph,
            [
                AgentSpec(1, 0, explorer, wake_round=0),
                AgentSpec(2, graph.step(0, 0), token_program, wake_round=0),
            ],
        )
        sim.run()
        return box["result"]

    def test_flickering_token_never_crashes(self, provider):
        """A token that wanders mid-exploration breaks the clean-
        exploration precondition; EST must return a result (of any
        verdict) rather than crash or hang."""

        def wandering_token(ctx):
            yield from move(ctx, 0)  # join the explorer's node
            for _ in range(30):
                yield from wait(ctx, 3)
                yield from move(ctx, 0)
            yield from wait(ctx, 10**6)
            return None

        result = self._run_with_token(
            ring(4), 4, provider, wandering_token
        )
        assert result.rounds <= est_budget(4, provider)

    def test_beacon_anywhere_anchors_the_map(self, provider):
        """A stationary beacon at *any* node (not only home) breaks the
        symmetry of the oriented ring and yields the exact size — the
        reversibility argument only needs one fixed reference point."""
        from repro.graphs import oriented_ring

        def remote_beacon(ctx):
            # Step one node further away and park there.
            yield from move(ctx, 0)
            yield from wait(ctx, 10**6)
            return None

        result = self._run_with_token(
            oriented_ring(4), 4, provider, remote_beacon
        )
        assert result.completed and result.size == 4

    def test_no_beacon_on_symmetric_ring_collapses(self, provider):
        """Without any token the oriented ring's nodes are perfectly
        indistinguishable: the learned map collapses to a single node,
        so EST+ with the true size hypothesis returns False rather
        than a false positive."""
        from repro.graphs import oriented_ring

        graph = oriented_ring(4)
        box = {}
        budget = est_budget(4, provider)

        def explorer(ctx):
            result = yield from est(ctx, provider, 4, budget)
            box["result"] = result
            return None

        sim = Simulation(graph, [AgentSpec(1, 0, explorer)])
        sim.run()
        result = box["result"]
        assert not (result.completed and result.size == 4)
        assert result.size == 1  # every signature collapses onto home


class TestSearchSequence:
    def test_finds_minimal_for_two_nodes(self):
        seq = search_sequence(2, max_length=2, attempts=10, seed=1)
        assert len(seq) == 1

    def test_raises_when_budget_too_small(self):
        from repro.explore.uxs import UniversalityError

        with pytest.raises(UniversalityError):
            search_sequence(3, max_length=1, attempts=3, seed=1)


class TestSimulatorGuards:
    def test_generator_returning_instantly(self):
        def program(ctx):
            return "done"
            yield  # pragma: no cover

        sim = Simulation(single_edge(), [AgentSpec(1, 0, program)])
        result = sim.run()
        assert result.outcomes[0].payload == "done"
        assert result.outcomes[0].finish_round == 0

    def test_non_advancing_program_detected(self):
        from repro.sim.ops import SimulationError
        from repro.sim.agent import wait_stable

        def spinner(ctx):
            while True:
                # wait_stable completes instantly on a quiet node: a
                # same-round loop the scheduler must detect and refuse.
                yield from wait_stable(ctx, 1)

        sim = Simulation(single_edge(), [AgentSpec(1, 0, spinner)])
        with pytest.raises(SimulationError, match="non-advancing"):
            sim.run()

    def test_bad_wait_duration_rejected(self):
        from repro.sim.ops import SimulationError

        def program(ctx):
            yield ("wait", 0, None)  # bypassing the helper's guard

        sim = Simulation(single_edge(), [AgentSpec(1, 0, program)])
        with pytest.raises(SimulationError):
            sim.run()

    def test_unknown_op_rejected(self):
        from repro.sim.ops import SimulationError

        def program(ctx):
            yield ("teleport", 3, None)

        sim = Simulation(single_edge(), [AgentSpec(1, 0, program)])
        with pytest.raises(SimulationError):
            sim.run()

    def test_float_port_rejected(self):
        from repro.sim.ops import SimulationError

        def program(ctx):
            yield ("move", 0.0, None)

        sim = Simulation(single_edge(), [AgentSpec(1, 0, program)])
        with pytest.raises(SimulationError, match="invalid port"):
            sim.run()
