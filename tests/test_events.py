"""The typed event stream: emission, processors, traces, CLI.

Pins the observability contract of this PR: what the scheduler and
runner emit (and in which order), that an unobserved run emits
nothing and stays byte-identical, that cohort members emit the same
per-simulation stream the scalar scheduler does (plus the
``CohortEject`` marker), and that the JSONL trace round-trips through
``python -m repro trace``.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.core import run_gather_known
from repro.events import (
    SCHEMA_VERSION,
    AgentMove,
    CohortEject,
    EventDispatcher,
    JsonlTraceProcessor,
    ListProcessor,
    RoundAdvance,
    SimulationEnd,
    SimulationStart,
    SweepProgress,
    TrialEnd,
    TrialStart,
    WalkSegment,
    WatchFired,
    from_payload,
    to_payload,
)
from repro.events import stream as event_stream
from repro.events.processors import ConsoleProgressProcessor
from repro.events.replay import extract_scenes, load_trace, round_trip
from repro.events.schema import validate_payload, validate_trace
from repro.graphs import ring
from repro.sim import AgentSpec, Simulation


def run_collected(fn, *args, **kwargs):
    """Run ``fn`` with a ListProcessor attached; return (result, events)."""
    collector = ListProcessor()
    with event_stream.attached(collector):
        result = fn(*args, **kwargs)
    return result, collector.events


class TestEmissionOrder:
    """Exact event order for a seeded ``gather_known`` ring trial."""

    def gather(self):
        return run_collected(
            run_gather_known, ring(6, seed=42), [5, 9, 12], 8
        )

    def test_stream_brackets_the_simulation(self):
        report, events = self.gather()
        assert isinstance(events[0], SimulationStart)
        assert isinstance(events[-1], SimulationEnd)
        assert sum(isinstance(e, SimulationStart) for e in events) == 1
        assert sum(isinstance(e, SimulationEnd) for e in events) == 1
        end = events[-1]
        assert end.final_round == report.round
        assert end.events == report.events
        assert end.total_moves == report.total_moves
        assert end.gathered is True

    def test_start_carries_topology_and_agents(self):
        _report, events = self.gather()
        start = events[0]
        assert start.n == 6
        assert len(start.edges) == 6  # a ring has n edges
        assert [a[0] for a in start.agents] == [5, 9, 12]

    def test_round_advance_is_a_commit_marker(self):
        # Every in-round event is emitted before the RoundAdvance that
        # commits its round, and committed rounds strictly increase.
        _report, events = self.gather()
        committed = [e.round for e in events if isinstance(e, RoundAdvance)]
        assert committed == sorted(set(committed))
        last = -1
        for event in events:
            if isinstance(event, RoundAdvance):
                last = event.round
            elif isinstance(event, (WalkSegment, AgentMove)):
                assert event.round > last
        assert committed  # the run advanced at least one round

    def test_walk_segment_precedes_its_watch(self):
        # A watch carried through a batched walk is observed at the
        # segment's final round: the WalkSegment event comes first,
        # then the WatchFired at ``round + length``.
        _report, events = self.gather()
        fired = [e for e in events if isinstance(e, WatchFired)]
        assert fired
        for watch in fired:
            for prior in events:
                if prior is watch:
                    break
                if (
                    isinstance(prior, WalkSegment)
                    and prior.round + prior.length == watch.round
                    and watch.agent in prior.walkers
                ):
                    assert watch.node == prior.routes[
                        prior.walkers.index(watch.agent)
                    ][-1]
                    break

    def test_stream_is_deterministic(self):
        _r1, events1 = self.gather()
        _r2, events2 = self.gather()
        assert [to_payload(e) for e in events1] == [
            to_payload(e) for e in events2
        ]


class TestZeroCostWhenUnobserved:
    def test_no_processor_emits_nothing(self):
        assert event_stream.current() is None
        sim_events: list = []

        class Spy:
            def on_event(self, event):  # pragma: no cover - must not run
                sim_events.append(event)

            def shutdown(self):
                pass

        report = run_gather_known(ring(6, seed=42), [5, 9, 12], 8)
        assert sim_events == []
        assert report.leader is not None

    def test_unobserved_simulation_has_no_dispatcher(self):
        graph = ring(4, seed=1)
        sim = Simulation(graph, [AgentSpec(1, 0, None), AgentSpec(2, 2, None)])
        assert sim._emit is None

    def test_results_identical_with_and_without_processor(self):
        plain = run_gather_known(ring(6, seed=42), [5, 9, 12], 8)
        observed, events = run_collected(
            run_gather_known, ring(6, seed=42), [5, 9, 12], 8
        )
        assert events
        assert plain.round == observed.round
        assert plain.node == observed.node
        assert plain.leader == observed.leader
        assert plain.events == observed.events
        assert plain.total_moves == observed.total_moves


class TestMoveLogParity:
    def test_events_expand_to_the_trace_move_log(self):
        # AgentMove rows plus per-edge expansion of WalkSegment routes
        # reproduce the trace-mode move_log exactly — the event stream
        # loses nothing to batching.
        from repro.core.runs import prepare_gather_known

        def traced_run():
            prepared = prepare_gather_known(ring(5, seed=7), [3, 8], 6)
            prepared.simulation.trace = True
            prepared.simulation.run()
            return prepared.simulation

        sim, events = run_collected(traced_run)
        expanded = []
        for event in events:
            if isinstance(event, AgentMove):
                expanded.append(
                    (event.round, event.agent, event.src, event.dst)
                )
            elif isinstance(event, WalkSegment):
                for w, agent in enumerate(event.walkers):
                    route = event.routes[w]
                    for j in range(event.length):
                        expanded.append(
                            (event.round + j, agent, route[j], route[j + 1])
                        )
        # Trace mode orders each round's expanded rows by agent index;
        # the event expansion interleaves per walker — sort both by
        # (round, agent) for a well-defined comparison.
        key = lambda row: (row[0], row[1])  # noqa: E731
        assert sorted(expanded, key=key) == sorted(sim.move_log, key=key)


class TestCohortParity:
    """Cohort members emit what the scalar scheduler emits."""

    def scenario_sims(self, graph, events=None):
        # A mover steps onto a watched waiter: fires a watch, ejects.
        from test_cohort import build_sim, watch_fire_scenario

        scenario = watch_fire_scenario(graph)
        return build_sim(graph, scenario, events=events)

    def test_eject_emits_marker_and_matches_scalar(self):
        pytest.importorskip("numpy")
        from repro.sim.cohort import run_cohort

        graph = ring(6)
        # Each simulation gets its own dispatcher, so per-simulation
        # streams stay separable even though the cohort interleaves.
        cohort_collectors = [ListProcessor() for _ in range(3)]
        sims = [
            self.scenario_sims(graph, events=EventDispatcher([c]))
            for c in cohort_collectors
        ]
        outcomes = run_cohort(graph, sims)
        assert all(o.ejected == "watch" for o in outcomes)

        scalar_collector = ListProcessor()
        scalar = self.scenario_sims(
            graph, events=EventDispatcher([scalar_collector])
        )
        scalar.run()
        scalar.result()
        scalar_payloads = [
            to_payload(e) for e in scalar_collector.events
        ]
        for i, collector in enumerate(cohort_collectors):
            ejects = collector.of_type(CohortEject)
            assert [e.reason for e in ejects] == ["watch"]
            assert ejects[0].trial == i
            payloads = [
                to_payload(e)
                for e in collector.events
                if not isinstance(e, CohortEject)
            ]
            assert payloads == scalar_payloads


class TestDispatcher:
    def test_attached_composes_with_enclosing_scope(self):
        outer, inner = ListProcessor(), ListProcessor()
        with event_stream.attached(outer):
            with event_stream.attached(inner):
                event_stream.current().emit(RoundAdvance(round=1, resumes=0))
            # Only the newly attached processor is shut down on exit.
            assert inner.shutdown_called
            assert not outer.shutdown_called
            event_stream.current().emit(RoundAdvance(round=2, resumes=0))
        assert outer.shutdown_called
        assert event_stream.current() is None
        assert len(outer.events) == 2
        assert len(inner.events) == 1

    def test_attached_without_processors_is_a_noop(self):
        with event_stream.attached():
            assert event_stream.current() is None
        with event_stream.attached(None):
            assert event_stream.current() is None

    def test_dispatcher_preserves_processor_order(self):
        order = []

        class Tagger:
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                order.append(self.tag)

            def shutdown(self):
                pass

        dispatcher = EventDispatcher([Tagger("a"), Tagger("b")])
        dispatcher.emit(RoundAdvance(round=0, resumes=0))
        assert order == ["a", "b"]


class TestTraceFile:
    def emit_sample(self, path):
        trace = JsonlTraceProcessor(path, source="test")
        with event_stream.attached(trace):
            run_gather_known(ring(5, seed=3), [1, 2], 5)
            event_stream.current().emit(
                TrialStart(key="k", algorithm="gather_known",
                           family="ring", n=5, seed=0)
            )
            event_stream.current().emit(
                TrialEnd(key="k", ok=True, error=None, rounds=1,
                         moves=2, events=3)
            )
        return trace

    def test_trace_validates_and_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = self.emit_sample(path)
        report = validate_trace(path)
        assert report.ok, report.errors
        assert report.events == trace.lines
        header, payloads = load_trace(path)
        assert header["version"] == SCHEMA_VERSION
        assert round_trip(payloads) == len(payloads)

    def test_payload_codec_restores_tuples(self):
        event = WalkSegment(
            round=3, length=2, walkers=(0,), routes=((1, 2, 3),),
            observers=(),
        )
        payload = json.loads(json.dumps(to_payload(event)))
        assert from_payload(payload) == event

    def test_validate_payload_rejects_bad_shapes(self):
        good = to_payload(RoundAdvance(round=1, resumes=2))
        assert validate_payload(good) == []
        assert validate_payload({"type": "NoSuchEvent"})
        assert validate_payload({"type": "RoundAdvance", "round": 1})
        bad = dict(good)
        bad["round"] = "not-an-int"
        assert validate_payload(bad)

    def test_corrupt_trace_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        self.emit_sample(path)
        lines = path.read_text().splitlines()
        lines[2] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        report = validate_trace(path)
        assert not report.ok
        assert any("line 3" in err for err in report.errors)


class TestTraceCLI:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(["trace", *argv])

    def make_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = JsonlTraceProcessor(path, source="test")
        with event_stream.attached(trace):
            run_gather_known(ring(4, seed=2), [1, 2], 4)
        return path

    def test_validate_replay_summary_schema(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert self.run_cli("validate", str(path)) == 0
        assert "ok" in capsys.readouterr().out
        assert self.run_cli("replay", str(path)) == 0
        assert "round-trip cleanly" in capsys.readouterr().out
        assert self.run_cli("summary", str(path), "--json") == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["simulations"] == 1
        assert self.run_cli("schema") == 0
        schema = json.loads(capsys.readouterr().out)
        assert schema["version"] == SCHEMA_VERSION
        assert "WalkSegment" in schema["events"]

    def test_validate_fails_on_corrupt_trace(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type":"Bogus"}\n')
        assert self.run_cli("validate", str(path)) == 1
        assert "Bogus" in capsys.readouterr().out

    def test_replay_renders_html(self, tmp_path):
        path = self.make_trace(tmp_path)
        out = tmp_path / "replay.html"
        assert self.run_cli("replay", str(path), "--html", str(out)) == 0
        html = out.read_text()
        assert "__SCENES__" not in html
        assert "SimulationStart" not in html  # scenes are data, not types


class TestConsoleProcessor:
    def test_progress_lines_are_line_atomic(self):
        stream = io.StringIO()
        console = ConsoleProgressProcessor(stream)
        workers = [
            threading.Thread(
                target=lambda tag=tag: [
                    console.note(f"{tag} {i}") for i in range(50)
                ]
            )
            for tag in ("alpha", "beta", "gamma")
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 150
        assert all(
            line.split()[0] in ("alpha", "beta", "gamma") for line in lines
        )

    def test_renders_sweep_progress_with_rate(self):
        stream = io.StringIO()
        console = ConsoleProgressProcessor(stream)
        console.on_event(SweepProgress(
            done=1, total=2, key="a", ok=True, cached=True,
        ))
        console.on_event(SweepProgress(
            done=2, total=2, key="b", ok=False, cached=False,
        ))
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[1/2] a  cached"
        assert lines[1].startswith("[2/2] b  FAILED")

    def test_quiet_keeps_the_meter_ticking(self):
        stream = io.StringIO()
        console = ConsoleProgressProcessor(stream, quiet=True)
        console.on_event(SweepProgress(
            done=1, total=1, key="a", ok=True, cached=False,
        ))
        assert stream.getvalue() == ""
        assert console.meter.simulated == 1
        assert "trials/s" in console.summary()


class TestRunnerByteIdentity:
    def test_records_identical_with_processors_attached(self, tmp_path):
        from repro.runner import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            algorithm="gather_known", family="ring", sizes=(4, 5),
            label_sets=((1, 2),), seeds=(0,),
        )
        plain = run_experiment(spec).canonical_json()
        observed, events = run_collected(run_experiment, spec)
        assert observed.canonical_json() == plain
        kinds = {type(e).__name__ for e in events}
        assert {"SweepStart", "TrialStart", "SimulationStart",
                "TrialEnd", "SweepEnd"} <= kinds


class TestSceneExtraction:
    """``extract_scenes`` on traces with cohort and watch events."""

    def gather_payloads(self):
        _report, events = run_collected(
            run_gather_known, ring(6, seed=42), [5, 9, 12], 8
        )
        return events, [to_payload(e) for e in events]

    def test_midsegment_watch_lands_on_expanded_frame(self):
        # A watch firing *inside* a batched walk targets a round that
        # has no AgentMove row of its own — its frame exists only
        # because WalkSegment routes expand to per-edge moves.  The
        # watch must attach to that expanded frame.
        payloads = [
            to_payload(
                SimulationStart(
                    n=4,
                    edges=((0, 0, 1, 1), (1, 0, 2, 1), (2, 0, 3, 1)),
                    agents=((1, 0, None), (2, 3, None)),
                )
            ),
            to_payload(
                WalkSegment(
                    round=5, length=3, walkers=(0,),
                    routes=((0, 1, 2, 3),), observers=(),
                )
            ),
            to_payload(WatchFired(round=6, agent=1, node=2, count=2)),
            to_payload(
                SimulationEnd(
                    final_round=8, events=4, total_moves=3,
                    gathered=True,
                )
            ),
        ]
        (scene,) = extract_scenes(payloads)
        rounds = [f["round"] for f in scene["frames"]]
        assert rounds == ["5", "6", "7"]
        mid = scene["frames"][1]
        assert mid["moves"] == [[0, 1, 2]]
        assert mid["watches"] == [[1, 2]]
        assert scene["frames"][0]["watches"] == []
        assert scene["final_round"] == "8"

    def test_watch_on_unknown_round_is_dropped(self):
        # A watch whose round has no frame (nothing moved then) cannot
        # attach anywhere; it is silently skipped, not crashed on.
        # Seeded gather runs produce exactly this: the watch fires on
        # the arrival round *after* a segment's last departure row.
        events, payloads = self.gather_payloads()
        fired = [e for e in events if isinstance(e, WatchFired)]
        assert fired
        (scene,) = extract_scenes(payloads, max_frames=10**9)
        assert not scene["truncated"]
        rounds = {f["round"] for f in scene["frames"]}
        stray = [e for e in fired if str(e.round) not in rounds]
        assert stray  # this trace's watch fires on a still round
        assert sum(len(f["watches"]) for f in scene["frames"]) == len(
            fired
        ) - len(stray)

    def test_cohort_eject_trace_builds_scalar_identical_scene(self):
        # CohortEject is a recognized sim event but expands to no
        # moves: a cohort member's trace renders the same scene as the
        # scalar run of the same scenario.
        pytest.importorskip("numpy")
        from test_cohort import build_sim, watch_fire_scenario

        from repro.sim.cohort import run_cohort

        graph = ring(6)
        collectors = [ListProcessor() for _ in range(3)]
        sims = [
            build_sim(
                graph, watch_fire_scenario(graph),
                events=EventDispatcher([c]),
            )
            for c in collectors
        ]
        outcomes = run_cohort(graph, sims)
        assert all(o.ejected == "watch" for o in outcomes)

        scalar_collector = ListProcessor()
        scalar = build_sim(
            graph, watch_fire_scenario(graph),
            events=EventDispatcher([scalar_collector]),
        )
        scalar.run()
        scalar.result()
        (scalar_scene,) = extract_scenes(
            [to_payload(e) for e in scalar_collector.events]
        )

        for collector in collectors:
            payloads = [to_payload(e) for e in collector.events]
            assert any(p["type"] == "CohortEject" for p in payloads)
            (scene,) = extract_scenes(payloads)
            assert scene == scalar_scene
            assert scene["frames"]  # the scenario does move agents
