"""Tests for the EXPLO procedure (effective + backtrack parts)."""

from __future__ import annotations

import pytest

from repro.explore.explo import explo
from repro.graphs import family_for_size, ring, single_edge
from repro.sim import AgentSpec, Simulation, WatchTriggered
from repro.sim.agent import move, wait


def run_program(graph, program, start=0, extra_specs=()):
    specs = [AgentSpec(1, start, program)] + list(extra_specs)
    sim = Simulation(graph, specs, trace=True)
    return sim, sim.run()


class TestDuration:
    @pytest.mark.parametrize("n_bound", [2, 3, 4, 5])
    def test_lasts_exactly_t_explo(self, provider, n_bound):
        duration = provider.explo_duration(n_bound)

        def program(ctx):
            yield from explo(ctx, provider, n_bound)
            return ctx.obs.round

        for _name, g in family_for_size(n_bound):
            _sim, result = run_program(g, program)
            assert result.outcomes[0].payload == duration

    def test_limit_truncates(self, provider):
        def program(ctx):
            yield from explo(ctx, provider, 4, limit=5)
            return ctx.obs.round

        _sim, result = run_program(ring(4), program)
        assert result.outcomes[0].payload == 5

    def test_limit_zero(self, provider):
        def program(ctx):
            yield from explo(ctx, provider, 4, limit=0)
            yield from wait(ctx, 1)
            return ctx.obs.round

        _sim, result = run_program(ring(4), program)
        assert result.outcomes[0].payload == 1


class TestCoverageAndReturn:
    @pytest.mark.parametrize("n_bound", [2, 3, 4, 5])
    def test_visits_all_and_returns(self, provider, n_bound):
        """The effective part visits every node; the backtrack part
        brings the agent back to its start."""

        def program(ctx):
            yield from explo(ctx, provider, n_bound)
            return None

        for _name, g in family_for_size(n_bound):
            for start in g.nodes():
                sim, result = run_program(g, program, start=start)
                assert result.outcomes[0].finish_node == start
                visited = {start} | {dst for _, _, _, dst in sim.move_log}
                assert visited == set(g.nodes())

    def test_effective_part_covers_by_halftime(self, provider):
        g = ring(5)
        half = provider.length(5)

        def program(ctx):
            yield from explo(ctx, provider, 5)
            return None

        sim, _result = run_program(g, program, start=2)
        early = {2} | {
            dst for rnd, _, _, dst in sim.move_log if rnd < half
        }
        assert early == set(g.nodes())

    def test_partial_explo_trajectory_is_prefix(self, provider):
        """Truncation cuts the instruction stream without altering it."""

        def full(ctx):
            yield from explo(ctx, provider, 4)
            return None

        def cut(ctx):
            yield from explo(ctx, provider, 4, limit=7)
            return None

        g = ring(4)
        sim_full, _ = run_program(g, full)
        sim_cut, _ = run_program(g, cut)
        assert sim_cut.move_log == sim_full.move_log[:7]


class TestInterruption:
    def test_watch_interrupts_mid_explo(self, provider):
        def explorer(ctx):
            yield from wait(ctx, 1)
            try:
                yield from explo(ctx, provider, 3, watch=("gt", 1))
            except WatchTriggered as trig:
                return ("met", trig.observation.round)
            return ("alone", ctx.obs.round)

        def sitter(ctx):
            yield from wait(ctx, 100)
            return None

        g = single_edge()
        sim = Simulation(
            g,
            [AgentSpec(1, 0, explorer), AgentSpec(2, 1, sitter)],
        )
        result = sim.run()
        status, round_ = result.outcomes[0].payload
        assert status == "met"
        assert round_ == 2  # first move of the explo lands on the sitter

    def test_min_curcard_statistics(self, provider):
        """min CurCard during EXPLO reflects the loneliest round."""

        def explorer(ctx):
            yield from wait(ctx, 1)
            stats = yield from explo(ctx, provider, 2)
            return stats.min_curcard

        def sitter(ctx):
            yield from wait(ctx, 100)
            return None

        g = single_edge()
        sim = Simulation(
            g, [AgentSpec(1, 0, explorer), AgentSpec(2, 1, sitter)]
        )
        result = sim.run()
        # The explorer starts alone (card 1), visits the sitter (2),
        # returns alone (1): minimum is 1.
        assert result.outcomes[0].payload == 1

    def test_synchronized_explos_all_return_home(self, provider):
        """Three agents running the same EXPLO simultaneously from
        different nodes each come back to their own start node."""

        def program(ctx):
            yield from explo(ctx, provider, 3)
            return None

        g = ring(3)
        sim = Simulation(
            g,
            [
                AgentSpec(1, 0, program),
                AgentSpec(2, 1, program),
                AgentSpec(3, 2, program),
            ],
        )
        result = sim.run()
        assert [o.finish_node for o in result.outcomes] == [0, 1, 2]
