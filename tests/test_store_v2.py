"""Tests for the sharded ResultStore (v2) and the query API.

Covers the PR's storage guarantees:

* shard write/load round-trip, including multi-shard grids;
* ``compact()`` idempotence (byte-for-byte no-op on a clean store)
  and healing (orphan/corrupt/tmp files removed);
* corrupt-shard recovery — the engine re-runs exactly the lost trials;
* legacy v1 single-file stores are read and migrated to shards;
* the query layer filters and aggregates cached records without any
  re-simulation.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    ExperimentSpec,
    ResultStore,
    run_experiment,
)
from repro.runner.query import (
    QueryError,
    aggregate,
    filter_records,
    parse_where,
    percentile,
    record_field,
    require_known_fields,
)


def spec_for(**overrides) -> ExperimentSpec:
    base = dict(
        algorithm="gather_known",
        family="ring",
        sizes=(4, 5),
        label_sets=((1, 2),),
        seeds=(0, 1),
        graph_seed_mode="fixed",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def tree_bytes(root) -> dict:
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestShardRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        result = run_experiment(spec, workers=1, store=store)
        assert store.load(spec) == {
            r["key"]: r for r in result.records
        }

    def test_multi_shard_layout(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path, shard_size=1)
        run_experiment(spec, workers=1, store=store)
        directory = store.dir_for(spec)
        shards = sorted(directory.glob("shard-*.json"))
        assert len(shards) == 4  # one record per shard
        index = json.loads((directory / "index.json").read_text())
        assert index["total"] == 4
        assert index["shards"] == {s.name: 1 for s in shards}
        sidecar = json.loads((directory / "spec.json").read_text())
        assert sidecar["spec"] == spec.to_dict()
        assert sidecar["spec_hash"] == spec.spec_hash()

    def test_shard_size_does_not_change_records(self, tmp_path):
        spec = spec_for()
        small = ResultStore(tmp_path / "small", shard_size=1)
        big = ResultStore(tmp_path / "big", shard_size=100)
        run_experiment(spec, workers=1, store=small)
        run_experiment(spec, workers=1, store=big)
        assert small.load(spec) == big.load(spec)

    def test_incremental_save_extends_shards(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path, shard_size=2)
        run_experiment(spec, workers=1, store=store)
        records = store.load(spec)
        dropped = sorted(records)[-1]
        del records[dropped]
        store.save(spec, records)
        rerun = run_experiment(spec, workers=1, store=store)
        assert rerun.executed == 1 and rerun.cached == 3
        assert len(store.load(spec)) == 4


class TestCompact:
    def test_compact_is_idempotent(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        run_experiment(spec, workers=1, store=store)
        store.compact(spec)
        before = tree_bytes(tmp_path)
        stats = store.compact(spec)
        assert tree_bytes(tmp_path) == before
        assert stats["records"] == 4

    def test_compact_without_spec_uses_sidecars(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(spec_for(), workers=1, store=store)
        run_experiment(spec_for(sizes=(6,)), workers=1, store=store)
        stats = store.compact()
        assert stats["specs"] == 2
        assert stats["records"] == 6

    def test_compact_of_unswept_spec_creates_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        stats = store.compact(spec_for())
        assert stats == {"specs": 0, "records": 0, "removed": 0}
        assert list(tmp_path.iterdir()) == []

    def test_compact_survives_version_bump(self, tmp_path, monkeypatch):
        # A package version change alters what the spec would hash
        # to; compaction (with or without an explicit spec) must
        # still rewrite the store it found on disk instead of
        # creating empty orphan directories.
        import repro

        spec = spec_for()
        store = ResultStore(tmp_path)
        run_experiment(spec, workers=1, store=store)
        original_dir = store.dir_for(spec)
        monkeypatch.setattr(repro, "__version__", "0.0.0-bumped")
        for stats in (store.compact(), store.compact(spec_for())):
            assert stats == {"specs": 1, "records": 4, "removed": 0}
            assert original_dir.is_dir()
            dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
            assert dirs == [original_dir]

    def test_compact_removes_stale_files(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        run_experiment(spec, workers=1, store=store)
        directory = store.dir_for(spec)
        (directory / "shard-9999.json").write_text("{broken")
        (directory / "shard-0000.tmp").write_text("partial write")
        stats = store.compact(spec)
        assert stats["removed"] == 2
        assert not (directory / "shard-9999.json").exists()
        assert not list(directory.glob("*.tmp"))
        assert len(store.load(spec)) == 4


class TestCorruptShardRecovery:
    def test_lost_shard_reruns_only_its_trials(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path, shard_size=2)
        first = run_experiment(spec, workers=1, store=store)
        assert first.executed == 4
        shards = sorted(store.dir_for(spec).glob("shard-*.json"))
        shards[0].write_text("\x00 corrupted \x00")
        rerun = run_experiment(spec, workers=1, store=store)
        assert rerun.executed == 2 and rerun.cached == 2
        assert rerun.canonical_json() == first.canonical_json()
        # The corrupt shard was healed by the post-run save.
        assert len(store.load(spec)) == 4

    def test_wrong_version_shard_is_ignored(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        run_experiment(spec, workers=1, store=store)
        shard = next(store.dir_for(spec).glob("shard-*.json"))
        payload = json.loads(shard.read_text())
        payload["version"] = 99
        shard.write_text(json.dumps(payload))
        assert store.load(spec) == {}


class TestLegacyMigration:
    def make_legacy(self, store, spec) -> dict:
        records = {
            r["key"]: r
            for r in run_experiment(spec, workers=1).records
        }
        store.legacy_path_for(spec).parent.mkdir(
            parents=True, exist_ok=True
        )
        store.legacy_path_for(spec).write_text(json.dumps({
            "version": 1,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "trials": records,
        }))
        return records

    def test_legacy_file_is_read(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        records = self.make_legacy(store, spec)
        assert store.load(spec) == records

    def test_compact_counts_the_migrated_legacy_file(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        self.make_legacy(store, spec)
        stats = store.compact()
        assert stats["records"] == 4
        assert stats["removed"] == 1  # the unlinked v1 single file
        assert not store.legacy_path_for(spec).exists()
        assert store.dir_for(spec).is_dir()

    def test_engine_run_migrates_legacy_to_shards(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        self.make_legacy(store, spec)
        result = run_experiment(spec, workers=1, store=store)
        assert result.executed == 0 and result.cached == 4
        assert not store.legacy_path_for(spec).exists()
        assert store.dir_for(spec).is_dir()
        assert len(store.load(spec)) == 4

    def test_pre_scenario_records_are_backfilled(self, tmp_path):
        # PR1-era records lack the wake/placement/adversary fields;
        # loading must default them so the sweep table and query
        # filters treat old and new records uniformly.
        spec = spec_for()
        store = ResultStore(tmp_path)
        records = self.make_legacy(store, spec)
        stripped = {}
        for key, rec in records.items():
            rec = dict(rec)
            del rec["wake_schedule"]
            del rec["adversary"]
            stripped[key] = rec
        store.legacy_path_for(spec).write_text(json.dumps({
            "version": 1,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "trials": stripped,
        }))
        loaded = store.load(spec)
        assert all(
            r["wake_schedule"] == "simultaneous"
            and r["adversary"] == "fixed"
            for r in loaded.values()
        )
        # End to end: the cached sweep renders and queries cleanly.
        from repro.__main__ import main

        assert main([
            "sweep", "--sizes", "4,5", "--seeds", "0,1",
            "--fixed-graph-seed", "--quiet",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "wake_schedule=simultaneous", "--group-by", "n",
        ]) == 0
        # Migration persisted the backfilled fields into the shards.
        shard_records = store.load(spec)
        assert store.dir_for(spec).is_dir()
        assert all(
            "wake_schedule" in r for r in shard_records.values()
        )

    def test_legacy_store_is_listed(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        self.make_legacy(store, spec)
        entries = store.list_specs()
        assert len(entries) == 1
        assert entries[0]["spec_hash"] == spec.spec_hash()
        assert entries[0]["trials"] == 4

    def test_interrupted_migration_lists_spec_once(self, tmp_path):
        # A crash between writing the v2 directory and unlinking the
        # legacy file leaves both; the directory must win everywhere
        # or queries double-count every record.
        spec = spec_for()
        store = ResultStore(tmp_path)
        records = self.make_legacy(store, spec)
        store.save(spec, records)
        # Recreate the leftover legacy file next to the v2 dir.
        self.make_legacy(store, spec)
        assert store.legacy_path_for(spec).exists()
        assert store.dir_for(spec).is_dir()
        entries = store.list_specs()
        assert len(entries) == 1
        assert len(list(store.iter_records())) == 4
        assert len(list(store.iter_records(spec.spec_hash()))) == 4


class TestEnumeration:
    def test_list_specs_and_iter_records(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(spec_for(), workers=1, store=store)
        run_experiment(spec_for(sizes=(6,)), workers=1, store=store)
        entries = store.list_specs()
        assert len(entries) == 2
        assert sorted(e["trials"] for e in entries) == [2, 4]
        assert len(list(store.iter_records())) == 6

    def test_iter_records_spec_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = spec_for()
        run_experiment(spec, workers=1, store=store)
        prefix = spec.spec_hash()[:6]
        assert len(list(store.iter_records(prefix))) == 4
        # A typo'd hash is an error, not a silently empty study.
        with pytest.raises(ValueError, match="no cached spec"):
            list(store.iter_records("no-such-hash"))

    def test_ambiguous_spec_prefix_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(spec_for(), workers=1, store=store)
        run_experiment(spec_for(sizes=(6,)), workers=1, store=store)
        # The empty prefix matches both cached specs.
        with pytest.raises(ValueError, match="ambiguous"):
            list(store.iter_records(""))


class TestQueryLayer:
    def records(self, tmp_path) -> list[dict]:
        store = ResultStore(tmp_path)
        spec = spec_for(
            wake_schedules=("simultaneous", "staggered:2"),
            placements=("default", "spread"),
        )
        run_experiment(spec, workers=1, store=store)
        return list(store.iter_records())

    def test_filter_by_axis(self, tmp_path):
        records = self.records(tmp_path)
        assert len(records) == 16
        matched = filter_records(
            records,
            {"n": "4", "wake_schedule": "staggered:2"},
        )
        assert len(matched) == 4
        assert all(r["n"] == 4 for r in matched)

    def test_filter_by_ok(self, tmp_path):
        records = self.records(tmp_path)
        assert len(filter_records(records, {"ok": "true"})) == 16
        assert filter_records(records, {"ok": "false"}) == []

    def test_record_field_falls_through_to_metrics(self, tmp_path):
        record = self.records(tmp_path)[0]
        assert record_field(record, "rounds") == (
            record["metrics"]["rounds"]
        )
        assert record_field(record, "labels") == "1-2"
        assert record_field(record, "no_such_field") is None

    def test_record_field_dotted_path_descends(self):
        record = {
            "key": "k", "ok": True,
            "metrics": {"frontier": {"depth": 3, "meta": {"tag": "x"}}},
        }
        assert record_field(record, "frontier.depth") == 3
        assert record_field(record, "frontier.meta.tag") == "x"

    def test_record_field_dotted_missing_key_is_query_error(self):
        record = {
            "key": "k", "ok": True, "metrics": {"frontier": {"depth": 3}},
        }
        with pytest.raises(QueryError) as err:
            record_field(record, "frontier.width")
        # The error names the full path and the offending record.
        assert "frontier.width" in str(err.value)
        assert "record" in str(err.value)

    def test_record_field_dotted_non_dict_is_query_error(self):
        # A scalar where a dict was expected (e.g. a sidecar written
        # by an older engine) must not surface as a bare TypeError.
        record = {"key": "k", "ok": True, "metrics": {"frontier": 7}}
        with pytest.raises(QueryError, match="frontier.depth"):
            record_field(record, "frontier.depth")

    def test_dotted_fields_validate_by_head(self, tmp_path):
        records = self.records(tmp_path)
        # A dotted path is validated by its head field only; nested
        # misses are reported per record by record_field instead.
        with pytest.raises(QueryError, match="unknown field"):
            require_known_fields(records, ["no_such.thing"])
        require_known_fields(records, ["rounds"])

    def test_aggregate_group_by(self, tmp_path):
        rows = aggregate(
            self.records(tmp_path),
            group_by=("wake_schedule",),
            metrics=("rounds",),
            stats=("count", "mean", "max"),
        )
        assert [r["group"]["wake_schedule"] for r in rows] == [
            "simultaneous", "staggered:2",
        ]
        for row in rows:
            assert row["count"] == 8
            assert row["rounds"]["max"] >= row["rounds"]["mean"]

    def test_group_values_keep_their_types(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(
            spec_for(sizes=(4, 8, 10)), workers=1, store=store
        )
        rows = aggregate(
            list(store.iter_records()),
            group_by=("n",),
            metrics=("rounds",),
            stats=("count",),
        )
        # Numeric group keys stay ints and sort numerically, not
        # lexicographically (which would give 10, 4, 8).
        assert [r["group"]["n"] for r in rows] == [4, 8, 10]

    def test_format_value_is_big_int_safe(self):
        from repro.runner.query import format_value

        assert format_value(None) == "-"
        assert format_value(29762) == "29762"
        assert format_value(12.5) == "12.50"
        assert format_value("spread") == "spread"
        # Unknown-bound clocks exceed the int-to-str digit limit;
        # rendering must stay compact and not raise.
        assert format_value(10 ** 400) == "1.000e400"
        assert "e" in format_value(1e300)

    def test_table_groups_tolerate_partially_absent_fields(
        self, tmp_path, capsys
    ):
        # 'moves' exists on gather records but not gossip records; a
        # --group-by over the mixed cache must render, not crash.
        from repro.__main__ import main

        store = ResultStore(tmp_path)
        run_experiment(spec_for(), workers=1, store=store)
        run_experiment(
            spec_for(
                algorithm="gossip_known", family="edge", sizes=(2,),
                message_sets=(("101", "01"),),
            ),
            workers=1,
            store=store,
        )
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--group-by", "moves",
        ]) == 0
        out = capsys.readouterr().out
        assert "groups:" in out

    def test_mean_survives_astronomical_rounds(self):
        # gather_unknown records carry exact integers with hundreds
        # of digits; mean must not crash on float overflow.
        rows = aggregate(
            [
                {"ok": True, "metrics": {"rounds": 10 ** 400}},
                {"ok": True, "metrics": {"rounds": 10 ** 400 + 2}},
            ],
            metrics=("rounds",),
            stats=("mean", "max"),
        )
        assert rows[0]["rounds"]["mean"] == 10 ** 400 + 1
        assert rows[0]["rounds"]["max"] == 10 ** 400 + 2

    def test_percentiles_nearest_rank(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 50) == 20
        assert percentile(values, 95) == 40
        assert percentile([7], 95) == 7
        assert percentile([], 50) is None

    def test_parse_where_rejects_garbage(self):
        assert parse_where(["a=1", "b=x"]) == {"a": "1", "b": "x"}
        with pytest.raises(QueryError):
            parse_where(["no-equals-sign"])

    def test_parse_where_rejects_conflicting_clauses(self):
        # Clauses are conjunctive; keeping only the last n= would
        # silently answer a different question.
        with pytest.raises(QueryError, match="conflicting"):
            parse_where(["n=4", "n=5"])
        assert parse_where(["n=4", "n=4"]) == {"n": "4"}

    def test_unknown_stat_raises(self, tmp_path):
        with pytest.raises(QueryError, match="unknown stat"):
            aggregate(self.records(tmp_path), stats=("median",))

    def test_row_key_names_rejected_as_metrics(self, tmp_path):
        # metrics=("count",) would clobber the per-group row count.
        with pytest.raises(QueryError, match="row key"):
            aggregate(self.records(tmp_path), metrics=("count",))

    def test_typoed_field_rejected_by_cli(self, tmp_path, capsys):
        # 'wake' instead of 'wake_schedule' must error, not silently
        # report that no such trials are cached.
        from repro.__main__ import main
        from repro.runner.query import require_known_fields

        records = self.records(tmp_path)
        with pytest.raises(QueryError, match="unknown field"):
            require_known_fields(records, ["wake"])
        require_known_fields(records, ["wake_schedule", "rounds"])
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "wake=staggered:2",
        ]) == 2
        assert "unknown field" in capsys.readouterr().out
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--metrics", "ronuds",
        ]) == 2


class TestQueryCLI:
    def sweep(self, tmp_path) -> None:
        from repro.__main__ import main

        assert main([
            "sweep", "--sizes", "4,5", "--seeds", "0,1",
            "--wake", "simultaneous,staggered:2", "--quiet",
            "--cache-dir", str(tmp_path),
        ]) == 0

    def test_query_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "wake_schedule=staggered:2",
            "--group-by", "n", "--metrics", "rounds",
            "--stats", "mean,p95,max",
        ]) == 0
        out = capsys.readouterr().out
        assert "matched: 4" in out
        assert "rounds.p95" in out

    def test_query_list(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main(["query", "--cache-dir", str(tmp_path),
                     "--list"]) == 0
        out = capsys.readouterr().out
        assert "gather_known" in out

    def test_query_list_honors_spec_prefix(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        spec_hash = ResultStore(tmp_path).list_specs()[0]["spec_hash"]
        assert main(["query", "--cache-dir", str(tmp_path), "--list",
                     "--spec", spec_hash[:6]]) == 0
        assert spec_hash in capsys.readouterr().out
        assert main(["query", "--cache-dir", str(tmp_path), "--list",
                     "--spec", "zzzz"]) == 2
        assert "error" in capsys.readouterr().out

    def test_query_list_rejects_filter_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main(["query", "--cache-dir", str(tmp_path), "--list",
                     "--where", "n=4"]) == 2
        assert "only composes with" in capsys.readouterr().out
        assert main(["query", "--cache-dir", str(tmp_path), "--list",
                     "--stats", "p95"]) == 2
        assert "only composes with" in capsys.readouterr().out

    def test_query_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        capsys.readouterr()  # drain the sweep's own output
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--group-by", "wake_schedule", "--json",
        ]) == 0
        captured = capsys.readouterr()
        # stdout is pure JSON (pipeable); the summary goes to stderr.
        rows = json.loads(captured.out)
        assert len(rows) == 2
        assert "matched:" in captured.err

    def test_query_missing_store_errors(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["query", "--cache-dir",
                     str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().out

    def test_query_json_errors_keep_stdout_pure(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["query", "--cache-dir", str(tmp_path / "nope"),
                     "--json"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error" in captured.err

    def test_compact_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main(["compact", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 spec(s)" in out

    def test_compact_rejects_bad_shard_size(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main(["compact", "--cache-dir", str(tmp_path),
                     "--shard-size", "0"]) == 2
        assert "error" in capsys.readouterr().out


class TestStoreMerge:
    """``ResultStore.merge_from`` — the multi-host union operation."""

    def run_into(self, path, **overrides) -> ResultStore:
        store = ResultStore(path)
        run_experiment(spec_for(**overrides), workers=1, store=store)
        return store

    def split_store(self, tmp_path):
        """One spec's records split across two disjoint worker stores."""
        spec = spec_for()
        records = {
            r["key"]: r for r in run_experiment(spec, workers=1).records
        }
        keys = sorted(records)
        half = len(keys) // 2
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        store_a.save(spec, {k: records[k] for k in keys[:half]})
        store_b.save(spec, {k: records[k] for k in keys[half:]})
        return spec, records, store_a, store_b

    def test_disjoint_shards_union(self, tmp_path):
        spec, records, store_a, store_b = self.split_store(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        stats = merged.merge_from([store_a, store_b])
        assert stats == {
            "specs": 1, "records": 4, "duplicates": 0, "skipped": 0,
        }
        assert merged.load(spec) == records

    def test_merged_store_is_byte_canonical(self, tmp_path):
        spec, records, store_a, store_b = self.split_store(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        merged.merge_from([store_a, store_b])
        reference = ResultStore(tmp_path / "reference")
        reference.save(spec, records)
        assert tree_bytes(tmp_path / "merged") == tree_bytes(
            tmp_path / "reference"
        )

    def test_identical_duplicates_stay_silent(self, tmp_path, recwarn):
        # Two workers that both covered a chunk hold identical records
        # for it: the normal overlap case must not spam warnings.
        import warnings as warnings_mod

        store_a = self.run_into(tmp_path / "a")
        store_b = self.run_into(tmp_path / "b")
        merged = ResultStore(tmp_path / "merged")
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")  # any warning fails
            stats = merged.merge_from([store_a, store_b])
        assert stats["duplicates"] == 0
        assert stats["records"] == 4

    def test_conflicting_duplicates_warn_last_wins(self, tmp_path):
        from repro.runner import MergeWarning

        spec = spec_for()
        store_a = self.run_into(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        records = dict(store_a.load(spec))
        doctored_key = sorted(records)[0]
        doctored = json.loads(json.dumps(records[doctored_key]))
        doctored["metrics"]["rounds"] = -1
        store_b.save(spec, {**records, doctored_key: doctored})
        merged = ResultStore(tmp_path / "merged")
        with pytest.warns(MergeWarning, match="duplicate"):
            stats = merged.merge_from([store_a, store_b])
        assert stats["duplicates"] == 1
        # Last source wins: the doctored record survives.
        assert merged.load(spec)[doctored_key]["metrics"]["rounds"] == -1

    def test_corrupt_shard_in_one_source(self, tmp_path):
        spec, records, store_a, store_b = self.split_store(tmp_path)
        # Corrupt one of store_b's shards: only its records go missing,
        # and nothing crashes (matching load()'s recovery semantics).
        shard = sorted(store_b.dir_for(spec).glob("shard-*.json"))[0]
        lost = len(json.loads(shard.read_text())["trials"])
        shard.write_text("{not json")
        merged = ResultStore(tmp_path / "merged")
        stats = merged.merge_from([store_a, store_b])
        assert stats["records"] == len(records) - lost
        survivors = merged.load(spec)
        assert len(survivors) == len(records) - lost
        assert all(records[k] == r for k, r in survivors.items())

    def test_legacy_v1_source_is_migrated(self, tmp_path):
        spec = spec_for()
        records = {
            r["key"]: r for r in run_experiment(spec, workers=1).records
        }
        legacy = ResultStore(tmp_path / "legacy")
        legacy.legacy_path_for(spec).parent.mkdir(
            parents=True, exist_ok=True
        )
        legacy.legacy_path_for(spec).write_text(json.dumps({
            "version": 1,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "trials": records,
        }))
        merged = ResultStore(tmp_path / "merged")
        stats = merged.merge_from([legacy])
        assert stats["specs"] == 1
        # The destination is born sharded (v2): merging migrates.
        assert merged.dir_for(spec).is_dir()
        assert not merged.legacy_path_for(spec).exists()
        assert merged.load(spec) == records

    def test_unreadable_spec_sidecar_is_skipped(self, tmp_path):
        from repro.runner import MergeWarning

        spec = spec_for()
        source = self.run_into(tmp_path / "src")
        (source.dir_for(spec) / "spec.json").write_text("{broken")
        merged = ResultStore(tmp_path / "merged")
        with pytest.warns(MergeWarning, match="skipping"):
            stats = merged.merge_from([source])
        assert stats == {
            "specs": 0, "records": 0, "duplicates": 0, "skipped": 1,
        }

    def test_merge_is_incremental_over_dest(self, tmp_path):
        # The destination's own records are the base layer: merging a
        # second worker store into an existing merge result composes.
        spec, records, store_a, store_b = self.split_store(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        merged.merge_from([store_a])
        merged.merge_from([store_b])
        assert merged.load(spec) == records

    def test_merge_cli_reports_and_warns(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = spec_for()
        store_a = self.run_into(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        records = dict(store_a.load(spec))
        key = sorted(records)[0]
        doctored = json.loads(json.dumps(records[key]))
        doctored["metrics"]["rounds"] = -1
        store_b.save(spec, {key: doctored})
        assert main([
            "merge", "--into", str(tmp_path / "merged"),
            str(tmp_path / "a"), str(tmp_path / "b"),
        ]) == 0
        captured = capsys.readouterr()
        assert "merged 1 spec(s), 4 record(s)" in captured.out
        assert "1 conflicting duplicate(s)" in captured.out
        assert "warning:" in captured.err


class TestStreamingQuery:
    """The query CLI aggregates shard by shard, never whole specs."""

    def sweep(self, tmp_path, shard_size=1) -> None:
        store = ResultStore(tmp_path, shard_size=shard_size)
        run_experiment(spec_for(), workers=1, store=store)

    def test_iter_records_streams_per_shard(self, tmp_path):
        self.sweep(tmp_path)  # four records, one per shard
        store = ResultStore(tmp_path)
        streamed = list(store.iter_records())
        spec = spec_for()
        assert streamed == [
            store.load(spec)[k] for k in sorted(store.load(spec))
        ]

    def test_overlapping_shards_yield_each_key_once(self, tmp_path):
        # An interrupted save can leave a stale shard whose keys also
        # live in a fresh one; streaming must not double-count them.
        self.sweep(tmp_path, shard_size=256)  # all keys in shard-0000
        store = ResultStore(tmp_path)
        spec = spec_for()
        directory = store.dir_for(spec)
        fresh = json.loads((directory / "shard-0000.json").read_text())
        stale_key = sorted(fresh["trials"])[0]
        stale = dict(fresh)
        stale["shard"] = 1
        stale["trials"] = {stale_key: fresh["trials"][stale_key]}
        (directory / "shard-0001.json").write_text(json.dumps(stale))
        streamed = list(store.iter_spec_records(spec.spec_hash()))
        assert len(streamed) == len(store.load(spec)) == 4
        assert len({r["key"] for r in streamed}) == 4

    def test_query_cli_never_materializes_a_spec(
        self, tmp_path, capsys, monkeypatch
    ):
        self.sweep(tmp_path)

        def forbidden(self, spec):
            raise AssertionError(
                "query must stream shards, not load() whole specs"
            )

        monkeypatch.setattr(ResultStore, "load", forbidden)
        from repro.__main__ import main

        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--group-by", "n", "--metrics", "rounds",
        ]) == 0
        assert "groups: 2" in capsys.readouterr().out

    def test_streaming_rows_match_list_aggregation(self, tmp_path):
        from repro.runner.query import StreamAggregator, aggregate

        self.sweep(tmp_path)
        store = ResultStore(tmp_path)
        records = list(store.iter_records())
        for where, group_by in (
            ({}, ("n",)),
            ({"n": "4"}, ("seed",)),
            ({}, ("n", "seed")),
        ):
            reference = aggregate(
                filter_records(records, where),
                group_by=group_by,
                metrics=("rounds", "moves"),
            )
            streaming = StreamAggregator(
                where, group_by=group_by, metrics=("rounds", "moves")
            )
            for record in records:
                streaming.add(record)
            assert streaming.rows() == reference

    def test_streaming_json_output_matches_reference(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main
        from repro.runner.query import aggregate

        self.sweep(tmp_path)
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--group-by", "n", "--metrics", "rounds",
            "--stats", "count,mean,p50,p95,max", "--json",
        ]) == 0
        emitted = json.loads(capsys.readouterr().out)
        records = list(ResultStore(tmp_path).iter_records())
        assert emitted == aggregate(records, group_by=("n",))

    def test_decomposable_stats_use_running_aggregates(self, tmp_path):
        # Without percentile stats the aggregator must not keep
        # per-record values — only [count, total, min, max] per group
        # — and still match the list-based reference exactly.
        from repro.runner.query import StreamAggregator, aggregate

        self.sweep(tmp_path)
        records = list(ResultStore(tmp_path).iter_records())
        stats = ("count", "mean", "min", "max", "sum")
        streaming = StreamAggregator(
            {}, group_by=("n",), metrics=("rounds",), stats=stats
        )
        for record in records:
            streaming.add(record)
        assert not streaming._keep_values
        for group in streaming._groups.values():
            state = group["metrics"]["rounds"]
            assert state is None or len(state) == 4
        assert streaming.rows() == aggregate(
            records, group_by=("n",), metrics=("rounds",), stats=stats
        )

    def test_running_mean_survives_astronomical_rounds(self):
        # gather_unknown round counts are exact integers with
        # hundreds of digits; the running-aggregate mean must take
        # the same integer-division fallback as _stat does.
        from repro.runner.query import StreamAggregator, aggregate

        records = [
            {"ok": True, "n": 2, "metrics": {"rounds": 10 ** 400 + i}}
            for i in range(3)
        ]
        stats = ("count", "mean", "max")
        streaming = StreamAggregator({}, metrics=("rounds",), stats=stats)
        for record in records:
            streaming.add(record)
        assert streaming.rows() == aggregate(
            records, metrics=("rounds",), stats=stats
        )

    def test_streaming_counters_match_summary(self, tmp_path, capsys):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "n=4",
        ]) == 0
        assert (
            "records: 4  matched: 2  aggregated: 2  groups: 1"
            in capsys.readouterr().out
        )

    def test_streaming_unknown_field_still_rejected(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main

        self.sweep(tmp_path)
        assert main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "wormholes=3",
        ]) == 2
        assert "unknown field 'wormholes'" in capsys.readouterr().out


class TestCorruptIndexRecovery:
    """A damaged ``index.json`` must never lose records or listings."""

    def sweep(self, tmp_path):
        spec = spec_for()
        store = ResultStore(tmp_path)
        run_experiment(spec, workers=1, store=store)
        return spec, store

    def index_path(self, spec, tmp_path):
        return tmp_path / spec.spec_hash() / "index.json"

    def test_garbage_index_falls_back_to_shard_scan(self, tmp_path):
        spec, store = self.sweep(tmp_path)
        self.index_path(spec, tmp_path).write_text("{not json")
        (entry,) = store.list_specs()
        assert entry["trials"] == 4
        assert len(store.load(spec)) == 4

    def test_missing_index_falls_back_to_shard_scan(self, tmp_path):
        spec, store = self.sweep(tmp_path)
        self.index_path(spec, tmp_path).unlink()
        (entry,) = store.list_specs()
        assert entry["trials"] == 4

    def test_wrong_version_index_falls_back(self, tmp_path):
        spec, store = self.sweep(tmp_path)
        self.index_path(spec, tmp_path).write_text(
            json.dumps({"version": 99, "total": 0})
        )
        (entry,) = store.list_specs()
        assert entry["trials"] == 4

    def test_compact_heals_a_corrupt_index(self, tmp_path):
        spec, store = self.sweep(tmp_path)
        healthy = tree_bytes(tmp_path)
        self.index_path(spec, tmp_path).write_text("{not json")
        stats = store.compact()
        assert stats == {"specs": 1, "records": 4, "removed": 0}
        assert tree_bytes(tmp_path) == healthy

    def test_rerun_with_corrupt_index_simulates_nothing(self, tmp_path):
        # The engine's cache subtraction reads shards, not the index:
        # a corrupt index alone never forces a re-simulation.
        spec, store = self.sweep(tmp_path)
        self.index_path(spec, tmp_path).write_text("garbage")
        result = run_experiment(spec, workers=1, store=store)
        assert result.executed == 0
        assert result.cached == 4


class TestMergeWithSearchRecords:
    """``merge_from`` when a sibling store holds search records."""

    def populate(self, tmp_path):
        from repro.runner.search import SearchSpec, run_search

        sweep_store = ResultStore(tmp_path / "sweep")
        run_experiment(spec_for(), workers=1, store=sweep_store)
        search_spec = SearchSpec(
            algorithm="gather_known", family="ring", n=6,
            labels=(1, 2), strategy="hill_climb", budget=6,
            max_delay=20,
        )
        search_store = ResultStore(tmp_path / "search")
        result = run_search(search_spec, store=search_store)
        return sweep_store, search_store, search_spec, result

    def test_merge_unions_search_and_sweep_stores(self, tmp_path):
        sweep_store, search_store, spec, result = self.populate(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        stats = merged.merge_from([sweep_store, search_store])
        assert stats["specs"] == 2
        assert stats["skipped"] == 0
        assert stats["duplicates"] == 0
        loaded = merged.load(spec)
        assert loaded == search_store.load(spec)
        kinds = {r.get("kind") for r in loaded.values()}
        assert kinds == {"eval", "round"}

    def test_merged_search_store_is_byte_canonical(self, tmp_path):
        _, search_store, spec, _ = self.populate(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        merged.merge_from([search_store])
        assert tree_bytes(tmp_path / "merged") == tree_bytes(
            tmp_path / "search"
        )

    def test_merged_search_sidecar_keeps_its_kind(self, tmp_path):
        sweep_store, search_store, spec, _ = self.populate(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        merged.merge_from([sweep_store, search_store])
        sidecar = json.loads(
            (tmp_path / "merged" / spec.spec_hash() / "spec.json")
            .read_text()
        )
        assert sidecar["spec"]["kind"] == "search"

    def test_search_resumes_from_a_merged_store(self, tmp_path):
        from repro.runner.search import run_search

        sweep_store, search_store, spec, first = self.populate(tmp_path)
        merged = ResultStore(tmp_path / "merged")
        merged.merge_from([sweep_store, search_store])
        resumed = run_search(spec, store=merged)
        assert resumed.simulated == 0
        assert resumed.best_value == first.best_value

    def test_compact_covers_search_stores(self, tmp_path):
        _, search_store, spec, result = self.populate(tmp_path)
        before = tree_bytes(tmp_path / "search")
        stats = search_store.compact()
        assert stats["specs"] == 1
        assert stats["records"] == len(result.records)
        assert tree_bytes(tmp_path / "search") == before
