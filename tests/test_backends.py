"""Tests for the pluggable execution backends (``repro.runner.backends``).

Covers the subsystem's hard guarantees:

* registry — the four shipped backends resolve by name, unknown names
  fail loudly, and ``ExperimentSpec.backend`` participates in backend
  selection without ever touching the spec's identity;
* equivalence — ``serial``, ``process``, ``pipelined`` and
  ``manifest`` produce byte-identical records (and stores) for the
  same spec, including captured failures;
* pipelining — trials sharing a graph are batched so the graph is
  built once per batch, not once per trial;
* manifest — lock-free chunk claims, idempotent creation, stale/foreign
  manifests rejected, the two-worker CLI flow (worker + worker + merge)
  reproducing the serial store byte-for-byte.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.__main__ import main
from repro.runner import (
    BACKENDS,
    BackendError,
    ExperimentSpec,
    get_backend,
    register_backend,
    run_experiment,
)
from repro.runner import worker as worker_mod
from repro.runner.backends import manifest as manifest_mod
from repro.runner.backends.pipelined import plan_batches
from repro.runner.spec import SpecError


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        algorithm="gather_known",
        family="ring",
        sizes=(4, 5),
        label_sets=((1, 2),),
        seeds=(1,),
        graph_seed_mode="fixed",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def scenario_spec(**overrides) -> ExperimentSpec:
    """A grid whose scenario axes share graphs (pipelining's target)."""
    base = dict(
        algorithm="gather_known",
        family="ring",
        sizes=(5, 6),
        label_sets=((1, 2),),
        seeds=(0, 1),
        wake_schedules=("simultaneous", "random:10"),
        placements=("spread", "random"),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(autouse=True)
def clean_graph_cache():
    worker_mod._GRAPH_CACHE.clear()
    yield
    worker_mod._GRAPH_CACHE.clear()


class TestRegistry:
    def test_four_backends_ship(self):
        assert set(BACKENDS) >= {
            "serial", "process", "pipelined", "manifest"
        }

    def test_get_backend_resolves_by_name(self):
        for name in ("serial", "process", "pipelined", "manifest"):
            assert get_backend(name).name == name

    def test_unknown_backend_lists_known(self):
        with pytest.raises(BackendError, match="serial"):
            get_backend("quantum")

    def test_register_requires_name(self):
        class Anonymous:
            name = ""

            def execute(self, ctx):
                return iter(())

        with pytest.raises(BackendError):
            register_backend(Anonymous())

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(SpecError, match="unknown execution backend"):
            small_spec(backend="quantum")

    def test_backend_is_not_part_of_spec_identity(self):
        plain = small_spec()
        pipelined = small_spec(backend="pipelined")
        assert pipelined.backend == "pipelined"
        assert "backend" not in pipelined.to_dict()
        assert plain.to_dict() == pipelined.to_dict()
        assert plain.spec_hash() == pipelined.spec_hash()

    def test_spec_backend_drives_dispatch(self, monkeypatch):
        calls: list[str] = []
        real = get_backend("serial")

        class Recording:
            name = "serial"

            def execute(self, ctx):
                calls.append(self.name)
                return real.execute(ctx)

        monkeypatch.setitem(BACKENDS, "serial", Recording())
        run_experiment(small_spec(backend="serial"), workers=4)
        assert calls == ["serial"]  # spec.backend beat the workers=4 default

    def test_explicit_backend_overrides_spec_backend(self, monkeypatch):
        calls: list[str] = []
        real = get_backend("serial")

        class Recording:
            name = "serial"

            def execute(self, ctx):
                calls.append(self.name)
                return real.execute(ctx)

        monkeypatch.setitem(BACKENDS, "serial", Recording())
        run_experiment(
            small_spec(backend="pipelined"), workers=1, backend="serial"
        )
        assert calls == ["serial"]

    def test_factory_specs_need_the_serial_backend(self):
        spec = small_spec(graph_factory=lambda n: None)
        with pytest.raises(SpecError):
            run_experiment(spec, workers=1, backend="pipelined")
        with pytest.raises(SpecError):
            run_experiment(spec, workers=2, backend="serial")


class TestBackendEquivalence:
    def test_all_backends_byte_identical(self, tmp_path):
        reference = run_experiment(scenario_spec(), workers=1)
        assert reference.failed == 0
        runs = {
            "serial": run_experiment(
                scenario_spec(), workers=1, backend="serial"
            ),
            "process": run_experiment(
                scenario_spec(), workers=2, backend="process"
            ),
            "pipelined-inline": run_experiment(
                scenario_spec(), workers=1, backend="pipelined"
            ),
            "pipelined-pool": run_experiment(
                scenario_spec(), workers=2, backend="pipelined"
            ),
            "manifest": run_experiment(
                scenario_spec(), backend="manifest", store=tmp_path
            ),
        }
        for name, result in runs.items():
            assert (
                result.canonical_json() == reference.canonical_json()
            ), f"{name} diverged from the serial reference"

    def test_failures_captured_identically(self):
        # Size 2 is infeasible for the ring family: the failure record
        # must be identical whether the graph is built per trial
        # (serial) or once per batch (pipelined).
        spec = small_spec(sizes=(2, 4))
        serial = run_experiment(spec, workers=1)
        pipelined = run_experiment(spec, workers=1, backend="pipelined")
        pooled = run_experiment(spec, workers=2, backend="pipelined")
        assert serial.failed == 1
        assert serial.canonical_json() == pipelined.canonical_json()
        assert serial.canonical_json() == pooled.canonical_json()

    def test_manifest_store_matches_serial_store(self, tmp_path):
        spec_kwargs = dict(sizes=(4, 5), seeds=(0, 1))
        run_experiment(
            small_spec(**spec_kwargs),
            backend="manifest",
            store=tmp_path / "m",
        )
        run_experiment(
            small_spec(**spec_kwargs), workers=1, store=tmp_path / "s"
        )
        manifest_files = {
            p.relative_to(tmp_path / "m"): p.read_bytes()
            for p in sorted((tmp_path / "m").rglob("*.json"))
            if "manifest" not in p.parts
        }
        serial_files = {
            p.relative_to(tmp_path / "s"): p.read_bytes()
            for p in sorted((tmp_path / "s").rglob("*.json"))
        }
        assert manifest_files == serial_files
        assert manifest_files  # shards were actually written

    def test_backend_runs_hit_each_others_cache(self, tmp_path):
        spec = scenario_spec()
        first = run_experiment(
            spec, workers=2, backend="pipelined", store=tmp_path
        )
        assert first.executed == len(first.records)
        rerun = run_experiment(
            spec, workers=1, backend="serial", store=tmp_path
        )
        assert rerun.executed == 0
        assert rerun.cached == len(first.records)


class TestPipelined:
    def test_plan_batches_groups_by_graph(self):
        trials = scenario_spec().trials()
        batches = plan_batches(trials, batch_size=100)
        # One batch per distinct (family, n, graph_seed); every trial
        # of a batch shares its graph coordinates.
        keys = set()
        total = 0
        for batch in batches:
            coords = {(t.family, t.n, t.graph_seed) for t in batch}
            assert len(coords) == 1
            keys |= coords
            total += len(batch)
        assert total == len(trials)
        assert len(batches) == len(keys)

    def test_plan_batches_splits_large_groups(self):
        trials = scenario_spec().trials()
        batches = plan_batches(trials, batch_size=3)
        assert all(len(b) <= 3 for b in batches)
        assert sum(len(b) for b in batches) == len(trials)
        with pytest.raises(ValueError):
            plan_batches(trials, batch_size=0)

    def test_inline_pipelined_builds_each_graph_once(self, monkeypatch):
        builds: list[tuple] = []
        original = worker_mod._build_graph

        def counting(trial):
            builds.append((trial.family, trial.n, trial.graph_seed))
            return original(trial)

        monkeypatch.setattr(worker_mod, "_build_graph", counting)
        spec = scenario_spec()
        trials = spec.trials()
        distinct = {(t.family, t.n, t.graph_seed) for t in trials}
        assert len(distinct) < len(trials)  # scenarios share graphs
        result = run_experiment(spec, workers=1, backend="pipelined")
        assert result.failed == 0
        assert len(builds) == len(distinct)

    def test_batch_size_option_respected(self, monkeypatch):
        batched: list[int] = []
        original = plan_batches

        def recording(pending, batch_size):
            batched.append(batch_size)
            return original(pending, batch_size)

        import repro.runner.backends.pipelined as pipelined_mod

        monkeypatch.setattr(pipelined_mod, "plan_batches", recording)
        run_experiment(
            small_spec(),
            workers=1,
            backend="pipelined",
            backend_options={"batch_size": 3},
        )
        assert batched == [3]


class TestManifest:
    def test_ensure_manifest_is_idempotent(self, tmp_path):
        spec = small_spec()
        mdir_a, payload_a = manifest_mod.ensure_manifest(tmp_path, spec)
        mdir_b, payload_b = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=99  # ignored: manifest exists
        )
        assert mdir_a == mdir_b
        assert payload_a == payload_b
        assert payload_a["total"] == len(spec.trials())

    def test_foreign_manifest_rejected(self, tmp_path):
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(tmp_path, spec)
        tampered = dict(payload, spec_hash="0" * 16)
        (mdir / "manifest.json").write_text(json.dumps(tampered))
        with pytest.raises(manifest_mod.ManifestError, match="belongs"):
            manifest_mod.ensure_manifest(tmp_path, spec)

    def test_claims_are_exclusive(self, tmp_path):
        spec = small_spec()
        mdir, _ = manifest_mod.ensure_manifest(tmp_path, spec)
        assert manifest_mod.claim_chunk(mdir, 0, "alice")
        assert not manifest_mod.claim_chunk(mdir, 0, "bob")

    def test_manifest_backend_requires_a_store(self):
        with pytest.raises(BackendError, match="store"):
            run_experiment(small_spec(), backend="manifest")

    def test_detailed_status_reports_claim_ages(self, tmp_path):
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=2
        )
        assert manifest_mod.claim_chunk(mdir, 0, "alice")
        status = manifest_mod.detailed_status(mdir, payload)
        assert status["done"] == 0
        assert status["pending"] == len(payload["chunks"]) - 1
        (claim,) = status["in_flight"]
        assert claim["chunk"] == 0
        assert claim["worker"] == "alice"
        assert claim["age_s"] >= 0.0

    def test_detailed_status_clamps_skewed_claims(self, tmp_path):
        # A claim stamped by a worker clock running ahead of ours has
        # a negative raw age: clamp to zero and flag it, so it can
        # never masquerade as (or hide) a stale claim.
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=2
        )
        assert manifest_mod.claim_chunk(mdir, 0, "alice")
        claim_path = mdir / "claims" / "chunk-0000.claim"
        future = claim_path.stat().st_mtime + 3600
        os.utime(claim_path, (future, future))
        status = manifest_mod.detailed_status(mdir, payload)
        (claim,) = status["in_flight"]
        assert claim["age_s"] == 0.0
        assert claim["skewed"] is True

    def test_detailed_status_marks_normal_claims_unskewed(self, tmp_path):
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=2
        )
        assert manifest_mod.claim_chunk(mdir, 0, "alice")
        status = manifest_mod.detailed_status(mdir, payload)
        assert status["in_flight"][0]["skewed"] is False

    def test_detailed_status_tolerates_corrupt_claims(self, tmp_path):
        # A truncated claim that parses as non-dict JSON (or not at
        # all) must degrade to worker '?', not crash the status tool.
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=2
        )
        claim = mdir / "claims" / "chunk-0000.claim"
        claim.write_text('["not", "a", "dict"]')
        status = manifest_mod.detailed_status(mdir, payload)
        assert status["in_flight"][0]["worker"] == "?"

    def test_scan_manifests_skips_unreadable(self, tmp_path):
        spec = small_spec()
        mdir, _ = manifest_mod.ensure_manifest(tmp_path, spec)
        rotten = tmp_path / "deadbeef" / "manifest"
        rotten.mkdir(parents=True)
        (rotten / "manifest.json").write_text("{not json")
        scanned = manifest_mod.scan_manifests(tmp_path)
        assert [entry[0] for entry in scanned] == [spec.spec_hash()]

    def test_manifest_status_cli(self, tmp_path, capsys):
        spec = small_spec()
        mdir, _ = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=2
        )
        manifest_mod.claim_chunk(mdir, 0, "ghost-worker")
        assert main([
            "manifest", "status", "--manifest-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert spec.spec_hash() in out
        assert "ghost-worker" in out

    def test_manifest_status_cli_json(self, tmp_path, capsys):
        spec = small_spec()
        manifest_mod.ensure_manifest(tmp_path, spec, chunk_size=2)
        assert main([
            "manifest", "status", "--manifest-dir", str(tmp_path),
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["spec_hash"] == spec.spec_hash()
        assert payload[0]["done"] == 0

    def test_manifest_status_cli_without_manifests(
        self, tmp_path, capsys
    ):
        assert main([
            "manifest", "status", "--manifest-dir", str(tmp_path),
        ]) == 2
        assert "error" in capsys.readouterr().out

    def test_stuck_foreign_claim_times_out(self, tmp_path):
        spec = small_spec(sizes=(4,))
        mdir, _ = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=16
        )
        # Another (crashed) worker holds the only chunk forever.
        assert manifest_mod.claim_chunk(mdir, 0, "ghost")
        with pytest.raises(RuntimeError, match="timed out"):
            run_experiment(
                spec,
                backend="manifest",
                store=tmp_path,
                backend_options={
                    "chunk_size": 16,
                    "timeout": 0.05,
                    "poll_interval": 0.01,
                },
            )

    def test_captured_failures_are_retried_not_replayed(
        self, tmp_path, monkeypatch
    ):
        # Size 2 is infeasible for the ring family.  The failed
        # trial's chunk result must not be served on the next run —
        # failures re-run, exactly as with the result store.
        spec = small_spec(sizes=(2, 4))
        options = {"chunk_size": 1}
        first = run_experiment(
            spec, backend="manifest", store=tmp_path,
            backend_options=options,
        )
        assert first.failed == 1
        executions: list[int] = []
        original = manifest_mod.execute_chunk

        def counting(spec_hash, keys, by_key, provider):
            executions.append(len(keys))
            return original(spec_hash, keys, by_key, provider)

        monkeypatch.setattr(manifest_mod, "execute_chunk", counting)
        second = run_experiment(
            spec, backend="manifest", store=tmp_path,
            backend_options=options,
        )
        assert second.failed == 1
        assert second.cached == 1  # the ok trial came from the store
        assert executions == [1]  # only the failed chunk re-ran
        assert first.canonical_json() == second.canonical_json()

    def test_sweep_cli_manifest_without_cache_is_an_error(self, capsys):
        assert main([
            "sweep", "--sizes", "4", "--backend", "manifest",
            "--no-cache", "--quiet",
        ]) == 2
        assert "error" in capsys.readouterr().out

    def test_engine_joins_results_of_other_workers(self, tmp_path):
        # Simulate a foreign worker by pre-executing chunk 0 out of
        # band: the engine must claim the rest and still return the
        # complete, byte-identical record set.
        from repro.explore.uxs import UXSProvider

        spec = small_spec(sizes=(4, 5), seeds=(0, 1))
        mdir, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=1
        )
        by_key = {t.key: t for t in spec.trials()}
        assert manifest_mod.claim_chunk(mdir, 0, "foreign")
        records = manifest_mod.execute_chunk(
            payload["spec_hash"], payload["chunks"][0], by_key,
            UXSProvider(),
        )
        manifest_mod.write_chunk_result(
            mdir, 0, payload["spec_hash"], records
        )
        result = run_experiment(
            spec, backend="manifest", store=tmp_path,
            backend_options={"chunk_size": 1, "timeout": 5.0},
        )
        reference = run_experiment(spec, workers=1)
        assert result.canonical_json() == reference.canonical_json()
        # Records collected from the foreign worker's chunk must not
        # count as simulated by this invocation.
        assert result.executed == len(spec.trials()) - 1


class TestWorkerMergeCLI:
    SPEC_ARGS = [
        "--sizes", "4,5,6", "--seeds", "0,1",
        "--wake", "simultaneous,random:10",
        "--placement", "spread,random",
    ]

    def test_two_workers_merge_to_serial_bytes(self, tmp_path, capsys):
        shared = str(tmp_path / "shared")
        assert main([
            "worker", *self.SPEC_ARGS,
            "--manifest-dir", shared,
            "--cache-dir", str(tmp_path / "store-a"),
            "--worker-id", "A", "--chunk-size", "4",
            "--max-chunks", "2", "--quiet",
        ]) == 0
        assert main([
            "worker", *self.SPEC_ARGS,
            "--manifest-dir", shared,
            "--cache-dir", str(tmp_path / "store-b"),
            "--worker-id", "B", "--chunk-size", "4", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker A: claimed 2 chunk(s)" in out
        assert "6/6 chunks done" in out
        assert main([
            "merge", "--into", str(tmp_path / "merged"),
            str(tmp_path / "store-a"), str(tmp_path / "store-b"),
        ]) == 0
        assert main([
            "sweep", *self.SPEC_ARGS, "--quiet",
            "--cache-dir", str(tmp_path / "reference"),
        ]) == 0
        merged = {
            p.relative_to(tmp_path / "merged"): p.read_bytes()
            for p in sorted((tmp_path / "merged").rglob("*.json"))
        }
        reference = {
            p.relative_to(tmp_path / "reference"): p.read_bytes()
            for p in sorted((tmp_path / "reference").rglob("*.json"))
        }
        assert merged == reference
        assert merged  # non-empty store

    def test_worker_resumes_partially_drained_manifest(self, tmp_path):
        # Worker A dies after one chunk; a re-invoked worker (same
        # store) claims the remainder — nothing is executed twice.
        shared = str(tmp_path / "shared")
        common = [
            "worker", "--sizes", "4,5", "--seeds", "0,1",
            "--manifest-dir", shared,
            "--cache-dir", str(tmp_path / "store"),
            "--chunk-size", "1", "--quiet",
        ]
        assert main(common + ["--max-chunks", "1"]) == 0
        assert main(common) == 0
        from repro.runner import ResultStore

        spec = ExperimentSpec(
            algorithm="gather_known", family="ring", sizes=(4, 5),
            label_sets=((1, 2),), seeds=(0, 1),
        )
        assert len(ResultStore(tmp_path / "store").load(spec)) == 4

    def test_worker_bad_args_exit_2(self, capsys):
        assert main(["worker", "--chunk-size", "0"]) == 2
        assert "error" in capsys.readouterr().out

    def test_merge_without_sources_exit_2(self, tmp_path, capsys):
        assert main([
            "merge", "--into", str(tmp_path / "merged"),
            str(tmp_path / "empty"),
        ]) == 2
        assert "error" in capsys.readouterr().out


class TestSweepBackendCLI:
    def test_sweep_backend_flag(self, tmp_path, capsys):
        assert main([
            "sweep", "--sizes", "4,5", "--backend", "pipelined",
            "--workers", "2", "--cache-dir", str(tmp_path / "p"),
            "--quiet",
        ]) == 0
        assert main([
            "sweep", "--sizes", "4,5", "--backend", "serial",
            "--cache-dir", str(tmp_path / "s"), "--quiet",
        ]) == 0
        capsys.readouterr()
        pipelined = {
            p.relative_to(tmp_path / "p"): p.read_bytes()
            for p in sorted((tmp_path / "p").rglob("*.json"))
        }
        serial = {
            p.relative_to(tmp_path / "s"): p.read_bytes()
            for p in sorted((tmp_path / "s").rglob("*.json"))
        }
        assert pipelined == serial

    def test_progress_reports_throughput_and_eta(self, tmp_path, capsys):
        assert main([
            "sweep", "--sizes", "4,5",
            "--cache-dir", str(tmp_path),
        ]) == 0
        captured = capsys.readouterr()
        # Progress lines render on stderr (via the console event
        # processor); stdout keeps the table and summary.
        progress = [
            line for line in captured.err.splitlines()
            if "trials/s" in line
        ]
        assert any("eta" in line for line in progress)
        # The summary line carries throughput and elapsed time too.
        assert any(
            line.startswith("trials:") and "trials/s" in line
            for line in captured.out.splitlines()
        )
        # A fully-cached re-run has no simulated trials: cached lines
        # stay rate-free and the summary omits the throughput suffix.
        assert main([
            "sweep", "--sizes", "4,5",
            "--cache-dir", str(tmp_path),
        ]) == 0
        rerun = capsys.readouterr()
        assert "simulated: 0" in rerun.out
        assert "trials/s" not in rerun.out
        assert "trials/s" not in rerun.err


class TestClaimTakeover:
    def _age(self, mdir, chunk_id, seconds):
        path = mdir / "claims" / f"chunk-{chunk_id:04d}.claim"
        past = path.stat().st_mtime - seconds
        os.utime(path, (past, past))

    def test_fresh_claim_is_not_stealable(self, tmp_path):
        spec = small_spec()
        mdir, _ = manifest_mod.ensure_manifest(tmp_path, spec)
        assert manifest_mod.claim_chunk(mdir, 0, "alice")
        assert manifest_mod.steal_claim(mdir, 0, "bob", ttl=300) is None

    def test_expired_claim_is_taken_over_with_bumped_generation(
        self, tmp_path
    ):
        spec = small_spec()
        mdir, _ = manifest_mod.ensure_manifest(tmp_path, spec)
        assert manifest_mod.claim_chunk(mdir, 0, "alice") == "alice#0"
        self._age(mdir, 0, seconds=60)
        token = manifest_mod.steal_claim(mdir, 0, "bob", ttl=5)
        assert token == "bob#1"
        claim = manifest_mod.read_claim(mdir, 0)
        assert claim["worker"] == "bob"
        assert claim["generation"] == 1
        # A third worker can dethrone the thief once *its* claim ages.
        self._age(mdir, 0, seconds=60)
        assert manifest_mod.steal_claim(mdir, 0, "carol", ttl=5) == "carol#2"

    def test_skewed_claim_is_never_stolen(self, tmp_path):
        # A claim stamped by a clock running ahead of ours has a
        # negative raw age; the PR 6 clamp makes its age 0, so even a
        # zero TTL cannot justify a takeover.
        spec = small_spec()
        mdir, _ = manifest_mod.ensure_manifest(tmp_path, spec)
        assert manifest_mod.claim_chunk(mdir, 0, "alice")
        path = mdir / "claims" / "chunk-0000.claim"
        future = path.stat().st_mtime + 3600
        os.utime(path, (future, future))
        assert manifest_mod.steal_claim(mdir, 0, "bob", ttl=0) is None

    def test_dethroned_workers_late_write_is_discarded(self, tmp_path):
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(tmp_path, spec)
        spec_hash = payload["spec_hash"]
        records = [{"key": "k", "ok": True, "metrics": {}}]
        token_a = manifest_mod.claim_chunk(mdir, 0, "alice")
        self._age(mdir, 0, seconds=60)
        token_b = manifest_mod.steal_claim(mdir, 0, "bob", ttl=5)
        # Alice (presumed dead) wakes up and writes under her old
        # token: the result must read as absent, not double-merge.
        manifest_mod.write_chunk_result(
            mdir, 0, spec_hash, records, token=token_a
        )
        assert manifest_mod.read_chunk_result(mdir, 0) is None
        # Bob's write under the live token is honored.
        manifest_mod.write_chunk_result(
            mdir, 0, spec_hash, records, token=token_b
        )
        assert manifest_mod.read_chunk_result(mdir, 0) == records

    def test_tokenless_results_stay_valid(self, tmp_path):
        # Pre-takeover manifests (and engine-internal execution) write
        # results without tokens; they must never be invalidated.
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(tmp_path, spec)
        records = [{"key": "k", "ok": True, "metrics": {}}]
        manifest_mod.claim_chunk(mdir, 0, "alice")
        manifest_mod.write_chunk_result(
            mdir, 0, payload["spec_hash"], records
        )
        assert manifest_mod.read_chunk_result(mdir, 0) == records

    def test_claim_next_steals_only_with_ttl(self, tmp_path):
        spec = small_spec()
        mdir, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=1
        )
        n = len(payload["chunks"])
        for chunk_id in range(n):
            assert manifest_mod.claim_chunk(mdir, chunk_id, "ghost")
            self._age(mdir, chunk_id, seconds=60)
        assert manifest_mod.claim_next(mdir, n, "bob") is None
        claim = manifest_mod.claim_next(mdir, n, "bob", steal_ttl=5)
        assert claim == (0, "bob#1", True)

    def test_worker_steal_cli_finishes_and_matches_serial(self, tmp_path):
        # Worker A claims one chunk and "crashes" before executing the
        # rest (simulated by --max-chunks); a ghost claim pins another
        # chunk.  Worker B with --steal must drain everything and the
        # merged store must byte-equal a serial sweep.
        shared = tmp_path / "shared"
        spec_args = ["--sizes", "4,5", "--seeds", "0,1"]
        assert main([
            "worker", *spec_args,
            "--manifest-dir", str(shared),
            "--cache-dir", str(tmp_path / "store-a"),
            "--worker-id", "A", "--chunk-size", "1",
            "--max-chunks", "1", "--quiet",
        ]) == 0
        spec = ExperimentSpec(
            algorithm="gather_known", family="ring", sizes=(4, 5),
            label_sets=((1, 2),), seeds=(0, 1),
        )
        mdir = manifest_mod.manifest_dir(shared, spec.spec_hash())
        stuck = None
        for chunk_id in range(4):
            if manifest_mod.claim_chunk(mdir, chunk_id, "ghost"):
                stuck = chunk_id
                break
        assert stuck is not None
        self._age(mdir, stuck, seconds=60)
        assert main([
            "worker", *spec_args,
            "--manifest-dir", str(shared),
            "--cache-dir", str(tmp_path / "store-b"),
            "--worker-id", "B", "--chunk-size", "1",
            "--steal", "--claim-ttl", "5", "--poll-interval", "0.05",
            "--quiet",
        ]) == 0
        assert main([
            "merge", "--into", str(tmp_path / "merged"),
            str(tmp_path / "store-a"), str(tmp_path / "store-b"),
        ]) == 0
        assert main([
            "sweep", *spec_args, "--quiet",
            "--cache-dir", str(tmp_path / "reference"),
        ]) == 0
        merged = {
            p.relative_to(tmp_path / "merged"): p.read_bytes()
            for p in sorted((tmp_path / "merged").rglob("*.json"))
        }
        reference = {
            p.relative_to(tmp_path / "reference"): p.read_bytes()
            for p in sorted((tmp_path / "reference").rglob("*.json"))
        }
        assert merged == reference and merged

    def test_worker_claim_ttl_without_steal_exit_2(self, capsys):
        assert main([
            "worker", "--sizes", "4", "--claim-ttl", "5",
            "--manifest-dir", "unused",
        ]) == 2
        assert "--steal" in capsys.readouterr().out

    def test_worker_bad_chunk_size_word_exit_2(self, capsys):
        assert main([
            "worker", "--sizes", "4", "--chunk-size", "many",
            "--manifest-dir", "unused",
        ]) == 2
        assert "auto" in capsys.readouterr().out


class TestChunkPlanning:
    def test_cost_estimate_orders_by_size_and_weights_unknown(self):
        trials = small_spec(sizes=(4, 5)).trials()
        costs = [manifest_mod.estimate_trial_cost(t) for t in trials]
        assert costs == sorted(costs)
        unknown = small_spec(
            algorithm="gather_unknown", sizes=(4,)
        ).trials()[0]
        known = trials[0]
        assert manifest_mod.estimate_trial_cost(unknown) == (
            manifest_mod.estimate_trial_cost(known) * 512
        )

    def test_heuristic_planning_clamps_to_min_chunks(self):
        # Cheap small-graph trials would fit hundreds per chunk; the
        # planner keeps at least _AUTO_CHUNK_MIN_CHUNKS chunks so a
        # preempted fleet can redistribute.
        spec = small_spec(sizes=(4, 5), seeds=tuple(range(8)))
        total = len(spec.trials())
        size = manifest_mod.plan_chunk_size(spec)
        assert size == total // manifest_mod._AUTO_CHUNK_MIN_CHUNKS

    def test_heuristic_planning_shrinks_for_expensive_algorithms(self):
        spec = small_spec(
            algorithm="gather_unknown", sizes=(4, 5),
            seeds=tuple(range(8)),
        )
        assert manifest_mod.plan_chunk_size(spec) == 1

    def test_measured_seconds_refine_chunk_size(self, tmp_path):
        from repro.metrics.registry import Registry

        spec = small_spec(sizes=(4, 5), seeds=tuple(range(20)))
        reg = Registry(source="worker-A")
        for _ in range(4):
            reg.histogram("runner.trial.wall_seconds").observe(10.0)
        sidecar_dir = tmp_path / spec.spec_hash() / "manifest" / "metrics"
        sidecar_dir.mkdir(parents=True)
        (sidecar_dir / "A.json").write_text(
            json.dumps(reg.snapshot())
        )
        # 30s target / 10s measured mean -> 3 trials per chunk.
        assert manifest_mod.plan_chunk_size(spec, tmp_path) == 3
        # Without the sidecar the heuristic would have said min-chunks.
        assert manifest_mod.plan_chunk_size(spec) == 10

    def test_ensure_manifest_auto_sizes_chunks(self, tmp_path):
        spec = small_spec(sizes=(4, 5), seeds=tuple(range(8)))
        _, payload = manifest_mod.ensure_manifest(
            tmp_path, spec, chunk_size=None
        )
        assert payload["chunk_size"] == manifest_mod.plan_chunk_size(spec)
