"""End-to-end tests for GatherUnknownUpperBound (Theorem 4.1).

The agents receive no knowledge whatsoever; the theorem promises that
all of them declare gathering in the same round at the same node, and
that each finishes knowing the graph size and the (smallest-label)
leader.  The run wrapper validates all of that; these tests exercise
the feasibility envelope (2-node networks; see DESIGN.md Section 4)
across label choices, enumerations and wake-up schedules.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DovetailOmega,
    TwoNodeDenseOmega,
    run_gather_unknown,
    run_gossip_unknown,
)
from repro.core.unknown_parameters import UnknownBoundSchedule
from repro.graphs import path_graph, single_edge


class TestFeasibleRuns:
    def test_labels_1_2_confirm_first_hypothesis(self):
        report = run_gather_unknown(single_edge(), [1, 2])
        assert report.hypothesis == 1
        assert report.leader == 1
        assert report.size == 2

    def test_labels_1_3(self):
        report = run_gather_unknown(single_edge(), [1, 3])
        assert report.leader == 1
        assert report.size == 2
        assert report.hypothesis > 1

    def test_labels_2_3(self):
        report = run_gather_unknown(single_edge(), [2, 3])
        assert report.leader == 2
        assert report.hypothesis > 1

    def test_swapped_start_nodes(self):
        a = run_gather_unknown(single_edge(), [1, 2], start_nodes=[0, 1])
        b = run_gather_unknown(single_edge(), [1, 2], start_nodes=[1, 0])
        assert a.hypothesis == b.hypothesis
        assert a.round == b.round  # the 2-node graph is symmetric

    def test_declaration_clock_is_astronomical(self):
        """The whole point of the feasibility theorem: the algorithm
        finishes — after a number of rounds far beyond 10**60."""
        report = run_gather_unknown(single_edge(), [1, 2])
        assert report.round > 10**60
        # ... simulated with a modest number of events.
        assert report.events < 100_000

    def test_wrong_hypotheses_cost_exact_t_h(self):
        """Between hypotheses everything is exact: declaration for
        labels {2,3} happens after hypotheses 1..true_index-1 have
        taken exactly T_1 + ... each (Lemma 4.5)."""
        report = run_gather_unknown(single_edge(), [2, 3])
        sched = UnknownBoundSchedule(DovetailOmega())
        floor = sum(sched.t_hyp(i) for i in range(1, report.hypothesis))
        assert report.round > floor

    def test_round_exceeds_schedule_prefix(self):
        report = run_gather_unknown(single_edge(), [1, 3])
        sched = UnknownBoundSchedule(DovetailOmega())
        assert report.round >= sched.start_round_bound(report.hypothesis)


class TestWakeSchedules:
    def test_dormant_partner(self):
        report = run_gather_unknown(
            single_edge(), [1, 2], wake_rounds=[0, None]
        )
        assert report.leader == 1

    def test_delayed_partner(self):
        report = run_gather_unknown(
            single_edge(), [1, 2], wake_rounds=[0, 1000]
        )
        assert report.leader == 1

    def test_huge_delay(self):
        # Delay beyond T_1: the early agent is already in hypothesis 2.
        sched = UnknownBoundSchedule(DovetailOmega())
        delay = sched.t_hyp(1) + 12345
        report = run_gather_unknown(
            single_edge(), [1, 2], wake_rounds=[0, delay]
        )
        assert report.leader == 1


class TestDenseOmega:
    def test_large_labels_feasible(self):
        report = run_gather_unknown(
            single_edge(), [4, 9], omega=TwoNodeDenseOmega()
        )
        assert report.leader == 4
        assert report.size == 2

    def test_hypothesis_index_matches_omega(self):
        omega = TwoNodeDenseOmega()
        idx = omega.index_of(single_edge(), {0: 5, 1: 7})
        report = run_gather_unknown(
            single_edge(), [5, 7], omega=TwoNodeDenseOmega()
        )
        assert report.hypothesis == idx


class TestGuards:
    def test_infeasible_prefix_rejected(self):
        """A 3-node network's true configuration sits behind 3-node
        hypotheses: the wrapper must refuse loudly, not hang."""
        from repro.core import InfeasibleHypothesisError

        with pytest.raises(InfeasibleHypothesisError):
            run_gather_unknown(path_graph(3), [1, 2])

    def test_unreachable_configuration_rejected(self):
        with pytest.raises(ValueError):
            run_gather_unknown(path_graph(5), [1, 2])


class TestGossipUnknown:
    def test_messages_delivered_and_size_learned(self):
        report = run_gossip_unknown(
            single_edge(), [1, 2], ["111", "000"]
        )
        assert report.messages == {"111": 1, "000": 1}

    def test_identical_messages_counted(self):
        report = run_gossip_unknown(single_edge(), [1, 2], ["10", "10"])
        assert report.messages == {"10": 2}

    def test_empty_messages(self):
        report = run_gossip_unknown(single_edge(), [2, 3], ["", "1"])
        assert report.messages == {"": 1, "1": 1}
