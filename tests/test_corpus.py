"""Tests for the worst-case scenario corpus (export + replay).

The corpus turns search-discovered adversarial scenarios into a
committed regression grid: ``export`` distils a result store's search
records into self-contained trial payloads with expected metrics, and
``replay`` re-executes them — deterministically, so a clean replay
reproduces the committed metrics exactly and any divergence is
classified (regression / changed / error) with a matching exit code.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.runner import corpus as corpus_mod
from repro.runner.search import SearchSpec, run_search
from repro.runner.store import ResultStore


def run_small_search(root, **overrides) -> SearchSpec:
    base = dict(
        algorithm="gather_known",
        family="ring",
        n=5,
        labels=(1, 2),
        seed=0,
        strategy="hill_climb",
        budget=10,
        max_delay=6,
        batch=4,
    )
    base.update(overrides)
    spec = SearchSpec(**base)
    run_search(spec, store=root)
    return spec


class TestExport:
    def test_exports_top_scenarios_per_search(self, tmp_path):
        store_dir = tmp_path / "store"
        spec = run_small_search(store_dir)
        store = ResultStore(store_dir)
        entries = corpus_mod.export_entries(store, top=2)
        assert len(entries) == 2
        values = [e["expected"]["rounds"] for e in entries]
        # Top-k by the search's own metric: nothing in the store beats
        # the exported values.
        best = max(
            rec["metrics"]["rounds"]
            for rec in store.load(spec).values()
            if rec.get("kind") == "eval"
        )
        assert max(values) == best
        for entry in entries:
            assert entry["provenance"]["spec_hash"] == spec.spec_hash()
            assert entry["provenance"]["metric"] == "rounds"
            assert entry["trial"]["adversary"] == "fixed"
            # Fully resolved: explicit graph seed and scenario axes.
            assert isinstance(entry["trial"]["graph_seed"], int)
            assert entry["trial"]["placement"].startswith("nodes:")
            assert entry["trial"]["wake_schedule"].startswith("explicit:")

    def test_spec_prefix_filters_and_validates(self, tmp_path):
        store_dir = tmp_path / "store"
        spec = run_small_search(store_dir)
        store = ResultStore(store_dir)
        entries = corpus_mod.export_entries(
            store, spec_prefix=spec.spec_hash()[:8], top=1
        )
        assert len(entries) == 1
        with pytest.raises(corpus_mod.CorpusError, match="no cached"):
            corpus_mod.export_entries(store, spec_prefix="ffffffff")

    def test_sweep_specs_are_not_exported(self, tmp_path):
        assert main([
            "sweep", "--sizes", "4", "--quiet",
            "--cache-dir", str(tmp_path / "store"),
        ]) == 0
        store = ResultStore(tmp_path / "store")
        assert corpus_mod.export_entries(store) == []

    def test_export_cli_round_trips(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        run_small_search(store_dir)
        out = tmp_path / "corpus" / "small.json"
        assert main([
            "corpus", "export", "--cache-dir", str(store_dir),
            "--out", str(out), "--top", "1",
        ]) == 0
        assert "wrote 1 scenario(s)" in capsys.readouterr().out
        payload = corpus_mod.load_corpus(out)
        assert payload["name"] == "small"
        assert payload["schema"] == corpus_mod.CORPUS_SCHEMA

    def test_export_cli_empty_store_exit_2(self, tmp_path, capsys):
        assert main([
            "corpus", "export", "--cache-dir", str(tmp_path / "none"),
            "--out", str(tmp_path / "c.json"),
        ]) == 2
        assert "error" in capsys.readouterr().out


class TestReplay:
    def _corpus(self, tmp_path) -> pathlib.Path:
        store_dir = tmp_path / "store"
        run_small_search(store_dir)
        out = tmp_path / "corpus" / "small.json"
        assert main([
            "corpus", "export", "--cache-dir", str(store_dir),
            "--out", str(out), "--top", "2",
        ]) == 0
        return out

    def test_clean_replay_is_ok_exit_0(self, tmp_path, capsys):
        out = self._corpus(tmp_path)
        assert main(["corpus", "replay", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "2 ok, 0 regression(s)" in printed

    def test_corpus_dir_scan(self, tmp_path, capsys):
        out = self._corpus(tmp_path)
        assert main([
            "corpus", "replay", "--corpus-dir", str(out.parent),
        ]) == 0
        assert "2 ok" in capsys.readouterr().out

    def test_worsened_metric_is_a_regression_exit_1(
        self, tmp_path, capsys
    ):
        out = self._corpus(tmp_path)
        payload = json.loads(out.read_text())
        payload["entries"][0]["expected"]["rounds"] -= 1
        out.write_text(json.dumps(payload))
        assert main(["corpus", "replay", str(out)]) == 1
        printed = capsys.readouterr().out
        assert "1 regression(s)" in printed
        assert "worsened" in printed

    def test_improved_metric_is_changed_not_regression(
        self, tmp_path, capsys
    ):
        out = self._corpus(tmp_path)
        payload = json.loads(out.read_text())
        payload["entries"][0]["expected"]["rounds"] += 1
        out.write_text(json.dumps(payload))
        assert main(["corpus", "replay", str(out)]) == 1
        printed = capsys.readouterr().out
        assert "0 regression(s), 1 changed" in printed

    def test_unrunnable_trial_is_an_error(self, tmp_path, capsys):
        out = self._corpus(tmp_path)
        payload = json.loads(out.read_text())
        payload["entries"][0]["trial"]["n"] = 2  # infeasible ring
        out.write_text(json.dumps(payload))
        assert main(["corpus", "replay", str(out)]) == 1
        assert "error(s)" in capsys.readouterr().out

    def test_update_rewrites_expectations(self, tmp_path, capsys):
        out = self._corpus(tmp_path)
        payload = json.loads(out.read_text())
        original = payload["entries"][0]["expected"]["rounds"]
        payload["entries"][0]["expected"]["rounds"] = original + 5
        out.write_text(json.dumps(payload))
        assert main(["corpus", "replay", str(out), "--update"]) == 0
        assert "rewrote 1 expectation(s)" in capsys.readouterr().out
        rewritten = corpus_mod.load_corpus(out)
        assert rewritten["entries"][0]["expected"]["rounds"] == original
        # The updated corpus replays clean.
        assert main(["corpus", "replay", str(out)]) == 0

    def test_json_output(self, tmp_path, capsys):
        out = self._corpus(tmp_path)
        capsys.readouterr()  # drain the export chatter
        assert main(["corpus", "replay", str(out), "--json"]) == 0
        stdout = capsys.readouterr().out
        report = json.loads(stdout.splitlines()[0])
        assert report["corpus"] == "small"
        assert {e["status"] for e in report["entries"]} == {"ok"}

    def test_malformed_corpus_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(["corpus", "replay", str(bad)]) == 2
        assert "error" in capsys.readouterr().out

    def test_missing_corpus_dir_exit_2(self, tmp_path, capsys):
        assert main([
            "corpus", "replay", "--corpus-dir", str(tmp_path / "none"),
        ]) == 2
        assert "error" in capsys.readouterr().out


class TestCommittedCorpus:
    CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / (
        "benchmarks/corpus"
    )

    def test_committed_files_validate(self):
        files = corpus_mod.corpus_files(self.CORPUS_DIR)
        assert files, "benchmarks/corpus must ship at least one corpus"
        ids = []
        for path in files:
            payload = corpus_mod.load_corpus(path)
            assert payload["entries"], f"{path} has no entries"
            ids.extend(e["id"] for e in payload["entries"])
        assert len(ids) == len(set(ids)), "duplicate scenario ids"

    def test_committed_corpus_covers_multiple_algorithms(self):
        algorithms = set()
        for path in corpus_mod.corpus_files(self.CORPUS_DIR):
            payload = corpus_mod.load_corpus(path)
            algorithms.update(
                e["trial"]["algorithm"] for e in payload["entries"]
            )
        assert len(algorithms) >= 2
