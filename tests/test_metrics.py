"""The metrics layer: registry, snapshots, merge, CLI, and the
never-affects-results contract.

Pins the observability contract of this PR: counters/gauges/histograms
cost one ``is None`` test when disabled, a metrics-on sweep produces
byte-identical records *and* store bytes to a metrics-off one, pool
workers ship cumulative snapshots that fold with replace-per-worker
semantics, and a two-worker manifest sweep merges into one fleet-wide
snapshot whose trial counters equal the serial run's.
"""

from __future__ import annotations

import json

import pytest

from repro.metrics import registry as metrics_registry
from repro.metrics import snapshot as snap_mod
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    _bucket_of,
)
from repro.runner import ExperimentSpec, run_experiment


def make_spec(**overrides):
    base = dict(
        algorithm="gather_known", family="ring", sizes=(4, 5),
        label_sets=((1, 2),), seeds=(0,),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def series_by_name(snapshot: dict) -> dict:
    out = {}
    for row in snapshot["series"]:
        labels = tuple(sorted(row["labels"].items()))
        out[(row["name"], labels)] = row
    return out


def counter_value(snapshot: dict, name: str, **labels) -> int:
    key = (name, tuple(sorted(labels.items())))
    return series_by_name(snapshot)[key]["value"]


def sum_counters(snapshot: dict, name: str) -> int:
    return sum(
        row["value"]
        for row in snapshot["series"]
        if row["name"] == name and row["kind"] == "counter"
    )


class TestPrimitives:
    def test_counter_inc_and_raw_value(self):
        c = Counter()
        c.inc()
        c.inc(3)
        c.value += 2
        assert c.value == 6

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(4)
        g.set(1.5)
        assert g.value == 1.5

    def test_bucket_convention(self):
        # Bucket e covers [2**(e-1), 2**e); non-positive values -> 0.
        assert _bucket_of(0) == 0
        assert _bucket_of(-3) == 0
        assert _bucket_of(1) == 1
        assert _bucket_of(2) == 2
        assert _bucket_of(3) == 2
        assert _bucket_of(4) == 3
        assert _bucket_of(0.75) == 0  # frexp exponent, [0.5, 1)
        assert _bucket_of(1.5) == 1
        # Exact for arbitrarily large ints: no float conversion.
        huge = 1 << 5000
        assert _bucket_of(huge) == 5001
        assert _bucket_of(huge - 1) == 5000

    def test_histogram_tracks_exact_stats(self):
        h = Histogram()
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.total == 106
        assert (h.min, h.max) == (1, 100)
        assert h.buckets == {1: 1, 2: 2, 7: 1}

    def test_timer_observes_wall_seconds(self):
        reg = Registry()
        with reg.timer("t.wall"):
            pass
        h = reg.histogram("t.wall")
        assert h.count == 1
        assert h.total >= 0


class TestRegistry:
    def test_labels_create_distinct_series(self):
        reg = Registry()
        reg.counter("c", backend="serial").inc()
        reg.counter("c", backend="process").inc(2)
        snap = reg.snapshot()
        assert counter_value(snap, "c", backend="serial") == 1
        assert counter_value(snap, "c", backend="process") == 2

    def test_kind_mismatch_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_sorted_and_schema_tagged(self):
        reg = Registry(source="unit")
        reg.counter("b").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert snap["schema"] == metrics_registry.SCHEMA_NAME
        assert snap["version"] == metrics_registry.SCHEMA_VERSION
        assert snap["source"] == "unit"
        names = [row["name"] for row in snap["series"]]
        assert names == sorted(names)
        assert snap_mod.validate_snapshot(snap) == []

    def test_current_is_none_by_default(self):
        assert metrics_registry.current() is None

    def test_attached_scopes_and_restores(self):
        outer, inner = Registry("outer"), Registry("inner")
        with metrics_registry.attached(outer):
            assert metrics_registry.current() is outer
            with metrics_registry.attached(inner):
                assert metrics_registry.current() is inner
            assert metrics_registry.current() is outer
        assert metrics_registry.current() is None

    def test_attached_none_is_a_noop_scope(self):
        with metrics_registry.attached(None) as reg:
            assert reg is None
            assert metrics_registry.current() is None
        outer = Registry()
        with metrics_registry.attached(outer):
            with metrics_registry.attached(None) as reg:
                assert reg is outer

    def test_absorb_replaces_per_worker(self):
        # Workers ship *cumulative* snapshots: only the latest per
        # worker may count, while distinct workers sum.
        wa = Registry("wa")
        wa.counter("n").inc(2)
        first = wa.snapshot()
        wa.counter("n").inc(3)
        second = wa.snapshot()
        wb = Registry("wb")
        wb.counter("n").inc(10)
        parent = Registry("parent")
        parent.absorb("wa", first)
        parent.absorb("wa", second)  # replaces, not adds
        parent.absorb("wb", wb.snapshot())
        assert counter_value(parent.snapshot(), "n") == 15


class TestSnapshotAlgebra:
    def snap(self, build) -> dict:
        reg = Registry("s")
        build(reg)
        return reg.snapshot()

    def test_merge_sums_counters_and_folds_histograms(self):
        a = self.snap(lambda r: (
            r.counter("c").inc(2), r.histogram("h").observe(1),
        ))
        b = self.snap(lambda r: (
            r.counter("c").inc(3), r.histogram("h").observe(100),
            r.gauge("g").set(7),
        ))
        merged = snap_mod.merge_snapshots([a, b], source="m")
        assert counter_value(merged, "c") == 5
        rows = series_by_name(merged)
        h = rows[("h", ())]
        assert h["count"] == 2
        assert h["sum"] == 101
        assert (h["min"], h["max"]) == (1, 100)
        assert rows[("g", ())]["value"] == 7
        assert snap_mod.validate_snapshot(merged) == []

    def test_merge_rejects_kind_conflict(self):
        a = self.snap(lambda r: r.counter("x").inc())
        b = self.snap(lambda r: r.gauge("x").set(1))
        with pytest.raises(ValueError):
            snap_mod.merge_snapshots([a, b])

    def test_validate_catches_corruption(self):
        snap = self.snap(lambda r: r.histogram("h").observe(2))
        assert snap_mod.validate_snapshot(snap) == []
        broken = json.loads(json.dumps(snap))
        idx = next(
            i for i, row in enumerate(broken["series"])
            if row["name"] == "h"
        )
        broken["series"][idx]["buckets"] = {"2": 5}  # != count
        assert snap_mod.validate_snapshot(broken)
        assert snap_mod.validate_snapshot({"schema": "nope"})

    def test_diff_reports_deltas_and_one_sided_series(self):
        before = self.snap(lambda r: r.counter("c").inc(1))
        after = self.snap(lambda r: (
            r.counter("c").inc(4), r.counter("new").inc(),
        ))
        rows = {row["name"]: row for row in
                snap_mod.diff_snapshots(before, after)}
        assert rows["c"]["delta"] == 3
        assert rows["new"]["only"] == "after"

    def test_prometheus_exposition_shape(self):
        snap = self.snap(lambda r: (
            r.counter("runner.trials.executed", status="ok").inc(4),
            r.histogram("sim.wall_seconds").observe(0.25),
        ))
        text = snap_mod.to_prometheus(snap)
        assert "# TYPE runner_trials_executed_total counter" in text
        assert 'runner_trials_executed_total{status="ok"} 4' in text
        assert 'sim_wall_seconds_bucket{le="+Inf"} 1' in text
        assert "sim_wall_seconds_count 1" in text

    def test_prometheus_survives_big_int_observations(self):
        # Exponents beyond float range must not overflow the bucket
        # bound rendering.
        snap = self.snap(lambda r: r.histogram("big").observe(1 << 2000))
        text = snap_mod.to_prometheus(snap)
        assert 'le="+Inf"' in text

    def test_write_load_round_trip(self, tmp_path):
        snap = self.snap(lambda r: r.counter("c").inc(2))
        path = tmp_path / "snap.json"
        snap_mod.write_snapshot(path, snap)
        assert snap_mod.load_snapshot(path) == snap
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other"}')
        with pytest.raises(ValueError):
            snap_mod.load_snapshot(bad)


class TestSchedulerIntegration:
    def run_sim(self):
        from repro.core import run_gather_known
        from repro.graphs import ring

        return run_gather_known(ring(6, seed=42), [5, 9, 12], 8)

    def test_segment_attributes_are_thin_views(self):
        from repro.graphs import ring
        from repro.sim import AgentSpec, Simulation
        from repro.core.gather_known import gather_known_program
        from repro.core.parameters import KnownBoundParameters

        params = KnownBoundParameters(4)
        program = gather_known_program(params, max_phases=12)
        graph = ring(4, seed=1)
        sim = Simulation(
            graph, [AgentSpec(1, 0, program), AgentSpec(2, 2, program)]
        )
        sim.run()
        assert sim.segments > 0
        assert sim.segment_edges >= sim.segments
        # The public attributes stay writable (thin views over the
        # standalone counters), as pre-metrics callers expect.
        sim.segments = 0
        assert sim.segments == 0

    def test_run_flushes_sim_counters_once(self):
        reg = Registry("t")
        with metrics_registry.attached(reg):
            self.run_sim()
        snap = reg.snapshot()
        assert counter_value(snap, "sim.runs") == 1
        assert counter_value(snap, "sim.walk.segments") > 0
        assert counter_value(snap, "sim.walk.segment_edges") > 0
        assert counter_value(snap, "sim.events") > 0
        rows = series_by_name(snap)
        assert rows[("sim.wall_seconds", ())]["count"] == 1

    def test_unattached_run_records_nothing(self):
        reg = Registry("t")
        self.run_sim()  # no registry attached: nothing to flush
        # Collectors still publish their process-wide totals, but no
        # per-run series can appear without an attached registry.
        names = {row["name"] for row in reg.snapshot()["series"]}
        assert "sim.runs" not in names
        assert "sim.walk.segments" not in names

    def test_intern_and_cache_collectors_report_totals(self):
        from repro.explore import uxs as uxs_mod
        from repro.sim import agent as agent_mod

        reg = Registry("t")
        with metrics_registry.attached(reg):
            self.run_sim()
        snap = reg.snapshot()
        hits, misses = agent_mod.intern_stats()
        assert counter_value(snap, "sim.plan_intern.hits") == hits
        assert counter_value(snap, "sim.plan_intern.misses") == misses
        stats = uxs_mod.cache_stats()
        assert (
            counter_value(snap, "explore.seq_cache.hits")
            == stats["seq_hits"]
        )

    def test_cohort_metrics(self):
        pytest.importorskip("numpy")
        from repro.runner.worker import execute_trial_batch, shared_graph
        from repro.runner.spec import TrialSpec

        trials = [
            TrialSpec(
                key=f"t{seed}", algorithm="gather_known", family="ring",
                n=5, n_bound=5, labels=(1, 2), messages=None, seed=seed,
                graph_seed=7, placement="default",
                wake_schedule="simultaneous", adversary="fixed",
            )
            for seed in (0, 1)
        ]
        reg = Registry("t")
        with metrics_registry.attached(reg):
            graph = shared_graph(trials[0])
            results = execute_trial_batch(trials, graph=graph)
        assert all(r.ok for r in results)
        snap = reg.snapshot()
        assert counter_value(snap, "sim.cohort.runs") == 1
        rows = series_by_name(snap)
        assert rows[("sim.cohort.size", ())]["count"] == 1
        assert counter_value(snap, "sim.cohort.rounds") > 0
        assert sum_counters(snap, "runner.trials.executed") == 2


class TestNeverAffectsResults:
    def test_records_and_store_bytes_identical(self, tmp_path):
        spec = make_spec()
        plain_dir = tmp_path / "plain"
        metered_dir = tmp_path / "metered"
        plain = run_experiment(spec, store=str(plain_dir))
        reg = Registry("t")
        with metrics_registry.attached(reg):
            metered = run_experiment(spec, store=str(metered_dir))
        assert metered.canonical_json() == plain.canonical_json()
        # Metrics are excluded from record bytes AND store bytes: the
        # two store trees must be file-for-file byte-identical.
        plain_files = sorted(
            p.relative_to(plain_dir)
            for p in plain_dir.rglob("*") if p.is_file()
        )
        metered_files = sorted(
            p.relative_to(metered_dir)
            for p in metered_dir.rglob("*") if p.is_file()
        )
        assert plain_files == metered_files
        for rel in plain_files:
            assert (plain_dir / rel).read_bytes() == \
                (metered_dir / rel).read_bytes(), rel
        # And the metered run did actually meter.
        assert sum_counters(
            reg.snapshot(), "runner.trials.executed"
        ) == len(plain.records)

    def test_spec_hash_ignores_metrics_attachment(self):
        spec = make_spec()
        plain_hash = spec.spec_hash()
        with metrics_registry.attached(Registry("t")):
            assert make_spec().spec_hash() == plain_hash


class TestPoolSnapshots:
    def test_process_backend_folds_worker_snapshots(self, tmp_path):
        spec = make_spec(seeds=(0, 1))
        reg = Registry("parent")
        with metrics_registry.attached(reg):
            result = run_experiment(
                spec, workers=2, store=str(tmp_path / "s"),
                backend="process",
            )
        snap = reg.snapshot()
        assert sum_counters(snap, "runner.trials.executed") == \
            result.executed == 4
        assert counter_value(
            snap, "runner.backend.records", backend="process"
        ) == 4
        assert counter_value(snap, "sim.runs") == 4

    def test_pipelined_inline_counts_batches(self, tmp_path):
        spec = make_spec(seeds=(0, 1))
        reg = Registry("parent")
        with metrics_registry.attached(reg):
            result = run_experiment(
                spec, workers=1, store=str(tmp_path / "s"),
                backend="pipelined",
            )
        snap = reg.snapshot()
        assert counter_value(
            snap, "runner.backend.records", backend="pipelined"
        ) == len(result.records) == 4
        rows = series_by_name(snap)
        batches = counter_value(
            snap, "runner.backend.batches", backend="pipelined"
        )
        assert rows[("runner.backend.batch_size", ())]["count"] == batches

    def test_worker_envelope_protocol(self):
        from repro.runner import worker as worker_mod

        payload = {"trials": [dict(
            key="t", algorithm="gather_known", family="ring", n=4,
            n_bound=4, labels=[1, 2], messages=None, seed=0,
            graph_seed=3, placement="default",
            wake_schedule="simultaneous", adversary="fixed",
        )]}
        bare = worker_mod.run_trial_batch(payload)
        assert isinstance(bare, list)
        with metrics_registry.attached(Registry("w")):
            wrapped = worker_mod.run_trial_batch(payload)
        assert isinstance(wrapped, dict)
        assert wrapped["records"] == bare
        envelope = wrapped["__metrics__"]
        assert envelope["worker"] == "w"
        assert snap_mod.validate_snapshot(envelope["snapshot"]) == []


class TestManifestFleet:
    def worker_args(self, tmp_path, name, extra=()):
        return [
            "--sizes", "4,5", "--seeds", "0,1", "--chunk-size", "2",
            "--manifest-dir", str(tmp_path / "shared"),
            "--cache-dir", str(tmp_path / name),
            "--worker-id", name, "--quiet",
            "--metrics", str(tmp_path / f"{name}.json"), *extra,
        ]

    def test_two_worker_merge_equals_serial(self, tmp_path):
        from repro.runner.cli import merge_main, worker_main

        # Serial baseline for the trial counters.
        reg = Registry("serial")
        with metrics_registry.attached(reg):
            serial = run_experiment(
                make_spec(seeds=(0, 1)), store=str(tmp_path / "base")
            )
        serial_executed = sum_counters(
            reg.snapshot(), "runner.trials.executed"
        )
        assert serial_executed == len(serial.records) == 4

        assert worker_main(
            self.worker_args(tmp_path, "wa", ("--max-chunks", "1"))
        ) == 0
        assert worker_main(self.worker_args(tmp_path, "wb")) == 0
        fleet = tmp_path / "fleet.json"
        assert merge_main([
            "--into", str(tmp_path / "merged"),
            str(tmp_path / "wa"), str(tmp_path / "wb"),
            str(tmp_path / "shared"),
            "--metrics", str(fleet),
        ]) == 0
        snapshot = snap_mod.load_snapshot(fleet)
        assert snap_mod.validate_snapshot(snapshot) == []
        assert sum_counters(
            snapshot, "runner.trials.executed"
        ) == serial_executed
        assert sum_counters(
            snapshot, "runner.manifest.chunks.claimed"
        ) == 2
        # Both participants wrote sidecars next to the manifest.
        sidecars = snap_mod.find_sidecars([tmp_path / "shared"])
        assert {p.stem for p in sidecars} == {"wa", "wb"}

    def test_manifest_backend_writes_engine_sidecar(self, tmp_path):
        reg = Registry("engine")
        with metrics_registry.attached(reg):
            result = run_experiment(
                make_spec(seeds=(0,)),
                store=str(tmp_path / "s"),
                backend="manifest",
                backend_options={"worker_id": "engine-test"},
            )
        assert result.failed == 0
        sidecars = snap_mod.find_sidecars([tmp_path / "s"])
        assert [p.stem for p in sidecars] == ["engine-test"]
        snapshot = snap_mod.load_snapshot(sidecars[0])
        assert sum_counters(snapshot, "runner.trials.executed") == \
            len(result.records)


class TestEventProcessor:
    def test_derives_runner_series_from_events(self):
        from repro.events import stream as event_stream
        from repro.events.types import SweepProgress, TrialEnd
        from repro.metrics import MetricsEventProcessor

        proc = MetricsEventProcessor()
        with event_stream.attached(proc):
            emit = event_stream.current()
            emit.emit(TrialEnd(
                key="a", ok=True, error=None, rounds=3, moves=5,
                events=7,
            ))
            emit.emit(TrialEnd(
                key="b", ok=False, error="boom", rounds=0, moves=0,
                events=0,
            ))
            emit.emit(SweepProgress(
                done=1, total=2, key="a", ok=True, cached=True,
            ))
        snap = proc.snapshot()
        assert counter_value(snap, "events.count", type="TrialEnd") == 2
        assert counter_value(snap, "events.trials", status="ok") == 1
        assert counter_value(snap, "events.trials", status="failed") == 1
        assert counter_value(snap, "events.trials.cached") == 1

    def test_processor_over_a_real_run(self):
        from repro.events import stream as event_stream
        from repro.metrics import MetricsEventProcessor

        proc = MetricsEventProcessor()
        with event_stream.attached(proc):
            result = run_experiment(make_spec())
        snap = proc.snapshot()
        assert counter_value(snap, "events.count", type="SweepEnd") == 1
        assert counter_value(snap, "events.trials", status="ok") == \
            len(result.records)
        assert counter_value(snap, "events.sim.segment_edges") > 0


class TestMetricsCLI:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(["metrics", *argv])

    def make_snapshot(self, tmp_path, name="snap.json", inc=2):
        reg = Registry("cli")
        reg.counter("c").inc(inc)
        reg.histogram("h").observe(3)
        path = tmp_path / name
        snap_mod.write_snapshot(path, reg.snapshot())
        return path

    def test_summary_table_and_json(self, tmp_path, capsys):
        path = self.make_snapshot(tmp_path)
        assert self.run_cli("summary", str(path)) == 0
        out = capsys.readouterr().out
        assert "counter" in out and "histogram" in out
        assert self.run_cli("summary", str(path), "--json") == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == metrics_registry.SCHEMA_NAME

    def test_export_prometheus_to_file(self, tmp_path, capsys):
        path = self.make_snapshot(tmp_path)
        out = tmp_path / "metrics.prom"
        assert self.run_cli(
            "export", str(path), "--format", "prometheus",
            "-o", str(out),
        ) == 0
        assert "c_total 2" in out.read_text()

    def test_diff_counts_changed_series(self, tmp_path, capsys):
        before = self.make_snapshot(tmp_path, "before.json", inc=1)
        after = self.make_snapshot(tmp_path, "after.json", inc=5)
        assert self.run_cli("diff", str(before), str(after)) == 0
        out = capsys.readouterr().out
        assert "c" in out and "series changed" in out
        rows = {
            row["name"]: row
            for row in snap_mod.diff_snapshots(
                snap_mod.load_snapshot(before),
                snap_mod.load_snapshot(after),
            )
        }
        assert rows["c"]["delta"] == 4

    def test_missing_and_malformed_files_exit_1(self, tmp_path, capsys):
        assert self.run_cli("summary", str(tmp_path / "nope.json")) == 1
        assert "error:" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert self.run_cli("summary", str(bad)) == 1

    def test_schema_check_tool(self, tmp_path):
        import subprocess
        import sys

        path = self.make_snapshot(tmp_path)
        proc = subprocess.run(
            [sys.executable, "tools/check_metrics_schema.py", str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "series valid" in proc.stdout


class TestWorkerResets:
    def test_reset_helpers_zero_the_tallies(self):
        from repro.explore import uxs as uxs_mod
        from repro.sim import agent as agent_mod

        agent_mod.intern_plan((("w", 1),))
        uxs_mod.UXSProvider().sequence(3)
        agent_mod.reset_intern_stats()
        uxs_mod.reset_cache_stats()
        assert agent_mod.intern_stats() == (0, 0)
        assert set(uxs_mod.cache_stats().values()) == {0}
