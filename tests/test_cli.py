"""Tests for the ``python -m repro`` demo runner."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCLI:
    def test_unknown_demo_name_prints_usage(self, capsys):
        assert main(["nope"]) == 1
        out = capsys.readouterr().out
        assert "python -m repro" in out

    def test_no_args_prints_usage(self):
        assert main([]) == 1

    def test_gather_demo(self, capsys):
        assert main(["gather"]) == 0
        out = capsys.readouterr().out
        assert "leader" in out

    def test_unknown_demo(self, capsys):
        assert main(["unknown"]) == 0
        out = capsys.readouterr().out
        assert "hypothesis" in out
        assert "10^" in out

    def test_narrate_demo(self, capsys):
        assert main(["narrate"]) == 0
        out = capsys.readouterr().out
        assert "declares gathering" in out

    @pytest.mark.slow
    def test_compare_demo(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "talking" in out

    @pytest.mark.slow
    def test_gossip_demo(self, capsys):
        assert main(["gossip"]) == 0
        out = capsys.readouterr().out
        assert "101" in out
