"""Tests for the ``python -m repro`` demo runner."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCLI:
    def test_unknown_demo_name_prints_usage(self, capsys):
        assert main(["nope"]) == 1
        out = capsys.readouterr().out
        assert "python -m repro" in out

    def test_no_args_prints_usage(self):
        assert main([]) == 1

    def test_gather_demo(self, capsys):
        assert main(["gather"]) == 0
        out = capsys.readouterr().out
        assert "leader" in out

    def test_unknown_demo(self, capsys):
        assert main(["unknown"]) == 0
        out = capsys.readouterr().out
        assert "hypothesis" in out
        assert "10^" in out

    def test_narrate_demo(self, capsys):
        assert main(["narrate"]) == 0
        out = capsys.readouterr().out
        assert "declares gathering" in out

    @pytest.mark.slow
    def test_compare_demo(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "talking" in out

    @pytest.mark.slow
    def test_gossip_demo(self, capsys):
        assert main(["gossip"]) == 0
        out = capsys.readouterr().out
        assert "101" in out


class TestProgressMeter:
    """The sweep progress line must survive a zero-tick first batch."""

    def test_zero_elapsed_renders_placeholder(self):
        from repro.runner.cli import _ProgressMeter

        meter = _ProgressMeter()
        # Force "the first batch finished within one timer tick".
        import time

        meter.started = time.monotonic() + 10.0
        line = meter.line(1, 100)
        assert line == "-- trials/s, eta --:--"
        assert "inf" not in line

    def test_normal_rate_renders_numbers(self):
        from repro.runner.cli import _ProgressMeter

        meter = _ProgressMeter()
        meter.started -= 2.0  # pretend two seconds have passed
        line = meter.line(1, 3)
        assert "trials/s" in line
        assert "--:--" not in line

    def test_summary_is_empty_before_simulation(self):
        from repro.runner.cli import _ProgressMeter

        assert _ProgressMeter().summary() == ""
